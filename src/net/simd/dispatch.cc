#include "net/simd/dispatch.hh"

#include <cstdlib>
#include <cstring>
#include <mutex>

#include "net/simd/kernels.hh"

namespace hyperplane {
namespace net {
namespace simd {

namespace {

CpuFeatures
probeCpu()
{
    CpuFeatures f;
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
    __builtin_cpu_init();
    f.sse2 = __builtin_cpu_supports("sse2");
    f.sse42 = __builtin_cpu_supports("sse4.2");
    f.avx2 = __builtin_cpu_supports("avx2");
#endif
    return f;
}

bool
envForceScalar()
{
    const char *v = std::getenv("HYPERPLANE_FORCE_SCALAR");
    return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
}

KernelTable
makeScalarTable()
{
    KernelTable t;
    t.checksumPartial = &detail::checksumPartialScalar;
    t.crc32c = &detail::crc32cScalar;
    t.headerCheck = &detail::headerCheckScalar;
    return t;
}

KernelTable
makeDispatchedTable()
{
    KernelTable t = makeScalarTable();
    if (envForceScalar()) {
        t.forcedScalar = true;
        return t;
    }
    const CpuFeatures &f = cpuFeatures();
    if (f.sse2) {
        if (auto fn = detail::checksumPartialSse2Compiled()) {
            t.checksumPartial = fn;
            t.checksumName = "sse2";
            t.checksumLevel = 1;
        }
        if (auto fn = detail::headerCheckSse2Compiled()) {
            t.headerCheck = fn;
            t.headerCheckName = "sse2";
            t.headerCheckLevel = 1;
        }
    }
    if (f.sse42) {
        if (auto fn = detail::crc32cSse42Compiled()) {
            t.crc32c = fn;
            t.crc32cName = "sse4.2";
            t.crc32cLevel = 1;
        }
    }
    if (f.avx2) {
        if (auto fn = detail::checksumPartialAvx2Compiled()) {
            t.checksumPartial = fn;
            t.checksumName = "avx2";
            t.checksumLevel = 2;
        }
        if (auto fn = detail::headerCheckAvx2Compiled()) {
            t.headerCheck = fn;
            t.headerCheckName = "avx2";
            t.headerCheckLevel = 2;
        }
    }
    return t;
}

KernelTable g_active;
std::once_flag g_once;

} // namespace

const CpuFeatures &
cpuFeatures()
{
    static const CpuFeatures f = probeCpu();
    return f;
}

const KernelTable &
kernels()
{
    std::call_once(g_once, [] { g_active = makeDispatchedTable(); });
    return g_active;
}

const KernelTable &
scalarKernels()
{
    static const KernelTable t = makeScalarTable();
    return t;
}

void
refreshDispatch()
{
    kernels(); // ensure the once-flag is consumed first
    g_active = makeDispatchedTable();
}

ChecksumPartialFn
checksumPartialSse2()
{
    return cpuFeatures().sse2 ? detail::checksumPartialSse2Compiled()
                              : nullptr;
}

ChecksumPartialFn
checksumPartialAvx2()
{
    return cpuFeatures().avx2 ? detail::checksumPartialAvx2Compiled()
                              : nullptr;
}

Crc32cFn
crc32cSse42()
{
    return cpuFeatures().sse42 ? detail::crc32cSse42Compiled()
                               : nullptr;
}

HeaderCheckFn
headerCheckSse2()
{
    return cpuFeatures().sse2 ? detail::headerCheckSse2Compiled()
                              : nullptr;
}

HeaderCheckFn
headerCheckAvx2()
{
    return cpuFeatures().avx2 ? detail::headerCheckAvx2Compiled()
                              : nullptr;
}

} // namespace simd
} // namespace net
} // namespace hyperplane
