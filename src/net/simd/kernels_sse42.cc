/**
 * @file
 * SSE4.2 hardware CRC32C.  Compiled with -msse4.2 (this TU only).
 *
 * The crc32 instruction implements exactly the reflected Castagnoli
 * algorithm of the scalar byte table — same polynomial, same bit
 * order — so ~crc32(~seed, data) is bit-identical to the table walk
 * for every input (pinned by the known-vector and differential tests).
 */

#include "net/simd/kernels.hh"

#if defined(__SSE4_2__) && (defined(__x86_64__) || defined(__i386__))
#define HP_SIMD_HAVE_SSE42 1
#include <nmmintrin.h>
#include <cstring>
#endif

namespace hyperplane {
namespace net {
namespace simd {
namespace detail {

#if defined(HP_SIMD_HAVE_SSE42)

namespace {

std::uint32_t
crc32cSse42Kernel(const std::uint8_t *data, std::size_t len,
                  std::uint32_t seed)
{
    std::size_t i = 0;
#if defined(__x86_64__)
    std::uint64_t crc = ~seed;
    for (; i + 8 <= len; i += 8) {
        std::uint64_t word;
        std::memcpy(&word, data + i, sizeof(word));
        crc = _mm_crc32_u64(crc, word);
    }
    std::uint32_t crc32 = static_cast<std::uint32_t>(crc);
#else
    std::uint32_t crc32 = ~seed;
    for (; i + 4 <= len; i += 4) {
        std::uint32_t word;
        std::memcpy(&word, data + i, sizeof(word));
        crc32 = _mm_crc32_u32(crc32, word);
    }
#endif
    for (; i < len; ++i)
        crc32 = _mm_crc32_u8(crc32, data[i]);
    return ~crc32;
}

} // namespace

Crc32cFn
crc32cSse42Compiled()
{
    return &crc32cSse42Kernel;
}

#else

Crc32cFn
crc32cSse42Compiled()
{
    return nullptr;
}

#endif

} // namespace detail
} // namespace simd
} // namespace net
} // namespace hyperplane
