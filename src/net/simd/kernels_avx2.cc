/**
 * @file
 * AVX2 kernels.  Compiled with -mavx2 (this TU only); the dispatch
 * layer never installs them unless the runtime cpuid probe confirms
 * AVX2, so no AVX instruction executes on a host without it.
 *
 * Same bit-exactness contract as the SSE2 TU: in-register byteswap,
 * 32-bit lane accumulation, commutative fold.
 */

#include "net/simd/kernels.hh"

#if defined(__AVX2__) && (defined(__x86_64__) || defined(__i386__))
#define HP_SIMD_HAVE_AVX2 1
#include <immintrin.h>
#include <cstring>
#endif

namespace hyperplane {
namespace net {
namespace simd {
namespace detail {

#if defined(HP_SIMD_HAVE_AVX2)

namespace {

std::uint32_t
checksumPartialAvx2Kernel(const std::uint8_t *data, std::size_t len,
                          std::uint32_t sum)
{
    std::size_t i = 0;
    if (len >= 128) {
        const __m256i zero = _mm256_setzero_si256();
        __m256i acc = zero;
        for (; i + 32 <= len; i += 32) {
            __m256i v = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(data + i));
            const __m256i sw = _mm256_or_si256(
                _mm256_slli_epi16(v, 8), _mm256_srli_epi16(v, 8));
            acc = _mm256_add_epi32(acc,
                                   _mm256_unpacklo_epi16(sw, zero));
            acc = _mm256_add_epi32(acc,
                                   _mm256_unpackhi_epi16(sw, zero));
        }
        alignas(32) std::uint32_t lanes[8];
        _mm256_store_si256(reinterpret_cast<__m256i *>(lanes), acc);
        sum += lanes[0] + lanes[1] + lanes[2] + lanes[3] + lanes[4] +
               lanes[5] + lanes[6] + lanes[7];
    }
    for (; i + 1 < len; i += 2)
        sum += (static_cast<std::uint32_t>(data[i]) << 8) | data[i + 1];
    if (i < len)
        sum += static_cast<std::uint32_t>(data[i]) << 8;
    return sum;
}

std::uint64_t
load64(const std::uint8_t *p)
{
    std::uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

void
headerCheckAvx2Kernel(const std::uint8_t *const *pkts,
                      const std::uint32_t *lens, std::size_t n,
                      const std::uint8_t *prefix,
                      std::uint8_t opcodeLimit, std::uint32_t minLen,
                      std::uint8_t *ok)
{
    constexpr std::uint64_t mask5 = 0x000000ffffffffffULL;
    std::uint64_t patWord;
    std::memcpy(&patWord, prefix, sizeof(patWord));
    const __m256i mask = _mm256_set1_epi64x(
        static_cast<long long>(mask5));
    const __m256i pat = _mm256_set1_epi64x(
        static_cast<long long>(patWord & mask5));

    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        if (lens[i] < minLen || lens[i + 1] < minLen ||
            lens[i + 2] < minLen || lens[i + 3] < minLen) {
            headerCheckScalar(pkts + i, lens + i, 4, prefix,
                              opcodeLimit, minLen, ok + i);
            continue;
        }
        const __m256i v = _mm256_and_si256(
            _mm256_set_epi64x(
                static_cast<long long>(load64(pkts[i + 3])),
                static_cast<long long>(load64(pkts[i + 2])),
                static_cast<long long>(load64(pkts[i + 1])),
                static_cast<long long>(load64(pkts[i]))),
            mask);
        const unsigned eq = static_cast<unsigned>(
            _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, pat)));
        for (unsigned j = 0; j < 4; ++j) {
            const unsigned lane = (eq >> (8 * j)) & 0xffu;
            ok[i + j] = lane == 0xffu && pkts[i + j][5] < opcodeLimit;
        }
    }
    if (i < n) {
        headerCheckScalar(pkts + i, lens + i, n - i, prefix,
                          opcodeLimit, minLen, ok + i);
    }
}

} // namespace

ChecksumPartialFn
checksumPartialAvx2Compiled()
{
    return &checksumPartialAvx2Kernel;
}

HeaderCheckFn
headerCheckAvx2Compiled()
{
    return &headerCheckAvx2Kernel;
}

#else

ChecksumPartialFn
checksumPartialAvx2Compiled()
{
    return nullptr;
}

HeaderCheckFn
headerCheckAvx2Compiled()
{
    return nullptr;
}

#endif

} // namespace detail
} // namespace simd
} // namespace net
} // namespace hyperplane
