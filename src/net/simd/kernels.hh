/**
 * @file
 * Internal linkage between the dispatch table and the per-ISA kernel
 * translation units.  Each ISA lives in its own TU compiled with that
 * ISA's -m flag, so the compiler may only emit those instructions
 * inside functions the runtime probe has already cleared; the provider
 * functions below return null when the TU was built without the ISA.
 * Not installed; include dispatch.hh instead.
 */

#ifndef HYPERPLANE_NET_SIMD_KERNELS_HH
#define HYPERPLANE_NET_SIMD_KERNELS_HH

#include "net/simd/dispatch.hh"

namespace hyperplane {
namespace net {
namespace simd {
namespace detail {

// Scalar reference kernels (always compiled).
std::uint32_t checksumPartialScalar(const std::uint8_t *data,
                                    std::size_t len, std::uint32_t sum);
std::uint32_t crc32cScalar(const std::uint8_t *data, std::size_t len,
                           std::uint32_t seed);
void headerCheckScalar(const std::uint8_t *const *pkts,
                       const std::uint32_t *lens, std::size_t n,
                       const std::uint8_t *prefix,
                       std::uint8_t opcodeLimit, std::uint32_t minLen,
                       std::uint8_t *ok);

// ISA providers: the kernel pointer when the TU was compiled with the
// ISA enabled, null otherwise.  Runtime CPU support is the dispatch
// layer's problem, not theirs.
ChecksumPartialFn checksumPartialSse2Compiled();
ChecksumPartialFn checksumPartialAvx2Compiled();
Crc32cFn crc32cSse42Compiled();
HeaderCheckFn headerCheckSse2Compiled();
HeaderCheckFn headerCheckAvx2Compiled();

} // namespace detail
} // namespace simd
} // namespace net
} // namespace hyperplane

#endif // HYPERPLANE_NET_SIMD_KERNELS_HH
