#include "net/checksum.hh"

#include "net/simd/dispatch.hh"
#include "sim/logging.hh"

namespace hyperplane {
namespace net {

std::uint32_t
checksumPartial(const std::uint8_t *data, std::size_t len,
                std::uint32_t sum)
{
    return simd::kernels().checksumPartial(data, len, sum);
}

std::uint16_t
finishChecksum(std::uint32_t sum)
{
    while (sum >> 16)
        sum = (sum & 0xffff) + (sum >> 16);
    return static_cast<std::uint16_t>(~sum & 0xffff);
}

std::uint16_t
internetChecksum(const std::uint8_t *data, std::size_t len)
{
    return finishChecksum(
        simd::kernels().checksumPartial(data, len, 0));
}

std::uint16_t
checksumSpliced(const std::uint8_t *data, std::size_t len,
                std::size_t holeOff)
{
    hp_assert(holeOff % 2 == 0,
              "checksum hole must sit at an even offset");
    hp_assert(holeOff + 2 <= len, "checksum hole must fit the message");
    const simd::KernelTable &k = simd::kernels();
    std::uint32_t sum = k.checksumPartial(data, holeOff, 0);
    sum = k.checksumPartial(data + holeOff + 2, len - holeOff - 2, sum);
    return finishChecksum(sum);
}

std::uint32_t
crc32c(const std::uint8_t *data, std::size_t len, std::uint32_t seed)
{
    return simd::kernels().crc32c(data, len, seed);
}

} // namespace net
} // namespace hyperplane
