#include "net/checksum.hh"

#include <array>

namespace hyperplane {
namespace net {

std::uint32_t
checksumPartial(const std::uint8_t *data, std::size_t len,
                std::uint32_t sum)
{
    std::size_t i = 0;
    for (; i + 1 < len; i += 2)
        sum += (static_cast<std::uint32_t>(data[i]) << 8) | data[i + 1];
    if (i < len)
        sum += static_cast<std::uint32_t>(data[i]) << 8;
    return sum;
}

std::uint16_t
finishChecksum(std::uint32_t sum)
{
    while (sum >> 16)
        sum = (sum & 0xffff) + (sum >> 16);
    return static_cast<std::uint16_t>(~sum & 0xffff);
}

std::uint16_t
internetChecksum(const std::uint8_t *data, std::size_t len)
{
    return finishChecksum(checksumPartial(data, len, 0));
}

namespace {

/** Build the byte-wise CRC32C table at static-init time. */
std::array<std::uint32_t, 256>
makeCrc32cTable()
{
    std::array<std::uint32_t, 256> table{};
    // Reflected Castagnoli polynomial.
    constexpr std::uint32_t poly = 0x82f63b78u;
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t crc = i;
        for (int bit = 0; bit < 8; ++bit)
            crc = (crc >> 1) ^ ((crc & 1) ? poly : 0);
        table[i] = crc;
    }
    return table;
}

const std::array<std::uint32_t, 256> crcTable = makeCrc32cTable();

} // namespace

std::uint32_t
crc32c(const std::uint8_t *data, std::size_t len, std::uint32_t seed)
{
    std::uint32_t crc = ~seed;
    for (std::size_t i = 0; i < len; ++i)
        crc = (crc >> 8) ^ crcTable[(crc ^ data[i]) & 0xff];
    return ~crc;
}

} // namespace net
} // namespace hyperplane
