#include "traffic/poisson_source.hh"

#include "sim/logging.hh"

namespace hyperplane {
namespace traffic {

PoissonSource::PoissonSource(EventQueue &eq, queueing::QueueSet &queues,
                             mem::MemorySystem *mem,
                             const SourceConfig &cfg,
                             std::vector<double> weights)
    : eq_(eq), queues_(queues), mem_(mem), cfg_(cfg),
      weights_(std::move(weights)), rng_(cfg.seed),
      pending_(queues.size(), invalidEventId)
{
    hp_assert(weights_.size() == queues_.size(),
              "one weight per queue required");
    hp_assert(cfg_.totalRatePerSec > 0.0, "rate must be positive");
}

void
PoissonSource::start()
{
    running_ = true;
    for (QueueId q = 0; q < queues_.size(); ++q) {
        if (weights_[q] > 0.0)
            scheduleNext(q);
    }
}

void
PoissonSource::stop()
{
    running_ = false;
    for (auto &id : pending_) {
        if (id != invalidEventId) {
            eq_.cancel(id);
            id = invalidEventId;
        }
    }
}

void
PoissonSource::setRate(double totalRatePerSec)
{
    hp_assert(totalRatePerSec > 0.0, "rate must be positive");
    cfg_.totalRatePerSec = totalRatePerSec;
}

void
PoissonSource::scheduleNext(QueueId qid)
{
    const double rate = cfg_.totalRatePerSec * weights_[qid]; // tasks/s
    const double meanGapSec = 1.0 / rate;
    const double gapUs = rng_.exponential(meanGapSec * 1e6);
    const Tick gap = std::max<Tick>(1, usToTicks(gapUs));
    pending_[qid] = eq_.scheduleIn(gap, [this, qid] { arrive(qid); });
}

void
PoissonSource::arrive(QueueId qid)
{
    pending_[qid] = invalidEventId;
    if (!running_)
        return;

    queueing::TaskQueue &q = queues_[qid];
    if (q.depth() >= cfg_.maxQueueDepth) {
        dropped_.inc();
    } else {
        queueing::WorkItem item;
        item.seq = nextSeq_++;
        item.qid = qid;
        item.arrivalTick = eq_.now();
        item.payloadBytes = cfg_.payloadBytes;
        item.flowId = static_cast<std::uint32_t>(
            qid * 97 + (item.seq % 31)); // a few flows per queue
        q.enqueue(item);
        generated_.inc();
        // The arrival hook runs before the doorbell write so observers
        // (latency breakdown, tracing) see the enqueue before any
        // activation the snoop triggers.
        if (hook_)
            hook_(qid, item);
        // The producer's doorbell write: the coherence transaction the
        // monitoring set snoops (and that costs a spinning core a miss
        // on its next poll of this queue head).
        if (mem_ != nullptr)
            mem_->deviceWrite(q.doorbellAddr());
    }
    scheduleNext(qid);
}

} // namespace traffic
} // namespace hyperplane
