/**
 * @file
 * Traffic shapes from the paper (Sections II-C and V-A):
 *
 *  - FB (Fully Balanced): traffic passes through all queues.
 *  - PC (Proportionally Concentrated): 20% of queues carry traffic all
 *    the time; each remaining queue is active with probability 5%.
 *  - NC (Non-proportionally Concentrated): 100 queues carry traffic all
 *    the time; each remaining queue is active with probability 5%.
 *  - SQ (Single Queue): all traffic through one queue.
 *
 * Plus one non-paper shape for the stateful app suite:
 *
 *  - Zipf: every queue active with weight proportional to 1/(rank+1)
 *    over a shuffled rank assignment — the skewed flow-popularity
 *    distribution the heavy-hitter bench needs (a few queues carry
 *    most of the load, with a long light tail).
 *
 * A shape maps to per-queue rate weights; the Poisson source splits the
 * total offered rate across queues proportionally to the weights.
 */

#ifndef HYPERPLANE_TRAFFIC_SHAPES_HH
#define HYPERPLANE_TRAFFIC_SHAPES_HH

#include <string>
#include <vector>

#include "sim/rng.hh"
#include "sim/types.hh"

namespace hyperplane {
namespace traffic {

/** The four traffic shapes of the evaluation, plus Zipf. */
enum class Shape : std::uint8_t
{
    FB,   ///< fully balanced
    PC,   ///< proportionally concentrated
    NC,   ///< non-proportionally concentrated
    SQ,   ///< single queue
    Zipf, ///< zipfian popularity skew (stateful app benches)
};

const char *toString(Shape s);

/**
 * The four paper shapes in the paper's order.  Zipf is deliberately
 * NOT here: figure reproductions iterate this list and its membership
 * is part of the golden-output contract.
 */
const std::vector<Shape> &allShapes();

/**
 * Draw the per-queue rate weights for a shape.
 *
 * Active queues share the load equally; inactive queues have weight 0.
 * Weights sum to 1 (exactly one queue is always active in every shape).
 *
 * @param shape     Traffic shape.
 * @param numQueues Total number of queues.
 * @param rng       Randomness for membership draws (PC/NC).
 */
std::vector<double> shapeWeights(Shape shape, unsigned numQueues,
                                 Rng &rng);

/** Number of non-zero weights. */
unsigned activeQueueCount(const std::vector<double> &weights);

/**
 * Apply a static load imbalance to a weight vector (Section V-C): the
 * first half of the *active* queues get (1 + imbalance) times the rate
 * of the second half, renormalized.  Used for the scale-out
 * 10%-imbalance variants of Figure 10(b).
 */
std::vector<double> applyImbalance(const std::vector<double> &weights,
                                   double imbalance);

} // namespace traffic
} // namespace hyperplane

#endif // HYPERPLANE_TRAFFIC_SHAPES_HH
