/**
 * @file
 * Open-loop Poisson traffic generation.
 *
 * Each active queue receives an independent Poisson arrival process whose
 * rate is its weight share of the total offered rate — the memoryless
 * inter-arrival behaviour the paper's evaluation uses ("our arrivals
 * follow a Poisson process", Section V-B).  Arrivals enqueue a WorkItem
 * into the device-side queue and perform the producer's doorbell write
 * through the memory system, which is what the monitoring set snoops.
 */

#ifndef HYPERPLANE_TRAFFIC_POISSON_SOURCE_HH
#define HYPERPLANE_TRAFFIC_POISSON_SOURCE_HH

#include <functional>
#include <vector>

#include "mem/memory_system.hh"
#include "queueing/task_queue.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "stats/sampler.hh"

namespace hyperplane {
namespace traffic {

/** Poisson source configuration. */
struct SourceConfig
{
    /** Total offered rate across all queues, tasks/second. */
    double totalRatePerSec = 1e5;
    /** Payload size attached to each work item, bytes. */
    std::uint32_t payloadBytes = 1024;
    /** Per-queue backlog cap; arrivals beyond it are dropped. */
    std::size_t maxQueueDepth = 4096;
    /** RNG seed. */
    std::uint64_t seed = 1;
};

/**
 * Drives arrivals into a QueueSet via an EventQueue.
 */
class PoissonSource
{
  public:
    /** Called after each accepted arrival. */
    using ArrivalHook =
        std::function<void(QueueId, const queueing::WorkItem &)>;

    /**
     * @param eq      Simulation event queue.
     * @param queues  Destination queues.
     * @param mem     Memory system for doorbell writes (may be null in
     *                unit tests, skipping the coherence traffic).
     * @param cfg     Rate/payload configuration.
     * @param weights Per-queue rate weights (see shapes.hh).
     */
    PoissonSource(EventQueue &eq, queueing::QueueSet &queues,
                  mem::MemorySystem *mem, const SourceConfig &cfg,
                  std::vector<double> weights);

    /** Begin generating arrivals at the current simulation time. */
    void start();

    /** Stop generating (pending per-queue events are cancelled). */
    void stop();

    void setArrivalHook(ArrivalHook hook) { hook_ = std::move(hook); }

    /** Update the total offered rate (takes effect per queue lazily). */
    void setRate(double totalRatePerSec);

    std::uint64_t generated() const { return generated_.value(); }
    std::uint64_t dropped() const { return dropped_.value(); }

    stats::Counter generated_{"arrivals_generated"};
    stats::Counter dropped_{"arrivals_dropped"};

  private:
    void scheduleNext(QueueId qid);
    void arrive(QueueId qid);

    EventQueue &eq_;
    queueing::QueueSet &queues_;
    mem::MemorySystem *mem_;
    SourceConfig cfg_;
    std::vector<double> weights_;
    Rng rng_;
    bool running_ = false;
    std::uint64_t nextSeq_ = 0;
    std::vector<EventId> pending_;
    ArrivalHook hook_;
};

} // namespace traffic
} // namespace hyperplane

#endif // HYPERPLANE_TRAFFIC_POISSON_SOURCE_HH
