#include "traffic/load_controller.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace hyperplane {
namespace traffic {

LoadController::LoadController(double capacityPerSec)
{
    setCapacity(capacityPerSec);
}

void
LoadController::setCapacity(double capacityPerSec)
{
    hp_assert(capacityPerSec > 0.0, "capacity must be positive");
    capacity_ = capacityPerSec;
}

double
LoadController::rateForLoad(double loadFraction) const
{
    hp_assert(capacity_ > 0.0, "capacity not set");
    // Floor at 0.5% so "zero load" runs still see occasional arrivals.
    const double f = std::max(loadFraction, 0.005);
    return capacity_ * f;
}

double
LoadController::analyticCapacity(unsigned cores, double cyclesPerItem)
{
    hp_assert(cyclesPerItem > 0.0, "cycles per item must be positive");
    const double cyclesPerSec = clockGHz * 1e9;
    return cores * cyclesPerSec / cyclesPerItem;
}

} // namespace traffic
} // namespace hyperplane
