/**
 * @file
 * Load control: converting "x% load" experiment axes into offered rates.
 *
 * The multicore experiments (Figures 10-12) sweep offered load as a
 * fraction of saturation throughput.  LoadController holds a capacity
 * estimate (tasks/s at saturation, usually measured by a short
 * calibration simulation) and maps load fractions to Poisson rates.
 */

#ifndef HYPERPLANE_TRAFFIC_LOAD_CONTROLLER_HH
#define HYPERPLANE_TRAFFIC_LOAD_CONTROLLER_HH

#include "sim/types.hh"

namespace hyperplane {
namespace traffic {

/** Maps load fractions to offered rates against a capacity estimate. */
class LoadController
{
  public:
    LoadController() = default;

    /** @param capacityPerSec Saturation throughput, tasks/second. */
    explicit LoadController(double capacityPerSec);

    double capacityPerSec() const { return capacity_; }
    void setCapacity(double capacityPerSec);

    /**
     * Offered rate for a load fraction.
     * @param loadFraction In [0, 1]; values near 0 are clamped to a
     *        floor so zero-load latency runs still generate arrivals.
     */
    double rateForLoad(double loadFraction) const;

    /**
     * Analytic first-cut capacity for @p cores each spending
     * @p cyclesPerItem per task (used to seed calibration runs).
     */
    static double analyticCapacity(unsigned cores, double cyclesPerItem);

  private:
    double capacity_ = 0.0;
};

} // namespace traffic
} // namespace hyperplane

#endif // HYPERPLANE_TRAFFIC_LOAD_CONTROLLER_HH
