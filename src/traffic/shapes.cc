#include "traffic/shapes.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace hyperplane {
namespace traffic {

const char *
toString(Shape s)
{
    switch (s) {
      case Shape::FB:
        return "FB";
      case Shape::PC:
        return "PC";
      case Shape::NC:
        return "NC";
      case Shape::SQ:
        return "SQ";
      case Shape::Zipf:
        return "Zipf";
    }
    return "?";
}

const std::vector<Shape> &
allShapes()
{
    static const std::vector<Shape> shapes = {Shape::FB, Shape::PC,
                                              Shape::NC, Shape::SQ};
    return shapes;
}

std::vector<double>
shapeWeights(Shape shape, unsigned numQueues, Rng &rng)
{
    hp_assert(numQueues > 0, "need at least one queue");
    std::vector<bool> active(numQueues, false);

    switch (shape) {
      case Shape::FB:
        std::fill(active.begin(), active.end(), true);
        break;
      case Shape::PC: {
        // 20% always active (randomly chosen), the rest with p = 5%.
        const unsigned always = std::max(1u, numQueues / 5);
        std::vector<unsigned> ids(numQueues);
        for (unsigned i = 0; i < numQueues; ++i)
            ids[i] = i;
        rng.shuffle(ids);
        for (unsigned i = 0; i < always; ++i)
            active[ids[i]] = true;
        for (unsigned i = always; i < numQueues; ++i)
            active[ids[i]] = rng.chance(0.05);
        break;
      }
      case Shape::NC: {
        // 100 queues always active, the rest with p = 5%.
        const unsigned always = std::min(numQueues, 100u);
        std::vector<unsigned> ids(numQueues);
        for (unsigned i = 0; i < numQueues; ++i)
            ids[i] = i;
        rng.shuffle(ids);
        for (unsigned i = 0; i < always; ++i)
            active[ids[i]] = true;
        for (unsigned i = always; i < numQueues; ++i)
            active[ids[i]] = rng.chance(0.05);
        break;
      }
      case Shape::SQ:
        active[rng.uniformInt(numQueues)] = true;
        break;
      case Shape::Zipf: {
        // Every queue active; weight ~ 1/(rank+1) over shuffled ranks.
        std::vector<unsigned> ids(numQueues);
        for (unsigned i = 0; i < numQueues; ++i)
            ids[i] = i;
        rng.shuffle(ids);
        std::vector<double> weights(numQueues, 0.0);
        double sum = 0.0;
        for (unsigned rank = 0; rank < numQueues; ++rank) {
            weights[ids[rank]] = 1.0 / (rank + 1.0);
            sum += weights[ids[rank]];
        }
        for (double &w : weights)
            w /= sum;
        return weights;
      }
    }

    unsigned numActive = 0;
    for (bool a : active)
        numActive += a ? 1 : 0;
    hp_assert(numActive > 0, "shape produced no active queues");

    std::vector<double> weights(numQueues, 0.0);
    const double w = 1.0 / numActive;
    for (unsigned q = 0; q < numQueues; ++q) {
        if (active[q])
            weights[q] = w;
    }
    return weights;
}

unsigned
activeQueueCount(const std::vector<double> &weights)
{
    unsigned n = 0;
    for (double w : weights)
        n += w > 0.0 ? 1 : 0;
    return n;
}

std::vector<double>
applyImbalance(const std::vector<double> &weights, double imbalance)
{
    hp_assert(imbalance >= 0.0, "imbalance must be non-negative");
    std::vector<unsigned> activeIds;
    for (unsigned q = 0; q < weights.size(); ++q) {
        if (weights[q] > 0.0)
            activeIds.push_back(q);
    }
    std::vector<double> out = weights;
    const std::size_t half = activeIds.size() / 2;
    for (std::size_t i = 0; i < half; ++i)
        out[activeIds[i]] *= 1.0 + imbalance;
    // Renormalize to sum 1.
    double sum = 0.0;
    for (double w : out)
        sum += w;
    for (double &w : out)
        w /= sum;
    return out;
}

} // namespace traffic
} // namespace hyperplane
