/**
 * @file
 * Google-benchmark micro-benchmarks of the library's hot operations:
 * the simulation kernel, the accelerator structures, and the real
 * workload computations that calibrate the timing model.
 */

#include <benchmark/benchmark.h>

#include "codes/raid.hh"
#include "codes/reed_solomon.hh"
#include "core/monitoring_set.hh"
#include "core/ppa.hh"
#include "core/ready_set.hh"
#include "crypto/aes.hh"
#include "crypto/cbc.hh"
#include "net/checksum.hh"
#include "queueing/doorbell.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "stats/histogram.hh"
#include "workloads/packet_encapsulation.hh"

using namespace hyperplane;

namespace {

void
BM_EventQueueScheduleDispatch(benchmark::State &state)
{
    EventQueue eq;
    for (auto _ : state) {
        eq.scheduleIn(10, [] {});
        eq.step();
    }
    benchmark::DoNotOptimize(eq.dispatched());
}
BENCHMARK(BM_EventQueueScheduleDispatch);

void
BM_RngExponential(benchmark::State &state)
{
    Rng rng(1);
    double sink = 0;
    for (auto _ : state)
        sink += rng.exponential(1.0);
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_RngExponential);

void
BM_MonitoringSetSnoop(benchmark::State &state)
{
    core::MonitoringSetConfig cfg;
    cfg.capacity = 1024;
    core::MonitoringSet ms(cfg);
    const unsigned n = static_cast<unsigned>(state.range(0));
    for (unsigned i = 0; i < n; ++i)
        ms.insert(queueing::AddressMap::doorbellAddr(i), i);
    unsigned i = 0;
    for (auto _ : state) {
        const Addr a = queueing::AddressMap::doorbellAddr(i++ % n);
        benchmark::DoNotOptimize(ms.onWriteTransaction(a));
        ms.arm(a);
    }
}
BENCHMARK(BM_MonitoringSetSnoop)->Arg(64)->Arg(1000);

void
BM_MonitoringSetInsertRemove(benchmark::State &state)
{
    core::MonitoringSetConfig cfg;
    cfg.capacity = 1024;
    core::MonitoringSet ms(cfg);
    for (unsigned i = 0; i < 900; ++i)
        ms.insert(queueing::AddressMap::doorbellAddr(i), i);
    for (auto _ : state) {
        ms.insert(queueing::AddressMap::doorbellAddr(1000), 1000);
        ms.remove(queueing::AddressMap::doorbellAddr(1000));
    }
}
BENCHMARK(BM_MonitoringSetInsertRemove);

void
BM_PpaSelectWordScan(benchmark::State &state)
{
    const unsigned n = static_cast<unsigned>(state.range(0));
    core::BitVec ready(n);
    Rng rng(2);
    for (unsigned i = 0; i < n / 8; ++i)
        ready.set(static_cast<unsigned>(rng.uniformInt(n)));
    core::BrentKungPpa ppa;
    unsigned p = 0;
    for (auto _ : state) {
        const int g = ppa.select(ready, p);
        benchmark::DoNotOptimize(g);
        p = g >= 0 ? (g + 1) % n : 0;
    }
}
BENCHMARK(BM_PpaSelectWordScan)->Arg(64)->Arg(1024)->Arg(4096);

void
BM_PpaSelectGateLevel(benchmark::State &state)
{
    const unsigned n = static_cast<unsigned>(state.range(0));
    core::BitVec ready(n);
    Rng rng(2);
    for (unsigned i = 0; i < n / 8; ++i)
        ready.set(static_cast<unsigned>(rng.uniformInt(n)));
    core::BrentKungPpa ppa;
    for (auto _ : state)
        benchmark::DoNotOptimize(ppa.selectPrefixNetwork(ready, 7));
}
BENCHMARK(BM_PpaSelectGateLevel)->Arg(1024);

void
BM_ReadySetGrantCycle(benchmark::State &state)
{
    core::ReadySetConfig cfg;
    cfg.capacity = 1024;
    core::ReadySet rs(cfg);
    unsigned q = 0;
    for (auto _ : state) {
        rs.activate(q % 1024);
        benchmark::DoNotOptimize(rs.selectNext());
        q += 37;
    }
}
BENCHMARK(BM_ReadySetGrantCycle);

void
BM_AesCbc256Encrypt(benchmark::State &state)
{
    std::uint8_t key[32] = {1, 2, 3};
    crypto::Aes aes(key, sizeof(key));
    crypto::Iv iv{};
    std::vector<std::uint8_t> buf(state.range(0), 0xab);
    for (auto _ : state)
        crypto::cbcEncryptAligned(aes, iv, buf.data(), buf.size());
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AesCbc256Encrypt)->Arg(1024);

void
BM_ReedSolomonEncode(benchmark::State &state)
{
    codes::ReedSolomon rs(6, 3);
    std::vector<codes::Shard> data(6, codes::Shard(state.range(0), 7));
    for (auto _ : state)
        benchmark::DoNotOptimize(rs.encode(data));
    state.SetBytesProcessed(state.iterations() * state.range(0) * 6);
}
BENCHMARK(BM_ReedSolomonEncode)->Arg(171); // ~1 KiB payload / 6 shards

void
BM_Raid6ParityPQ(benchmark::State &state)
{
    codes::Raid6 raid(8);
    std::vector<codes::Block> stripe(8, codes::Block(state.range(0), 3));
    for (auto _ : state)
        benchmark::DoNotOptimize(raid.computePQ(stripe));
    state.SetBytesProcessed(state.iterations() * state.range(0) * 8);
}
BENCHMARK(BM_Raid6ParityPQ)->Arg(128);

void
BM_Crc32c(benchmark::State &state)
{
    std::vector<std::uint8_t> buf(state.range(0), 0x5a);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            net::crc32c(buf.data(), buf.size()));
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(1024);

void
BM_GreEncapsulate(benchmark::State &state)
{
    workloads::PacketEncapsulation wl(1);
    queueing::WorkItem item;
    item.payloadBytes = 1024;
    for (auto _ : state) {
        ++item.seq;
        benchmark::DoNotOptimize(wl.encapsulate(item));
    }
}
BENCHMARK(BM_GreEncapsulate);

void
BM_LogHistogramRecord(benchmark::State &state)
{
    stats::LogHistogram h(0.01, 1.02, 2048);
    Rng rng(3);
    for (auto _ : state)
        h.record(rng.exponential(10.0));
    benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_LogHistogramRecord);

} // namespace

BENCHMARK_MAIN();
