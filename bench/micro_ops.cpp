/**
 * @file
 * Google-benchmark micro-benchmarks of the library's hot operations:
 * the simulation kernel, the accelerator structures, and the real
 * workload computations that calibrate the timing model.
 */

#include <benchmark/benchmark.h>

#include <string>

#include "codes/raid.hh"
#include "codes/reed_solomon.hh"
#include "core/monitoring_set.hh"
#include "core/ppa.hh"
#include "core/ready_set.hh"
#include "crypto/aes.hh"
#include "crypto/cbc.hh"
#include "net/checksum.hh"
#include "net/simd/dispatch.hh"
#include "queueing/doorbell.hh"
#include "server/wire.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "stats/histogram.hh"
#include "workloads/packet_encapsulation.hh"

using namespace hyperplane;

namespace {

void
BM_EventQueueScheduleDispatch(benchmark::State &state)
{
    EventQueue eq;
    for (auto _ : state) {
        eq.scheduleIn(10, [] {});
        eq.step();
    }
    benchmark::DoNotOptimize(eq.dispatched());
}
BENCHMARK(BM_EventQueueScheduleDispatch);

void
BM_RngExponential(benchmark::State &state)
{
    Rng rng(1);
    double sink = 0;
    for (auto _ : state)
        sink += rng.exponential(1.0);
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_RngExponential);

void
BM_MonitoringSetSnoop(benchmark::State &state)
{
    core::MonitoringSetConfig cfg;
    cfg.capacity = 1024;
    core::MonitoringSet ms(cfg);
    const unsigned n = static_cast<unsigned>(state.range(0));
    for (unsigned i = 0; i < n; ++i)
        ms.insert(queueing::AddressMap::doorbellAddr(i), i);
    unsigned i = 0;
    for (auto _ : state) {
        const Addr a = queueing::AddressMap::doorbellAddr(i++ % n);
        benchmark::DoNotOptimize(ms.onWriteTransaction(a));
        ms.arm(a);
    }
}
BENCHMARK(BM_MonitoringSetSnoop)->Arg(64)->Arg(1000);

void
BM_MonitoringSetInsertRemove(benchmark::State &state)
{
    core::MonitoringSetConfig cfg;
    cfg.capacity = 1024;
    core::MonitoringSet ms(cfg);
    for (unsigned i = 0; i < 900; ++i)
        ms.insert(queueing::AddressMap::doorbellAddr(i), i);
    for (auto _ : state) {
        ms.insert(queueing::AddressMap::doorbellAddr(1000), 1000);
        ms.remove(queueing::AddressMap::doorbellAddr(1000));
    }
}
BENCHMARK(BM_MonitoringSetInsertRemove);

void
BM_PpaSelectWordScan(benchmark::State &state)
{
    const unsigned n = static_cast<unsigned>(state.range(0));
    core::BitVec ready(n);
    Rng rng(2);
    for (unsigned i = 0; i < n / 8; ++i)
        ready.set(static_cast<unsigned>(rng.uniformInt(n)));
    core::BrentKungPpa ppa;
    unsigned p = 0;
    for (auto _ : state) {
        const int g = ppa.select(ready, p);
        benchmark::DoNotOptimize(g);
        p = g >= 0 ? (g + 1) % n : 0;
    }
}
BENCHMARK(BM_PpaSelectWordScan)->Arg(64)->Arg(1024)->Arg(4096);

void
BM_PpaSelectGateLevel(benchmark::State &state)
{
    const unsigned n = static_cast<unsigned>(state.range(0));
    core::BitVec ready(n);
    Rng rng(2);
    for (unsigned i = 0; i < n / 8; ++i)
        ready.set(static_cast<unsigned>(rng.uniformInt(n)));
    core::BrentKungPpa ppa;
    for (auto _ : state)
        benchmark::DoNotOptimize(ppa.selectPrefixNetwork(ready, 7));
}
BENCHMARK(BM_PpaSelectGateLevel)->Arg(1024);

void
BM_ReadySetGrantCycle(benchmark::State &state)
{
    core::ReadySetConfig cfg;
    cfg.capacity = 1024;
    core::ReadySet rs(cfg);
    unsigned q = 0;
    for (auto _ : state) {
        rs.activate(q % 1024);
        benchmark::DoNotOptimize(rs.selectNext());
        q += 37;
    }
}
BENCHMARK(BM_ReadySetGrantCycle);

void
BM_AesCbc256Encrypt(benchmark::State &state)
{
    std::uint8_t key[32] = {1, 2, 3};
    crypto::Aes aes(key, sizeof(key));
    crypto::Iv iv{};
    std::vector<std::uint8_t> buf(state.range(0), 0xab);
    for (auto _ : state)
        crypto::cbcEncryptAligned(aes, iv, buf.data(), buf.size());
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AesCbc256Encrypt)->Arg(1024);

void
BM_ReedSolomonEncode(benchmark::State &state)
{
    codes::ReedSolomon rs(6, 3);
    std::vector<codes::Shard> data(6, codes::Shard(state.range(0), 7));
    for (auto _ : state)
        benchmark::DoNotOptimize(rs.encode(data));
    state.SetBytesProcessed(state.iterations() * state.range(0) * 6);
}
BENCHMARK(BM_ReedSolomonEncode)->Arg(171); // ~1 KiB payload / 6 shards

void
BM_Raid6ParityPQ(benchmark::State &state)
{
    codes::Raid6 raid(8);
    std::vector<codes::Block> stripe(8, codes::Block(state.range(0), 3));
    for (auto _ : state)
        benchmark::DoNotOptimize(raid.computePQ(stripe));
    state.SetBytesProcessed(state.iterations() * state.range(0) * 8);
}
BENCHMARK(BM_Raid6ParityPQ)->Arg(128);

void
BM_Crc32c(benchmark::State &state)
{
    std::vector<std::uint8_t> buf(state.range(0), 0x5a);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            net::crc32c(buf.data(), buf.size()));
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(1024);

// --- SIMD kernel layer: one bench per variant per kernel, so a run on
// capable hardware reports the scalar/SSE/AVX2 spread directly.  A
// variant the build or host lacks skips with an annotation.

void
benchChecksumVariant(benchmark::State &state,
                     net::simd::ChecksumPartialFn fn, const char *name)
{
    if (!fn) {
        state.SkipWithError(
            (std::string(name) + " unavailable on this host").c_str());
        return;
    }
    std::vector<std::uint8_t> buf(state.range(0), 0x5a);
    for (auto _ : state)
        benchmark::DoNotOptimize(fn(buf.data(), buf.size(), 0));
    state.SetBytesProcessed(state.iterations() * state.range(0));
}

void
BM_ChecksumScalar(benchmark::State &state)
{
    benchChecksumVariant(
        state, net::simd::scalarKernels().checksumPartial, "scalar");
}
BENCHMARK(BM_ChecksumScalar)->Arg(64)->Arg(1500);

void
BM_ChecksumSse2(benchmark::State &state)
{
    benchChecksumVariant(state, net::simd::checksumPartialSse2(),
                         "sse2");
}
BENCHMARK(BM_ChecksumSse2)->Arg(64)->Arg(1500);

void
BM_ChecksumAvx2(benchmark::State &state)
{
    benchChecksumVariant(state, net::simd::checksumPartialAvx2(),
                         "avx2");
}
BENCHMARK(BM_ChecksumAvx2)->Arg(64)->Arg(1500);

void
BM_ChecksumDispatched(benchmark::State &state)
{
    benchChecksumVariant(state, net::simd::kernels().checksumPartial,
                         "dispatched");
}
BENCHMARK(BM_ChecksumDispatched)->Arg(64)->Arg(1500);

void
BM_Crc32cScalar(benchmark::State &state)
{
    std::vector<std::uint8_t> buf(state.range(0), 0x5a);
    const auto fn = net::simd::scalarKernels().crc32c;
    for (auto _ : state)
        benchmark::DoNotOptimize(fn(buf.data(), buf.size(), 0));
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32cScalar)->Arg(1024);

void
BM_Crc32cSse42(benchmark::State &state)
{
    const auto fn = net::simd::crc32cSse42();
    if (!fn) {
        state.SkipWithError("sse4.2 crc32 unavailable on this host");
        return;
    }
    std::vector<std::uint8_t> buf(state.range(0), 0x5a);
    for (auto _ : state)
        benchmark::DoNotOptimize(fn(buf.data(), buf.size(), 0));
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32cSse42)->Arg(1024);

void
benchHeaderCheckVariant(benchmark::State &state,
                        net::simd::HeaderCheckFn fn, const char *name)
{
    if (!fn) {
        state.SkipWithError(
            (std::string(name) + " unavailable on this host").c_str());
        return;
    }
    // A realistic RX burst: 32 valid request headers.
    constexpr std::size_t n = 32;
    server::wire::RequestHeader hdr;
    hdr.payloadLen = 0;
    std::vector<std::vector<std::uint8_t>> storage(n);
    std::vector<const std::uint8_t *> pkts(n);
    std::vector<std::uint32_t> lens(n);
    for (std::size_t i = 0; i < n; ++i) {
        storage[i].resize(server::wire::maxDatagramBytes);
        hdr.seq = i;
        const std::size_t len = server::wire::buildRequest(
            storage[i].data(), storage[i].size(), hdr, nullptr);
        pkts[i] = storage[i].data();
        lens[i] = static_cast<std::uint32_t>(len);
    }
    const std::uint8_t prefix[8] = {'H', 'P', 'R', 'Q',
                                    server::wire::wireVersion, 0, 0, 0};
    std::uint8_t ok[n];
    for (auto _ : state) {
        fn(pkts.data(), lens.data(), n, prefix,
           server::wire::numOpcodes,
           server::wire::RequestHeader::wireSize, ok);
        benchmark::DoNotOptimize(ok[0]);
    }
    state.SetItemsProcessed(state.iterations() * n);
}

void
BM_HeaderCheckScalar(benchmark::State &state)
{
    benchHeaderCheckVariant(
        state, net::simd::scalarKernels().headerCheck, "scalar");
}
BENCHMARK(BM_HeaderCheckScalar);

void
BM_HeaderCheckSse2(benchmark::State &state)
{
    benchHeaderCheckVariant(state, net::simd::headerCheckSse2(), "sse2");
}
BENCHMARK(BM_HeaderCheckSse2);

void
BM_HeaderCheckAvx2(benchmark::State &state)
{
    benchHeaderCheckVariant(state, net::simd::headerCheckAvx2(), "avx2");
}
BENCHMARK(BM_HeaderCheckAvx2);

void
BM_GreEncapsulate(benchmark::State &state)
{
    workloads::PacketEncapsulation wl(1);
    queueing::WorkItem item;
    item.payloadBytes = 1024;
    for (auto _ : state) {
        ++item.seq;
        benchmark::DoNotOptimize(wl.encapsulate(item));
    }
}
BENCHMARK(BM_GreEncapsulate);

void
BM_LogHistogramRecord(benchmark::State &state)
{
    stats::LogHistogram h(0.01, 1.02, 2048);
    Rng rng(3);
    for (auto _ : state)
        h.record(rng.exponential(10.0));
    benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_LogHistogramRecord);

} // namespace

BENCHMARK_MAIN();
