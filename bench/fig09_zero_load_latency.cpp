/**
 * @file
 * Figure 9 reproduction: zero-load latency vs queue count
 * (Section V-B).
 *
 *  (a) average and 99% tail latency of the spinning data plane;
 *  (b) average latency of HyperPlane, regular and power-optimized.
 *
 * Traffic is very light (<1% load) so the numbers are notification +
 * service latency with no queueing delay; service jitter is disabled to
 * isolate the notification path.
 */

#include <cstdio>
#include <fstream>
#include <sstream>

#include "dp/sdp_system.hh"
#include "harness/experiment.hh"
#include "harness/export.hh"
#include "harness/parallel.hh"
#include "harness/runner.hh"
#include "stats/json.hh"
#include "stats/table.hh"

using namespace hyperplane;

namespace {

dp::SdpConfig
pointCfg(workloads::Kind kind, unsigned queues, dp::PlaneKind plane,
         bool powerOpt)
{
    dp::SdpConfig cfg;
    cfg.plane = plane;
    cfg.powerOptimized = powerOpt;
    cfg.numCores = 1;
    cfg.numQueues = queues;
    cfg.workload = kind;
    cfg.shape = traffic::Shape::SQ; // one active tenant, rest idle
    cfg.jitter = dp::ServiceJitter::None;
    cfg.seed = 31;
    return harness::zeroLoadConfig(cfg, 700);
}

/**
 * One traced zero-load run: per-stage latency breakdown of the
 * notification path, plus optional Chrome-trace / time-series export
 * (--trace <file.json>, --timeseries <file.csv>).
 */
void
tracedZeroLoadRun(int argc, char **argv)
{
    dp::SdpConfig cfg;
    cfg.plane = dp::PlaneKind::HyperPlane;
    cfg.numCores = 1;
    cfg.numQueues = 64;
    cfg.workload = workloads::Kind::PacketEncapsulation;
    cfg.shape = traffic::Shape::SQ;
    cfg.jitter = dp::ServiceJitter::None;
    cfg.seed = 31;
    cfg = harness::zeroLoadConfig(cfg, 700);
    cfg.trace.enable = true;
    if (harness::argValue(argc, argv, "--timeseries") != nullptr)
        cfg.trace.sampleEveryUs = cfg.measureUs / 200.0;

    dp::SdpSystem sys(cfg);
    const auto r = sys.run();

    stats::Table t("Traced run: notification-path stage breakdown "
                   "(hyperplane, 64 queues, avg us)");
    t.header({"doorbell->snoop", "snoop->ready", "ready->grant",
              "grant->completion", "sum", "e2e"});
    const double sum = r.avgDoorbellToSnoopUs + r.avgSnoopToReadyUs +
                       r.avgReadyToGrantUs + r.avgGrantToCompletionUs;
    t.row({stats::fmt(r.avgDoorbellToSnoopUs, 3),
           stats::fmt(r.avgSnoopToReadyUs, 3),
           stats::fmt(r.avgReadyToGrantUs, 3),
           stats::fmt(r.avgGrantToCompletionUs, 3), stats::fmt(sum, 3),
           stats::fmt(r.breakdownE2eAvgUs, 3)});
    t.print();
    std::printf("  (%llu episodes, %llu trace events; stage sums match "
                "e2e by construction)\n",
                static_cast<unsigned long long>(r.breakdownSamples),
                static_cast<unsigned long long>(r.traceEvents));

    if (const char *path = harness::argValue(argc, argv, "--trace")) {
        std::ostringstream os;
        sys.writeChromeTrace(os);
        harness::writeTextFile(path, os.str());
    }
    if (const char *path =
            harness::argValue(argc, argv, "--timeseries")) {
        if (const trace::TimeSeries *ts = sys.timeSeries()) {
            std::ostringstream os;
            ts->writeCsv(os);
            harness::writeTextFile(path, os.str());
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    harness::printTableI();
    harness::printExperimentBanner(
        "Figure 9", "zero-load latency vs queue count (<1% load)");
    const unsigned jobs = harness::jobsFromArgs(argc, argv);

    const std::vector<unsigned> queueCounts{1, 8, 64, 250, 500, 1000};
    const auto kinds = workloads::allKinds();

    // Grid order (kind, queues, variant); variants are spinning,
    // hyperplane, power-optimized hyperplane.
    std::vector<dp::SdpConfig> grid;
    for (auto kind : kinds) {
        for (unsigned q : queueCounts) {
            grid.push_back(
                pointCfg(kind, q, dp::PlaneKind::Spinning, false));
            grid.push_back(
                pointCfg(kind, q, dp::PlaneKind::HyperPlane, false));
            grid.push_back(
                pointCfg(kind, q, dp::PlaneKind::HyperPlane, true));
        }
    }
    const auto results = harness::runConfigs(grid, jobs);

    double sumAvgRatio = 0.0, sumTailRatio = 0.0;
    unsigned nRatio = 0;
    std::size_t idx = 0;
    std::ostringstream json;
    json << "{\"workloads\":{";

    for (std::size_t ki = 0; ki < kinds.size(); ++ki) {
        const auto kind = kinds[ki];
        stats::Table t(std::string("Fig 9: ") +
                       workloads::toString(kind) + " (latency, us)");
        t.header({"queues", "spin avg", "spin p99", "hp avg", "hp p99",
                  "hp-pwr avg"});
        json << (ki == 0 ? "" : ",") << "\n"
             << stats::jsonString(workloads::toString(kind)) << ":[";
        for (std::size_t qi = 0; qi < queueCounts.size(); ++qi) {
            const unsigned q = queueCounts[qi];
            const auto &spin = results[idx++];
            const auto &hp = results[idx++];
            const auto &hpPwr = results[idx++];
            t.row({std::to_string(q), stats::fmt(spin.avgLatencyUs, 2),
                   stats::fmt(spin.p99LatencyUs, 2),
                   stats::fmt(hp.avgLatencyUs, 2),
                   stats::fmt(hp.p99LatencyUs, 2),
                   stats::fmt(hpPwr.avgLatencyUs, 2)});
            if (hp.avgLatencyUs > 0 && hp.p99LatencyUs > 0) {
                sumAvgRatio += spin.avgLatencyUs / hp.avgLatencyUs;
                sumTailRatio += spin.p99LatencyUs / hp.p99LatencyUs;
                ++nRatio;
            }
            json << (qi == 0 ? "" : ",") << "\n{\"queues\":" << q
                 << ",\"spinning\":" << harness::resultsJson(spin)
                 << ",\"hyperplane\":" << harness::resultsJson(hp)
                 << ",\"hyperplane_power\":"
                 << harness::resultsJson(hpPwr) << "}";
        }
        json << "]";
        t.print();
    }
    json << "}}\n";

    if (const char *path = harness::argValue(argc, argv, "--json"))
        harness::writeTextFile(path, json.str());

    std::printf("Mean spinning/HyperPlane latency ratio across all "
                "points: avg %s, p99 %s (paper: 9.1x / 16.4x)\n",
                stats::fmtRatio(sumAvgRatio / nRatio).c_str(),
                stats::fmtRatio(sumTailRatio / nRatio).c_str());
    std::puts("Expected shape: spinning latency grows ~linearly in "
              "queue count with a steeper tail;\nHyperPlane stays flat "
              "(<10 us at 1000 queues); spinning wins by <=3% at one "
              "queue;\npower-optimized HyperPlane adds ~0.5 us wake-up "
              "and loses below ~6 queues.");

    tracedZeroLoadRun(argc, argv);
    return 0;
}
