/**
 * @file
 * Figure 9 reproduction: zero-load latency vs queue count
 * (Section V-B).
 *
 *  (a) average and 99% tail latency of the spinning data plane;
 *  (b) average latency of HyperPlane, regular and power-optimized.
 *
 * Traffic is very light (<1% load) so the numbers are notification +
 * service latency with no queueing delay; service jitter is disabled to
 * isolate the notification path.
 */

#include <cstdio>
#include <fstream>
#include <sstream>

#include "dp/sdp_system.hh"
#include "harness/experiment.hh"
#include "harness/export.hh"
#include "harness/runner.hh"
#include "stats/table.hh"

using namespace hyperplane;

namespace {

dp::SdpResults
runPoint(workloads::Kind kind, unsigned queues, dp::PlaneKind plane,
         bool powerOpt)
{
    dp::SdpConfig cfg;
    cfg.plane = plane;
    cfg.powerOptimized = powerOpt;
    cfg.numCores = 1;
    cfg.numQueues = queues;
    cfg.workload = kind;
    cfg.shape = traffic::Shape::SQ; // one active tenant, rest idle
    cfg.jitter = dp::ServiceJitter::None;
    cfg.seed = 31;
    cfg = harness::zeroLoadConfig(cfg, 700);
    return runSdp(cfg);
}

/**
 * One traced zero-load run: per-stage latency breakdown of the
 * notification path, plus optional Chrome-trace / time-series export
 * (--trace <file.json>, --timeseries <file.csv>).
 */
void
tracedZeroLoadRun(int argc, char **argv)
{
    dp::SdpConfig cfg;
    cfg.plane = dp::PlaneKind::HyperPlane;
    cfg.numCores = 1;
    cfg.numQueues = 64;
    cfg.workload = workloads::Kind::PacketEncapsulation;
    cfg.shape = traffic::Shape::SQ;
    cfg.jitter = dp::ServiceJitter::None;
    cfg.seed = 31;
    cfg = harness::zeroLoadConfig(cfg, 700);
    cfg.trace.enable = true;
    if (harness::argValue(argc, argv, "--timeseries") != nullptr)
        cfg.trace.sampleEveryUs = cfg.measureUs / 200.0;

    dp::SdpSystem sys(cfg);
    const auto r = sys.run();

    stats::Table t("Traced run: notification-path stage breakdown "
                   "(hyperplane, 64 queues, avg us)");
    t.header({"doorbell->snoop", "snoop->ready", "ready->grant",
              "grant->completion", "sum", "e2e"});
    const double sum = r.avgDoorbellToSnoopUs + r.avgSnoopToReadyUs +
                       r.avgReadyToGrantUs + r.avgGrantToCompletionUs;
    t.row({stats::fmt(r.avgDoorbellToSnoopUs, 3),
           stats::fmt(r.avgSnoopToReadyUs, 3),
           stats::fmt(r.avgReadyToGrantUs, 3),
           stats::fmt(r.avgGrantToCompletionUs, 3), stats::fmt(sum, 3),
           stats::fmt(r.breakdownE2eAvgUs, 3)});
    t.print();
    std::printf("  (%llu episodes, %llu trace events; stage sums match "
                "e2e by construction)\n",
                static_cast<unsigned long long>(r.breakdownSamples),
                static_cast<unsigned long long>(r.traceEvents));

    if (const char *path = harness::argValue(argc, argv, "--trace")) {
        std::ostringstream os;
        sys.writeChromeTrace(os);
        harness::writeTextFile(path, os.str());
    }
    if (const char *path =
            harness::argValue(argc, argv, "--timeseries")) {
        if (const trace::TimeSeries *ts = sys.timeSeries()) {
            std::ostringstream os;
            ts->writeCsv(os);
            harness::writeTextFile(path, os.str());
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    harness::printTableI();
    harness::printExperimentBanner(
        "Figure 9", "zero-load latency vs queue count (<1% load)");

    const std::vector<unsigned> queueCounts{1, 8, 64, 250, 500, 1000};

    double sumAvgRatio = 0.0, sumTailRatio = 0.0;
    unsigned nRatio = 0;

    for (auto kind : workloads::allKinds()) {
        stats::Table t(std::string("Fig 9: ") +
                       workloads::toString(kind) + " (latency, us)");
        t.header({"queues", "spin avg", "spin p99", "hp avg", "hp p99",
                  "hp-pwr avg"});
        for (unsigned q : queueCounts) {
            const auto spin =
                runPoint(kind, q, dp::PlaneKind::Spinning, false);
            const auto hp =
                runPoint(kind, q, dp::PlaneKind::HyperPlane, false);
            const auto hpPwr =
                runPoint(kind, q, dp::PlaneKind::HyperPlane, true);
            t.row({std::to_string(q), stats::fmt(spin.avgLatencyUs, 2),
                   stats::fmt(spin.p99LatencyUs, 2),
                   stats::fmt(hp.avgLatencyUs, 2),
                   stats::fmt(hp.p99LatencyUs, 2),
                   stats::fmt(hpPwr.avgLatencyUs, 2)});
            if (hp.avgLatencyUs > 0 && hp.p99LatencyUs > 0) {
                sumAvgRatio += spin.avgLatencyUs / hp.avgLatencyUs;
                sumTailRatio += spin.p99LatencyUs / hp.p99LatencyUs;
                ++nRatio;
            }
        }
        t.print();
    }

    std::printf("Mean spinning/HyperPlane latency ratio across all "
                "points: avg %s, p99 %s (paper: 9.1x / 16.4x)\n",
                stats::fmtRatio(sumAvgRatio / nRatio).c_str(),
                stats::fmtRatio(sumTailRatio / nRatio).c_str());
    std::puts("Expected shape: spinning latency grows ~linearly in "
              "queue count with a steeper tail;\nHyperPlane stays flat "
              "(<10 us at 1000 queues); spinning wins by <=3% at one "
              "queue;\npower-optimized HyperPlane adds ~0.5 us wake-up "
              "and loses below ~6 queues.");

    tracedZeroLoadRun(argc, argv);
    return 0;
}
