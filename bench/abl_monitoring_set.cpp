/**
 * @file
 * Ablation: monitoring-set organization (Section IV-A).
 *
 * The paper argues a ZCache-style Cuckoo table keeps the conflict rate
 * negligible with 5-10% over-provisioning, whereas plain set-associative
 * structures need very high associativity.  This ablation measures
 * insertion-conflict rates vs occupancy for 2-way and 4-way Cuckoo walks
 * and for a walk-free (set-associative-like) configuration.
 */

#include <cstdio>

#include "core/monitoring_set.hh"
#include "harness/experiment.hh"
#include "queueing/doorbell.hh"
#include "sim/rng.hh"
#include "stats/table.hh"

using namespace hyperplane;

namespace {

/** Fraction of random doorbell inserts that conflict. */
double
conflictRate(unsigned ways, unsigned walkSteps, double targetLoad,
             std::uint64_t seed, unsigned banks = 1)
{
    core::MonitoringSetConfig cfg;
    cfg.capacity = 1024;
    cfg.ways = ways;
    cfg.banks = banks;
    cfg.maxWalkSteps = walkSteps;
    core::MonitoringSet ms(cfg);
    Rng rng(seed);
    const auto inserts =
        static_cast<unsigned>(targetLoad * cfg.capacity);
    unsigned failures = 0;
    for (unsigned i = 0; i < inserts; ++i) {
        // Random line-aligned doorbell addresses (driver-allocated).
        const Addr addr = queueing::AddressMap::doorbellBase +
                          rng.uniformInt(1u << 24) * cacheLineBytes;
        if (ms.insert(addr, i) != core::MonitoringSet::InsertResult::Ok)
            ++failures;
    }
    return static_cast<double>(failures) / inserts;
}

} // namespace

int
main()
{
    harness::printExperimentBanner(
        "Ablation: monitoring set",
        "Cuckoo-walk insertion conflict rate vs occupancy (1024 "
        "entries; mean of 5 seeds)");

    stats::Table t("Insert conflict rate (%)");
    t.header({"target load", "2-way no-walk", "2-way walk", "4-way "
              "no-walk", "4-way walk (ZCache-like)"});
    for (double load : {0.5, 0.7, 0.85, 0.91, 0.977}) {
        std::vector<std::string> row{stats::fmt(load * 100, 1) + "%"};
        for (auto [ways, steps] :
             {std::pair{2u, 1u}, std::pair{2u, 64u}, std::pair{4u, 1u},
              std::pair{4u, 64u}}) {
            double sum = 0;
            for (std::uint64_t seed = 1; seed <= 5; ++seed)
                sum += conflictRate(ways, steps, load, seed);
            row.push_back(stats::fmt(100.0 * sum / 5, 2));
        }
        t.row(std::move(row));
    }
    t.print();

    // Banked organizations (distributed directories, Section IV-A):
    // banks shrink each Cuckoo table, costing some occupancy headroom.
    stats::Table tb("4-way walk conflict rate vs banking (%)");
    tb.header({"target load", "1 bank", "2 banks", "4 banks",
               "8 banks"});
    for (double load : {0.85, 0.91, 0.977}) {
        std::vector<std::string> row{stats::fmt(load * 100, 1) + "%"};
        for (unsigned banks : {1u, 2u, 4u, 8u}) {
            double sum = 0;
            for (std::uint64_t seed = 1; seed <= 5; ++seed)
                sum += conflictRate(4, 64, load, seed, banks);
            row.push_back(stats::fmt(100.0 * sum / 5, 2));
        }
        tb.row(std::move(row));
    }
    tb.print();

    std::puts("Expected: the 4-way walk sustains the paper's 1000/1024 "
              "(97.7%) occupancy with ~0 conflicts;\n2-way tables "
              "saturate near 50% occupancy; removing the walk cripples "
              "either geometry.\n(91% load corresponds to ~10% "
              "over-provisioning; conflict rate ~0.1% or less, "
              "Section IV-A.)");
    return 0;
}
