/**
 * @file
 * Ablation: monitoring-set organization (Section IV-A).
 *
 * The paper argues a ZCache-style Cuckoo table keeps the conflict rate
 * negligible with 5-10% over-provisioning, whereas plain set-associative
 * structures need very high associativity.  This ablation measures
 * insertion-conflict rates vs occupancy for 2-way and 4-way Cuckoo walks
 * and for a walk-free (set-associative-like) configuration.
 */

#include <cstdio>

#include "core/monitoring_set.hh"
#include "harness/experiment.hh"
#include "harness/parallel.hh"
#include "queueing/doorbell.hh"
#include "sim/rng.hh"
#include "stats/table.hh"

using namespace hyperplane;

namespace {

/** Fraction of random doorbell inserts that conflict. */
double
conflictRate(unsigned ways, unsigned walkSteps, double targetLoad,
             std::uint64_t seed, unsigned banks = 1)
{
    core::MonitoringSetConfig cfg;
    cfg.capacity = 1024;
    cfg.ways = ways;
    cfg.banks = banks;
    cfg.maxWalkSteps = walkSteps;
    core::MonitoringSet ms(cfg);
    Rng rng(seed);
    const auto inserts =
        static_cast<unsigned>(targetLoad * cfg.capacity);
    unsigned failures = 0;
    for (unsigned i = 0; i < inserts; ++i) {
        // Random line-aligned doorbell addresses (driver-allocated).
        const Addr addr = queueing::AddressMap::doorbellBase +
                          rng.uniformInt(1u << 24) * cacheLineBytes;
        if (ms.insert(addr, i) != core::MonitoringSet::InsertResult::Ok)
            ++failures;
    }
    return static_cast<double>(failures) / inserts;
}

} // namespace

int
main(int argc, char **argv)
{
    harness::printExperimentBanner(
        "Ablation: monitoring set",
        "Cuckoo-walk insertion conflict rate vs occupancy (1024 "
        "entries; mean of 5 seeds)");
    const unsigned jobs = harness::jobsFromArgs(argc, argv);

    const std::vector<double> loadsA{0.5, 0.7, 0.85, 0.91, 0.977};
    const std::vector<std::pair<unsigned, unsigned>> geometries{
        {2, 1}, {2, 64}, {4, 1}, {4, 64}};
    std::vector<double> cellsA(loadsA.size() * geometries.size());
    harness::parallelFor(cellsA.size(), jobs, [&](std::size_t i) {
        const double load = loadsA[i / geometries.size()];
        const auto [ways, steps] = geometries[i % geometries.size()];
        double sum = 0;
        for (std::uint64_t seed = 1; seed <= 5; ++seed)
            sum += conflictRate(ways, steps, load, seed);
        cellsA[i] = 100.0 * sum / 5;
    });

    stats::Table t("Insert conflict rate (%)");
    t.header({"target load", "2-way no-walk", "2-way walk", "4-way "
              "no-walk", "4-way walk (ZCache-like)"});
    for (std::size_t li = 0; li < loadsA.size(); ++li) {
        std::vector<std::string> row{stats::fmt(loadsA[li] * 100, 1) +
                                     "%"};
        for (std::size_t gi = 0; gi < geometries.size(); ++gi)
            row.push_back(
                stats::fmt(cellsA[li * geometries.size() + gi], 2));
        t.row(std::move(row));
    }
    t.print();

    // Banked organizations (distributed directories, Section IV-A):
    // banks shrink each Cuckoo table, costing some occupancy headroom.
    const std::vector<double> loadsB{0.85, 0.91, 0.977};
    const std::vector<unsigned> bankCounts{1, 2, 4, 8};
    std::vector<double> cellsB(loadsB.size() * bankCounts.size());
    harness::parallelFor(cellsB.size(), jobs, [&](std::size_t i) {
        const double load = loadsB[i / bankCounts.size()];
        const unsigned banks = bankCounts[i % bankCounts.size()];
        double sum = 0;
        for (std::uint64_t seed = 1; seed <= 5; ++seed)
            sum += conflictRate(4, 64, load, seed, banks);
        cellsB[i] = 100.0 * sum / 5;
    });

    stats::Table tb("4-way walk conflict rate vs banking (%)");
    tb.header({"target load", "1 bank", "2 banks", "4 banks",
               "8 banks"});
    for (std::size_t li = 0; li < loadsB.size(); ++li) {
        std::vector<std::string> row{stats::fmt(loadsB[li] * 100, 1) +
                                     "%"};
        for (std::size_t bi = 0; bi < bankCounts.size(); ++bi)
            row.push_back(
                stats::fmt(cellsB[li * bankCounts.size() + bi], 2));
        tb.row(std::move(row));
    }
    tb.print();

    std::puts("Expected: the 4-way walk sustains the paper's 1000/1024 "
              "(97.7%) occupancy with ~0 conflicts;\n2-way tables "
              "saturate near 50% occupancy; removing the walk cripples "
              "either geometry.\n(91% load corresponds to ~10% "
              "over-provisioning; conflict rate ~0.1% or less, "
              "Section IV-A.)");
    return 0;
}
