/**
 * @file
 * Ablation: sensitivity to the QWAIT instruction latency.
 *
 * The paper conservatively charges 50 cycles end-to-end (Section IV-C,
 * "higher than the sum of all the latencies involved").  This ablation
 * sweeps the latency to show how much headroom that conservatism
 * leaves: zero-load latency shifts by the latency delta, and peak
 * throughput only starts to care when QWAIT becomes comparable to the
 * service time.
 */

#include <cstdio>

#include "dp/sdp_system.hh"
#include "harness/experiment.hh"
#include "harness/parallel.hh"
#include "harness/runner.hh"
#include "stats/table.hh"

using namespace hyperplane;

int
main(int argc, char **argv)
{
    harness::printTableI();
    harness::printExperimentBanner(
        "Ablation: QWAIT latency",
        "HyperPlane sensitivity to the 50-cycle QWAIT assumption "
        "(packet encapsulation, 400 queues)");
    const unsigned jobs = harness::jobsFromArgs(argc, argv);

    const std::vector<Tick> latencies{10, 25, 50, 100, 200, 500, 1000};
    std::vector<dp::SdpConfig> peakGrid, zeroGrid;
    for (Tick lat : latencies) {
        dp::SdpConfig cfg;
        cfg.plane = dp::PlaneKind::HyperPlane;
        cfg.numCores = 1;
        cfg.numQueues = 400;
        cfg.workload = workloads::Kind::PacketEncapsulation;
        cfg.shape = traffic::Shape::PC;
        cfg.qwaitLatency = lat;
        cfg.seed = 91;
        cfg.warmupUs = 800.0;
        cfg.measureUs = 4000.0;
        peakGrid.push_back(cfg);

        auto zcfg = cfg;
        zcfg.jitter = dp::ServiceJitter::None;
        zeroGrid.push_back(harness::zeroLoadConfig(zcfg, 600));
    }
    const auto peaks = harness::runSaturations(peakGrid, jobs);
    const auto zeros = harness::runConfigs(zeroGrid, jobs);

    stats::Table t("QWAIT latency sweep");
    t.header({"qwait cycles", "peak Mtps", "zero-load avg us",
              "zero-load p99 us"});
    for (std::size_t i = 0; i < latencies.size(); ++i) {
        t.row({std::to_string(latencies[i]),
               stats::fmt(peaks[i].throughputMtps),
               stats::fmt(zeros[i].avgLatencyUs, 3),
               stats::fmt(zeros[i].p99LatencyUs, 3)});
    }
    t.print();

    std::puts("Expected: latency shifts by ~(delta cycles)/3 ns; peak "
              "throughput is insensitive until\nQWAIT approaches the "
              "~1.4 us service time (the 50-cycle choice is safely "
              "conservative).");
    return 0;
}
