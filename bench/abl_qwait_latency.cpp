/**
 * @file
 * Ablation: sensitivity to the QWAIT instruction latency.
 *
 * The paper conservatively charges 50 cycles end-to-end (Section IV-C,
 * "higher than the sum of all the latencies involved").  This ablation
 * sweeps the latency to show how much headroom that conservatism
 * leaves: zero-load latency shifts by the latency delta, and peak
 * throughput only starts to care when QWAIT becomes comparable to the
 * service time.
 */

#include <cstdio>

#include "dp/sdp_system.hh"
#include "harness/experiment.hh"
#include "harness/runner.hh"
#include "stats/table.hh"

using namespace hyperplane;

int
main()
{
    harness::printTableI();
    harness::printExperimentBanner(
        "Ablation: QWAIT latency",
        "HyperPlane sensitivity to the 50-cycle QWAIT assumption "
        "(packet encapsulation, 400 queues)");

    stats::Table t("QWAIT latency sweep");
    t.header({"qwait cycles", "peak Mtps", "zero-load avg us",
              "zero-load p99 us"});
    for (Tick lat : {10u, 25u, 50u, 100u, 200u, 500u, 1000u}) {
        dp::SdpConfig cfg;
        cfg.plane = dp::PlaneKind::HyperPlane;
        cfg.numCores = 1;
        cfg.numQueues = 400;
        cfg.workload = workloads::Kind::PacketEncapsulation;
        cfg.shape = traffic::Shape::PC;
        cfg.qwaitLatency = lat;
        cfg.seed = 91;
        cfg.warmupUs = 800.0;
        cfg.measureUs = 4000.0;
        const auto peak = harness::measureAtSaturation(cfg);

        auto zcfg = cfg;
        zcfg.jitter = dp::ServiceJitter::None;
        zcfg = harness::zeroLoadConfig(zcfg, 600);
        const auto zero = runSdp(zcfg);

        t.row({std::to_string(lat), stats::fmt(peak.throughputMtps),
               stats::fmt(zero.avgLatencyUs, 3),
               stats::fmt(zero.p99LatencyUs, 3)});
    }
    t.print();

    std::puts("Expected: latency shifts by ~(delta cycles)/3 ns; peak "
              "throughput is insensitive until\nQWAIT approaches the "
              "~1.4 us service time (the 50-cycle choice is safely "
              "conservative).");
    return 0;
}
