/**
 * @file
 * Ablation: ripple vs Brent-Kung priority arbiter (Section IV-B).
 *
 * The ripple bit-slice PPA has linear delay and a combinational
 * wrap-around loop; the thermometer-coded Brent-Kung design scales
 * logarithmically to thousands of bits.  This table quantifies the
 * delay/area trade-off and shows where the ripple design stops meeting
 * the ready set's 12.25 ns budget.
 */

#include <cstdio>

#include "core/hw_cost.hh"
#include "core/ppa.hh"
#include "harness/experiment.hh"
#include "stats/table.hh"

using namespace hyperplane;

int
main()
{
    harness::printExperimentBanner(
        "Ablation: PPA design", "ripple vs Brent-Kung arbiter scaling");

    core::RipplePpa rip;
    core::BrentKungPpa bk;

    stats::Table t("Arbiter delay and complexity vs width");
    t.header({"bits", "ripple delay (ns)", "ripple depth",
              "BK delay (ns)", "BK depth", "ripple gates", "BK gates",
              "BK meets 12.25ns budget"});
    for (unsigned n : {64u, 128u, 256u, 512u, 1024u, 2048u, 4096u,
                       8192u}) {
        core::HwCostConfig hc;
        hc.readyEntries = n;
        core::HwCostModel model(hc);
        t.row({std::to_string(n), stats::fmt(rip.delayNs(n), 2),
               std::to_string(rip.depth(n)),
               stats::fmt(bk.delayNs(n), 2), std::to_string(bk.depth(n)),
               std::to_string(rip.gateCount(n)),
               std::to_string(bk.gateCount(n)),
               model.readySetLatencyNs() <= 12.26 ? "yes" : "no"});
    }
    t.print();

    std::puts("Expected: ripple delay doubles per doubling (22.5 ns at "
              "1024 bits — over the budget);\nBrent-Kung grows by one "
              "up-sweep + one down-sweep level, staying ~1.3 ns at "
              "1024 bits\nfor modestly more gates.");
    return 0;
}
