/**
 * @file
 * Ablation: batch dequeue size.
 *
 * Section III-B notes the dequeue may retrieve a batch of items per
 * QWAIT return, provided the doorbell counter is decremented
 * accordingly.  Batching amortizes QWAIT/VERIFY/RECONSIDER overhead at
 * saturation but serializes items behind one core (intra-batch HoL), so
 * tail latency rises at moderate loads.
 */

#include <cstdio>

#include "dp/sdp_system.hh"
#include "harness/experiment.hh"
#include "harness/export.hh"
#include "harness/parallel.hh"
#include "harness/runner.hh"
#include "stats/table.hh"

using namespace hyperplane;

int
main(int argc, char **argv)
{
    harness::printTableI();
    harness::printExperimentBanner(
        "Ablation: batch size",
        "items dequeued per QWAIT return (packet encapsulation, FB, "
        "100 queues, 1 core)");
    const unsigned jobs = harness::jobsFromArgs(argc, argv);

    const std::vector<unsigned> batches{1, 2, 4, 8, 16};
    // The mid-load point is driven at this batch size's own peak, so
    // each index runs its (peak -> mid) pair as one unit of work.
    std::vector<harness::NamedSweep> sweeps(batches.size());
    harness::parallelFor(batches.size(), jobs, [&](std::size_t i) {
        dp::SdpConfig cfg;
        cfg.plane = dp::PlaneKind::HyperPlane;
        cfg.numCores = 1;
        cfg.numQueues = 100;
        cfg.workload = workloads::Kind::PacketEncapsulation;
        cfg.shape = traffic::Shape::FB;
        cfg.batchSize = batches[i];
        cfg.seed = 101;
        cfg.warmupUs = 800.0;
        cfg.measureUs = 5000.0;
        const auto peak = harness::measureAtSaturation(cfg);
        const double cap = peak.throughputMtps * 1e6;
        const auto mid = harness::runAtLoad(cfg, cap, 0.5);
        sweeps[i] = {"batch" + std::to_string(batches[i]),
                     {{0.5, mid}, {1.0, peak}}};
    });

    stats::Table t("Batch-size sweep");
    t.header({"batch", "peak Mtps", "p99 us @50% load"});
    for (std::size_t i = 0; i < batches.size(); ++i) {
        const auto &peak = sweeps[i].points[1].results;
        const auto &mid = sweeps[i].points[0].results;
        t.row({std::to_string(batches[i]),
               stats::fmt(peak.throughputMtps),
               stats::fmt(mid.p99LatencyUs, 2)});
    }
    t.print();

    if (const char *path = harness::argValue(argc, argv, "--json"))
        harness::writeTextFile(path, harness::loadSweepJson(sweeps));

    std::puts("Expected: modest peak-throughput gains from amortized "
              "notification overhead, at the cost\nof tail latency at "
              "moderate load.");
    return 0;
}
