/**
 * @file
 * Figure 12 reproduction: power (Section V-D).
 *
 *  (a) normalized core power at zero load and at saturation for the
 *      spinning plane, HyperPlane, and power-optimized HyperPlane;
 *  (b) 99% tail latency vs load for regular vs power-optimized
 *      HyperPlane (the 0.5 us C1 wake-up cost), with the spinning
 *      plane for reference.
 */

#include <cstdio>

#include "dp/sdp_system.hh"
#include "harness/experiment.hh"
#include "harness/export.hh"
#include "harness/parallel.hh"
#include "harness/runner.hh"
#include "stats/table.hh"

using namespace hyperplane;

namespace {

dp::SdpConfig
baseCfg()
{
    dp::SdpConfig cfg;
    cfg.numCores = 1;
    cfg.numQueues = 100;
    cfg.workload = workloads::Kind::PacketEncapsulation;
    cfg.shape = traffic::Shape::PC;
    cfg.warmupUs = 1000.0;
    cfg.measureUs = 8000.0;
    cfg.seed = 61;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    harness::printTableI();
    harness::printExperimentBanner(
        "Figure 12", "core power and the cost of the power-optimized "
                     "(C1) mode");
    const unsigned jobs = harness::jobsFromArgs(argc, argv);

    // --- Panel (a): power at zero load vs saturation ------------------
    std::vector<harness::SweepSeries> aSeries;
    struct Row
    {
        const char *name;
        dp::PlaneKind plane;
        bool powerOpt;
    };
    for (const Row row : {Row{"spinning", dp::PlaneKind::Spinning, false},
                          Row{"hyperplane", dp::PlaneKind::HyperPlane,
                              false},
                          Row{"hyperplane-power-opt",
                              dp::PlaneKind::HyperPlane, true}}) {
        auto cfg = baseCfg();
        cfg.plane = row.plane;
        cfg.powerOptimized = row.powerOpt;
        aSeries.push_back({row.name, cfg});
    }
    const auto aSweeps =
        harness::runLoadSweeps(aSeries, {0.005, 1.0}, jobs);
    const double spinSatPowerW =
        aSweeps[0].points[1].results.avgCorePowerW;

    stats::Table ta(
        "Fig 12(a): core power normalized to spinning at saturation");
    ta.header({"plane", "zero load", "saturation"});
    for (const auto &sw : aSweeps) {
        const auto &zero = sw.points[0].results;
        const auto &sat = sw.points[1].results;
        ta.row({sw.name,
                stats::fmt(100.0 * zero.avgCorePowerW / spinSatPowerW,
                           1) + "%",
                stats::fmt(100.0 * sat.avgCorePowerW / spinSatPowerW,
                           1) + "%"});
    }
    ta.print();

    // --- Panel (b): tail latency vs load, regular vs power-opt --------
    // The Figure 10(a) scenario: 4 cores, 400 queues, FB, scale-up;
    // deterministic service isolates the 0.5 us C1 wake-up penalty.
    stats::Table tb("Fig 12(b): p99 latency vs load (us)");
    tb.header({"load", "spinning", "hyperplane", "hyperplane-power-opt"});
    auto cfg = baseCfg();
    cfg.numCores = 4;
    cfg.numQueues = 400;
    cfg.shape = traffic::Shape::FB;
    cfg.org = dp::QueueOrg::ScaleUpAll;
    cfg.jitter = dp::ServiceJitter::None;
    const std::vector<double> loads{0.01, 0.25, 0.5, 0.75, 0.9};
    auto spinCfg = cfg;
    spinCfg.plane = dp::PlaneKind::Spinning;
    auto hpCfg = cfg;
    hpCfg.plane = dp::PlaneKind::HyperPlane;
    auto hpPwrCfg = hpCfg;
    hpPwrCfg.powerOptimized = true;
    // The power-opt series is driven at the regular plane's load points
    // (capacityFrom) so panel (b) isolates the C1 wake-up penalty.
    const auto bSweeps = harness::runLoadSweeps(
        {{"spinning", spinCfg},
         {"hyperplane", hpCfg},
         {"hyperplane-power-opt", hpPwrCfg, 1}},
        loads, jobs);
    const auto &spinPts = bSweeps[0].points;
    const auto &hpPts = bSweeps[1].points;
    const auto &hpPwrPts = bSweeps[2].points;

    for (std::size_t i = 0; i < loads.size(); ++i) {
        tb.row({stats::fmt(loads[i] * 100, 0) + "%",
                stats::fmt(spinPts[i].results.p99LatencyUs, 2),
                stats::fmt(hpPts[i].results.p99LatencyUs, 2),
                stats::fmt(hpPwrPts[i].results.p99LatencyUs, 2)});
    }
    tb.print();

    if (const char *path = harness::argValue(argc, argv, "--json")) {
        harness::writeTextFile(
            path, harness::loadSweepJson(
                      {{"spinning", spinPts},
                       {"hyperplane", hpPts},
                       {"hyperplane-power-opt", hpPwrPts}}));
    }

    std::puts("Expected shape: spinning burns MORE power at zero load "
              "than at saturation; power-optimized\nHyperPlane idles "
              "near 16% of saturation power; its tail-latency penalty "
              "is largest at zero\nload (~38% in the paper) and "
              "shrinks as load grows (cores sleep less).");
    return 0;
}
