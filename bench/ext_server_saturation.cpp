/**
 * @file
 * Extension benchmark: the real UDP server under open- vs closed-loop
 * load.
 *
 * The simulator predicts how the notification fabric behaves; this
 * experiment measures the emulation: the actual UDP server
 * (src/server) on loopback, driven by the open-loop Poisson load
 * generator.  The sweep raises offered load across worker counts and
 * reports achieved throughput, completion ratio, and end-to-end tail
 * latency, then contrasts one closed-loop (windowed) point at the same
 * worker count — the closed-loop fallacy in numbers: the window hides
 * queueing delay that open-loop load exposes as p99.
 *
 * Flags:
 *   --quick          tiny sweep for CI smoke runs
 *   --check          exit nonzero if the completion/throughput gates
 *                    fail
 *   --min-achieved R override the achieved-throughput gate (req/s)
 *   --rate R         single offered rate instead of the sweep
 *   --workers N      single worker count instead of the sweep
 *   --duration S     send-phase seconds per point
 *   --json FILE      machine-readable export (BENCH_server.json in CI)
 *
 * When the sandbox forbids UDP sockets the run prints a skip
 * annotation and exits 0 (with a {"skipped":true} JSON if requested):
 * absence of a network is not a regression.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "harness/experiment.hh"
#include "harness/export.hh"
#include "net/simd/dispatch.hh"
#include "server/loadgen.hh"
#include "server/server.hh"
#include "stats/json.hh"
#include "stats/table.hh"

using namespace hyperplane;

namespace {

struct Point
{
    const char *mode;
    unsigned workers;
    double ratePerSec;
    server::LoadGenReport report;
    server::ServerCounterSnapshot snap;
};

/** One server + one loadgen run; nullopt when sockets are denied. */
std::optional<Point>
runPoint(const char *mode, bool openLoop, unsigned workers, double rate,
         double seconds, bool echoOnly = false)
{
    server::ServerConfig sc;
    sc.rxThreads = 2;
    sc.txThreads = 1;
    sc.workers = workers;
    sc.numQueues = 16;
    server::UdpServer srv(sc);
    if (!srv.start())
        return std::nullopt;

    server::LoadGenConfig lc;
    lc.serverPort = srv.port();
    lc.ratePerSec = rate;
    lc.durationSec = seconds;
    lc.openLoop = openLoop;
    lc.window = 64;
    lc.numFlows = 64;
    lc.opcodeWeights =
        echoOnly
            ? std::array<double, server::wire::numOpcodes>{1.0, 0.0, 0.0}
            : std::array<double, server::wire::numOpcodes>{0.5, 0.25,
                                                           0.25};
    lc.seed = 31;
    auto report = server::UdpLoadGen(lc).run();
    srv.stop();
    if (!report)
        return std::nullopt;
    return Point{mode, workers, rate, std::move(*report),
                 srv.counterSnapshot()};
}

std::string
pointsJson(const std::vector<Point> &pts)
{
    std::string out =
        "{\"skipped\":false,\"host\":" + harness::hostJson() +
        ",\"points\":[";
    bool first = true;
    for (const auto &p : pts) {
        if (!first)
            out += ',';
        first = false;
        out += "{\"mode\":" + stats::jsonString(p.mode) +
               ",\"workers\":" + std::to_string(p.workers) +
               ",\"offered_per_sec\":" + stats::jsonNumber(p.ratePerSec) +
               ",\"payload_copies\":" + std::to_string(p.snap.payloadCopies) +
               ",\"pool_drops\":" + std::to_string(p.snap.poolDrops) +
               ",\"report\":" + p.report.json() + '}';
    }
    out += "]}";
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    harness::printTableI();
    harness::printExperimentBanner(
        "Extension: UDP server saturation (emulation)",
        "real loopback server + open-loop Poisson loadgen: offered load "
        "vs achieved throughput and\ne2e tail latency, with a "
        "closed-loop contrast point (mixed echo/encap/steer traffic)");

    const bool check = harness::argPresent(argc, argv, "--check");
    const bool quick = harness::argPresent(argc, argv, "--quick");
    const char *jsonPath = harness::argValue(argc, argv, "--json");
    const char *rateArg = harness::argValue(argc, argv, "--rate");
    const char *workersArg = harness::argValue(argc, argv, "--workers");
    const char *durArg = harness::argValue(argc, argv, "--duration");
    const char *minArg = harness::argValue(argc, argv, "--min-achieved");

    // On a multi-core host the SIMD + zero-copy path must clear 350k
    // answered/s; a single-CPU box timeshares server and loadgen on one
    // core, so the documented fallback bar is the pre-SIMD 100k.
    const unsigned hw = std::thread::hardware_concurrency();
    std::vector<unsigned> workerCounts{1, 2, 4};
    std::vector<double> rates{25e3, 50e3, 100e3, 150e3, 200e3};
    double seconds = 0.5;
    double minAchieved = 100e3;
    if (hw >= 4) {
        rates.push_back(300e3);
        rates.push_back(450e3);
        minAchieved = 350e3;
    }
    if (quick) {
        workerCounts = {2};
        rates = {5e3, 20e3};
        seconds = 0.3;
        minAchieved = 4e3;
    }
    if (workersArg != nullptr)
        workerCounts = {static_cast<unsigned>(std::atoi(workersArg))};
    if (rateArg != nullptr)
        rates = {std::atof(rateArg)};
    if (durArg != nullptr)
        seconds = std::atof(durArg);
    if (minArg != nullptr)
        minAchieved = std::atof(minArg);

    std::vector<Point> pts;
    bool skipped = false;
    for (const unsigned w : workerCounts) {
        for (const double r : rates) {
            auto pt = runPoint("open", true, w, r, seconds, false);
            if (!pt) {
                skipped = true;
                break;
            }
            pts.push_back(std::move(*pt));
        }
        if (skipped)
            break;
    }
    const Point *echoPt = nullptr;
    if (!skipped && !pts.empty()) {
        // Closed-loop contrast at the largest worker count.
        auto pt = runPoint("closed", false, workerCounts.back(),
                           rates.back(), seconds);
        if (pt)
            pts.push_back(std::move(*pt));
        // Echo-only zero-copy probe: payloads must ride the RX frame all
        // the way out, so the server-side copy tripwire stays at zero.
        auto echo = runPoint("echo0", true, workerCounts.back(),
                             rates.front(), seconds, true);
        if (echo) {
            pts.push_back(std::move(*echo));
            echoPt = &pts.back();
        }
    }

    if (skipped || pts.empty()) {
        std::puts("SKIP: UDP loopback sockets unavailable in this "
                  "sandbox; server saturation not measured.");
        if (jsonPath != nullptr)
            harness::writeTextFile(jsonPath, "{\"skipped\":true}\n");
        return 0;
    }

    stats::Table t("UDP server: offered load vs achieved + tail");
    t.header({"mode", "workers", "offered/s", "achieved/s", "answered",
              "p50 us", "p99 us", "p99.9 us"});
    for (const auto &p : pts) {
        const auto &r = p.report;
        t.row({p.mode, std::to_string(p.workers),
               stats::fmt(p.ratePerSec, 0), stats::fmt(r.achievedPerSec, 0),
               stats::fmt(r.completionRatio * 100, 2) + "%",
               stats::fmt(r.p50Us, 1), stats::fmt(r.p99Us, 1),
               stats::fmt(r.p999Us, 1)});
    }
    t.print();

    double bestAchieved = 0.0;
    double bestP99 = 0.0;
    for (const auto &p : pts) {
        if (p.report.achievedPerSec > bestAchieved) {
            bestAchieved = p.report.achievedPerSec;
            bestP99 = p.report.p99Us;
        }
    }
    std::printf("peak achieved: %.0f req/s (p99 %.1f us)\n",
                bestAchieved, bestP99);
    const auto &kern = net::simd::kernels();
    std::printf("host: %u hardware threads; kernels: checksum=%s "
                "crc32c=%s header=%s%s\n",
                hw, kern.checksumName, kern.crc32cName,
                kern.headerCheckName,
                kern.forcedScalar ? " (forced scalar)" : "");
    if (echoPt != nullptr)
        std::printf("echo-only point: %llu payload copies, %llu pool "
                    "drops (zero-copy RX->TX %s)\n",
                    static_cast<unsigned long long>(
                        echoPt->snap.payloadCopies),
                    static_cast<unsigned long long>(
                        echoPt->snap.poolDrops),
                    echoPt->snap.payloadCopies == 0 ? "holds"
                                                    : "VIOLATED");
    std::puts("Expected: open-loop p99 grows with offered load as "
              "queueing sets in while closed-loop p99\nstays flat (the "
              "window throttles the arrival process instead of "
              "exposing the delay).");

    if (jsonPath != nullptr)
        harness::writeTextFile(jsonPath, pointsJson(pts) + "\n");

    if (check) {
        bool ok = true;
        // Gate 1: light load must be answered essentially completely.
        const auto &light = pts.front().report;
        if (light.completionRatio < 0.999) {
            std::printf("CHECK FAIL: completion %.4f < 0.999 at "
                        "%.0f req/s\n",
                        light.completionRatio, pts.front().ratePerSec);
            ok = false;
        }
        // Gate 2: the sweep must reach the throughput bar.
        if (bestAchieved < minAchieved) {
            std::printf("CHECK FAIL: peak achieved %.0f < %.0f req/s\n",
                        bestAchieved, minAchieved);
            ok = false;
        }
        // Gate 3: percentiles must come from real samples.
        if (light.latencySamples == 0 || light.p99Us <= 0.0) {
            std::puts("CHECK FAIL: empty latency histogram");
            ok = false;
        }
        // Gate 4: the echo-only point must be copy-free end to end —
        // the FramePool tripwire counts every payload memcpy.
        if (echoPt == nullptr) {
            std::puts("CHECK FAIL: echo-only zero-copy point missing");
            ok = false;
        } else if (echoPt->snap.payloadCopies != 0) {
            std::printf("CHECK FAIL: echo path copied payloads %llu "
                        "times (expected 0)\n",
                        static_cast<unsigned long long>(
                            echoPt->snap.payloadCopies));
            ok = false;
        }
        if (!ok)
            return 1;
        std::puts("CHECK OK");
    }
    return 0;
}
