/**
 * @file
 * Extension benchmark: simulator wall-clock scaling with core count.
 *
 * Runs the same HyperPlane scale-out data plane at 16 -> 1024 cores
 * (queue count and offered rate scale with the cores, so per-core work
 * is constant) and reports host wall time per simulated event.  With
 * the coherence directory and the interval-indexed snooper dispatch,
 * per-event cost stays flat; with the legacy O(cores) tag-array sweeps
 * it grew roughly linearly (~8x implied from 16 -> 128 cores).
 *
 * Points above 128 cores shrink the measured window in proportion so
 * every point simulates a comparable event count; they exist to prove
 * the 512/1024-core machines build and run (directory sharer ids,
 * partitioner), and are excluded from the flatness gate because the
 * simulated state is far past host cache reach there and the residual
 * capacity slope is a host property, not a simulator regression.
 *
 * Like ext_trace_overhead, this bench deliberately takes no --jobs:
 * each point is timed against the host clock, and concurrent runs
 * would perturb each other's timings.
 *
 * Flags:
 *   --cores N        run a single core count instead of the sweep
 *   --reps N         timed repetitions per point; the best (minimum)
 *                    wall time is reported (default 3).  The minimum
 *                    is the standard noise-robust estimator: shared
 *                    hosts only ever add time, never remove it.
 *   --sim-threads N  run every point with the token-affine parallel
 *                    backend at N sim threads (default: sequential).
 *                    With --check, also times one mid-size point at 1
 *                    vs N threads and applies a speedup gate on hosts
 *                    with >= 4 CPUs ("skipped(single-thread-host)"
 *                    elsewhere); event counts must match exactly.
 *   --json FILE      machine-readable export
 *   --check          exit nonzero if the flatness/budget gates fail
 *   --budget-sec S   wall-clock budget for the whole run (with --check)
 *   --flat-factor F  max allowed (worst ns/event) / (16-core ns/event)
 *                    across the <=128-core sweep (default 2.5, with
 *                    --check)
 *
 * On the gate default: the directory removes the O(cores) per-event
 * term entirely (per-event directory/tag-probe counts are flat across
 * the sweep), but the host still pays capacity effects — the simulated
 * machine state grows ~8x from 16 to 128 cores, and once it exceeds
 * the host's private cache and TLB reach each probe gets slower.  On
 * the reference single-core container (2 MB host L2, THP unavailable)
 * that residual measures ~1.7-2.0x.  The gate is set above that band
 * to catch the failure mode it exists for: a reintroduced O(cores)
 * sweep measures ~8x and trips it instantly, while host-cache variance
 * does not.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dp/sdp_system.hh"
#include "harness/experiment.hh"
#include "harness/export.hh"
#include "stats/json.hh"
#include "stats/table.hh"

using namespace hyperplane;

namespace {

struct ScalePoint
{
    unsigned cores;
    double wallSec;
    std::uint64_t events;
    double nsPerEvent;
    double throughputMtps;
    std::uint64_t dirLookups;
    std::uint64_t dirLines;
    std::uint64_t snoopMatches;
};

dp::SdpConfig
configFor(unsigned cores, unsigned simThreads)
{
    dp::SdpConfig cfg;
    cfg.plane = dp::PlaneKind::HyperPlane;
    cfg.org = dp::QueueOrg::ScaleOut; // one qwait unit per core
    cfg.numCores = cores;
    cfg.numQueues = 8 * cores;
    cfg.workload = workloads::Kind::PacketEncapsulation;
    cfg.shape = traffic::Shape::FB;
    cfg.offeredRatePerSec = 4e5 * cores; // constant per-core load
    cfg.warmupUs = 200.0;
    // Long enough that the 16-core point runs a few hundred ms of host
    // wall time; sub-100ms points made the spread gate noise-bound on
    // small hosts.  Past 128 cores the window shrinks in proportion so
    // the big machines cost about as much host time as the 128-core
    // point instead of 8x more.
    cfg.measureUs = cores > 128 ? 6000.0 * 128.0 / cores : 6000.0;
    cfg.seed = 97;
    cfg.simThreads = simThreads;
    return cfg;
}

ScalePoint
runPoint(unsigned cores, unsigned reps, unsigned simThreads)
{
    const dp::SdpConfig cfg = configFor(cores, simThreads);
    ScalePoint best{};
    for (unsigned rep = 0; rep < reps; ++rep) {
        // The simulation is deterministic, so every rep produces the
        // same events/stats and only the host wall time varies.
        dp::SdpSystem sys(cfg);
        const auto t0 = std::chrono::steady_clock::now();
        const auto r = sys.run();
        const double sec = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
        if (rep != 0 && sec >= best.wallSec)
            continue;
        const std::uint64_t events = sys.eventQueue().dispatched();
        best = {cores,
                sec,
                events,
                events > 0 ? 1e9 * sec / static_cast<double>(events)
                           : 0.0,
                r.throughputMtps,
                sys.memory().dirLookups.value(),
                sys.memory().directoryLines(),
                sys.memory().snoopHits.value()};
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    harness::printTableI();
    harness::printExperimentBanner(
        "Extension: core-count scaling",
        "per-event simulation cost, 16 -> 1024 cores (directory-indexed "
        "coherence + interval-indexed snoop dispatch)");

    const bool check = harness::argPresent(argc, argv, "--check");
    const char *jsonPath = harness::argValue(argc, argv, "--json");
    const char *coresArg = harness::argValue(argc, argv, "--cores");
    const char *repsArg = harness::argValue(argc, argv, "--reps");
    const char *budgetArg = harness::argValue(argc, argv, "--budget-sec");
    const char *flatArg = harness::argValue(argc, argv, "--flat-factor");
    const char *simThreadsArg =
        harness::argValue(argc, argv, "--sim-threads");
    const double budgetSec =
        budgetArg != nullptr ? std::atof(budgetArg) : 0.0;
    const double flatFactor =
        flatArg != nullptr ? std::atof(flatArg) : 2.5;
    const unsigned reps = std::max(
        1, repsArg != nullptr ? std::atoi(repsArg) : 3);
    const unsigned simThreads = static_cast<unsigned>(std::max(
        0, simThreadsArg != nullptr ? std::atoi(simThreadsArg) : 0));

    std::vector<unsigned> coreCounts{16, 32, 64, 128, 512, 1024};
    if (coresArg != nullptr)
        coreCounts = {static_cast<unsigned>(std::atoi(coresArg))};

    const auto suiteT0 = std::chrono::steady_clock::now();
    std::vector<ScalePoint> pts;
    for (const unsigned c : coreCounts)
        pts.push_back(runPoint(c, reps, simThreads));
    const double suiteSec = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - suiteT0)
                                .count();

    std::printf("timing: best of %u rep%s per point\n", reps,
                reps == 1 ? "" : "s");
    stats::Table t("Per-event wall cost vs core count");
    t.header({"cores", "wall s", "sim events", "ns/event", "vs first",
              "Mtps", "dir lookups", "dir lines"});
    for (const auto &p : pts) {
        t.row({std::to_string(p.cores), stats::fmt(p.wallSec, 3),
               std::to_string(p.events), stats::fmt(p.nsPerEvent, 1),
               stats::fmt(p.nsPerEvent / pts.front().nsPerEvent, 2) + "x",
               stats::fmt(p.throughputMtps),
               std::to_string(p.dirLookups),
               std::to_string(p.dirLines)});
    }
    t.print();

    // The flatness gate covers the <=128-core band; the 512/1024-core
    // points are capacity/capability points (see file comment).
    double worstRatio = 1.0;
    std::size_t gated = 0;
    for (const auto &p : pts) {
        if (p.cores > 128)
            continue;
        ++gated;
        worstRatio = std::max(worstRatio,
                              p.nsPerEvent / pts.front().nsPerEvent);
    }
    if (gated > 1) {
        std::printf("per-event cost spread across %zu core counts "
                    "(<=128): %.2fx (flat-cost gate: %.2fx)\n",
                    gated, worstRatio, flatFactor);
    }
    std::printf("total wall: %.2f s%s\n", suiteSec,
                budgetSec > 0.0 ? " (budgeted)" : "");

    // Parallel-backend speedup probe: one mid-size point timed with the
    // sequential kernel and with the token-affine backend.  Events must
    // match exactly everywhere; the wall-clock gate only means anything
    // when the host has cores to parallelize onto, so it follows the
    // perf_smoke skip convention on small hosts.
    const unsigned hw = std::thread::hardware_concurrency();
    const bool speedupCheckable = hw >= 4 && simThreads >= 4;
    double seqWall = 0.0, parWall = 0.0, speedup = 0.0;
    bool eventsMatch = true;
    std::string speedupCheck = "not_requested";
    if (simThreads > 1) {
        const ScalePoint seq = runPoint(64, 1, 1);
        const ScalePoint par = runPoint(64, 1, simThreads);
        seqWall = seq.wallSec;
        parWall = par.wallSec;
        speedup = parWall > 0.0 ? seqWall / parWall : 0.0;
        eventsMatch = seq.events == par.events &&
                      seq.throughputMtps == par.throughputMtps;
        speedupCheck = !speedupCheckable ? "skipped(single-thread-host)"
                       : speedup >= 1.0 ? "ok"
                                        : "slow";
        std::printf("sim-threads %u on 64 cores: %.3f s -> %.3f s "
                    "(%.2fx), events %s, check: %s\n",
                    simThreads, seqWall, parWall, speedup,
                    eventsMatch ? "identical" : "DIFFER",
                    speedupCheck.c_str());
    }

    if (jsonPath != nullptr) {
        std::ostringstream os;
        os << "{\n\"host\":" << harness::hostJson(0, simThreads)
           << ",\n\"points\":[";
        for (std::size_t i = 0; i < pts.size(); ++i) {
            const auto &p = pts[i];
            os << (i == 0 ? "" : ",") << "\n{\"cores\":" << p.cores
               << ",\"wall_sec\":" << stats::jsonNumber(p.wallSec)
               << ",\"sim_events\":" << p.events
               << ",\"ns_per_event\":" << stats::jsonNumber(p.nsPerEvent)
               << ",\"throughput_mtps\":"
               << stats::jsonNumber(p.throughputMtps)
               << ",\"directory_lookups\":" << p.dirLookups
               << ",\"directory_lines\":" << p.dirLines
               << ",\"snoop_matches\":" << p.snoopMatches << "}";
        }
        os << "],\n\"reps\":" << reps
           << ",\n\"per_event_spread\":"
           << stats::jsonNumber(worstRatio)
           << ",\n\"total_wall_sec\":" << stats::jsonNumber(suiteSec);
        if (simThreads > 1) {
            os << ",\n\"parallel\":{\"sim_threads\":" << simThreads
               << ",\"seq_wall_sec\":" << stats::jsonNumber(seqWall)
               << ",\"par_wall_sec\":" << stats::jsonNumber(parWall)
               << ",\"speedup\":" << stats::jsonNumber(speedup)
               << ",\"events_identical\":"
               << (eventsMatch ? "true" : "false")
               << ",\"speedup_check\":" << stats::jsonString(speedupCheck)
               << '}';
        }
        os << "\n}\n";
        harness::writeTextFile(jsonPath, os.str());
    }

    if (!check)
        return 0;

    bool ok = true;
    if (gated > 1 && worstRatio > flatFactor) {
        std::printf("CHECK FAILED: per-event cost spread %.2fx exceeds "
                    "%.2fx\n",
                    worstRatio, flatFactor);
        ok = false;
    }
    if (simThreads > 1 && !eventsMatch) {
        std::printf("CHECK FAILED: parallel backend diverged from the "
                    "sequential kernel\n");
        ok = false;
    }
    if (simThreads > 1 && speedupCheckable && speedup < 1.0) {
        std::printf("CHECK FAILED: %u sim threads slower than "
                    "sequential (%.2fx)\n",
                    simThreads, speedup);
        ok = false;
    }
    if (budgetSec > 0.0 && suiteSec > budgetSec) {
        std::printf("CHECK FAILED: wall %.2f s exceeds budget %.2f s\n",
                    suiteSec, budgetSec);
        ok = false;
    }
    for (const auto &p : pts) {
        if (p.events == 0 || p.throughputMtps <= 0.0) {
            std::printf("CHECK FAILED: %u-core point ran no work\n",
                        p.cores);
            ok = false;
        }
    }
    return ok ? 0 : 1;
}
