/**
 * @file
 * Figure 3 reproduction: the DPDK queue-scalability case study
 * (Section II-C).
 *
 * The paper ran this on a real Xeon + 100GbE NIC; we reproduce it inside
 * the simulator against the spin-polling data plane (the substitution is
 * documented in DESIGN.md).  Three panels:
 *   (a) peak packet-encapsulation throughput vs queue count under the
 *       FB / PC / NC / SQ traffic shapes;
 *   (b) round-trip latency vs queue count under light traffic;
 *   (c) the latency distribution (quantiles) at 1 / 256 / 512 queues.
 */

#include <cstdio>

#include "dp/sdp_system.hh"
#include "harness/experiment.hh"
#include "harness/parallel.hh"
#include "harness/runner.hh"
#include "stats/table.hh"

using namespace hyperplane;

namespace {

dp::SdpConfig
baseCfg()
{
    dp::SdpConfig cfg;
    cfg.plane = dp::PlaneKind::Spinning;
    cfg.numCores = 1;
    cfg.workload = workloads::Kind::PacketEncapsulation;
    cfg.warmupUs = 1000.0;
    cfg.measureUs = 6000.0;
    cfg.seed = 11;
    return cfg;
}

void
panelA(unsigned jobs)
{
    const std::vector<unsigned> queueCounts{16, 100, 250, 500, 750,
                                            1000};
    const auto shapes = traffic::allShapes();
    std::vector<dp::SdpConfig> grid;
    for (unsigned q : queueCounts) {
        for (auto shape : shapes) {
            auto cfg = baseCfg();
            cfg.numQueues = q;
            cfg.shape = shape;
            grid.push_back(cfg);
        }
    }
    const auto results = harness::runSaturations(grid, jobs);

    stats::Table t("Fig 3(a): spinning throughput vs #queues "
                   "(million tasks/s, packet encapsulation)");
    t.header({"queues", "FB", "PC", "NC", "SQ"});
    std::size_t idx = 0;
    for (unsigned q : queueCounts) {
        std::vector<std::string> row{std::to_string(q)};
        for (std::size_t s = 0; s < shapes.size(); ++s)
            row.push_back(stats::fmt(results[idx++].throughputMtps));
        t.row(std::move(row));
    }
    t.print();
}

void
panelB(unsigned jobs)
{
    const std::vector<unsigned> queueCounts{1, 64, 128, 256, 384, 512};
    std::vector<dp::SdpConfig> grid;
    for (unsigned q : queueCounts) {
        auto cfg = harness::zeroLoadConfig(baseCfg(), 1200);
        cfg.numQueues = q;
        cfg.shape = traffic::Shape::SQ; // one active flow, many queues
        cfg.jitter = dp::ServiceJitter::None;
        grid.push_back(cfg);
    }
    const auto results = harness::runConfigs(grid, jobs);

    stats::Table t("Fig 3(b): round-trip latency vs #queues under "
                   "light traffic (us)");
    t.header({"queues", "avg", "p99"});
    for (std::size_t i = 0; i < queueCounts.size(); ++i) {
        t.row({std::to_string(queueCounts[i]),
               stats::fmt(results[i].avgLatencyUs, 2),
               stats::fmt(results[i].p99LatencyUs, 2)});
    }
    t.print();
}

void
panelC(unsigned jobs)
{
    // This panel reads the latency histogram off the SdpSystem, not
    // just SdpResults, so it drives parallelFor directly: each index
    // owns its system and its output column.
    const std::vector<unsigned> queueCounts{1, 256, 512};
    const std::vector<double> quantiles{0.10, 0.25, 0.50,
                                        0.75, 0.90, 0.99};
    std::vector<std::vector<double>> columns(queueCounts.size());
    harness::parallelFor(queueCounts.size(), jobs, [&](std::size_t i) {
        auto cfg = harness::zeroLoadConfig(baseCfg(), 1500);
        cfg.numQueues = queueCounts[i];
        cfg.shape = traffic::Shape::SQ;
        cfg.jitter = dp::ServiceJitter::None;
        dp::SdpSystem sys(cfg);
        sys.run();
        for (double quant : quantiles)
            columns[i].push_back(
                sys.latencyHistogram().quantile(quant));
    });

    stats::Table t("Fig 3(c): latency distribution (us at quantile)");
    t.header({"quantile", "1 queue", "256 queues", "512 queues"});
    const char *names[] = {"p10", "p25", "p50", "p75", "p90", "p99"};
    for (int i = 0; i < 6; ++i) {
        t.row({names[i], stats::fmt(columns[0][i], 2),
               stats::fmt(columns[1][i], 2),
               stats::fmt(columns[2][i], 2)});
    }
    t.print();
}

} // namespace

int
main(int argc, char **argv)
{
    harness::printTableI();
    harness::printExperimentBanner(
        "Figure 3", "DPDK-style queue scalability case study "
                    "(simulated substitution for the Xeon+NIC testbed)");
    const unsigned jobs = harness::jobsFromArgs(argc, argv);
    panelA(jobs);
    panelB(jobs);
    panelC(jobs);
    std::puts("Expected shape: SQ throughput collapses with queue "
              "count, NC milder, FB/PC flat;\nlatency grows linearly "
              "with queue count and the tail grows faster than the "
              "average.");
    return 0;
}
