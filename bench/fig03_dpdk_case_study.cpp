/**
 * @file
 * Figure 3 reproduction: the DPDK queue-scalability case study
 * (Section II-C).
 *
 * The paper ran this on a real Xeon + 100GbE NIC; we reproduce it inside
 * the simulator against the spin-polling data plane (the substitution is
 * documented in DESIGN.md).  Three panels:
 *   (a) peak packet-encapsulation throughput vs queue count under the
 *       FB / PC / NC / SQ traffic shapes;
 *   (b) round-trip latency vs queue count under light traffic;
 *   (c) the latency distribution (quantiles) at 1 / 256 / 512 queues.
 */

#include <cstdio>

#include "dp/sdp_system.hh"
#include "harness/experiment.hh"
#include "harness/runner.hh"
#include "stats/table.hh"

using namespace hyperplane;

namespace {

dp::SdpConfig
baseCfg()
{
    dp::SdpConfig cfg;
    cfg.plane = dp::PlaneKind::Spinning;
    cfg.numCores = 1;
    cfg.workload = workloads::Kind::PacketEncapsulation;
    cfg.warmupUs = 1000.0;
    cfg.measureUs = 6000.0;
    cfg.seed = 11;
    return cfg;
}

void
panelA()
{
    stats::Table t("Fig 3(a): spinning throughput vs #queues "
                   "(million tasks/s, packet encapsulation)");
    t.header({"queues", "FB", "PC", "NC", "SQ"});
    for (unsigned q : {16u, 100u, 250u, 500u, 750u, 1000u}) {
        std::vector<std::string> row{std::to_string(q)};
        for (auto shape : traffic::allShapes()) {
            auto cfg = baseCfg();
            cfg.numQueues = q;
            cfg.shape = shape;
            const auto r = harness::measureAtSaturation(cfg);
            row.push_back(stats::fmt(r.throughputMtps));
        }
        t.row(std::move(row));
    }
    t.print();
}

void
panelB()
{
    stats::Table t("Fig 3(b): round-trip latency vs #queues under "
                   "light traffic (us)");
    t.header({"queues", "avg", "p99"});
    for (unsigned q : {1u, 64u, 128u, 256u, 384u, 512u}) {
        auto cfg = harness::zeroLoadConfig(baseCfg(), 1200);
        cfg.numQueues = q;
        cfg.shape = traffic::Shape::SQ; // one active flow, many queues
        cfg.jitter = dp::ServiceJitter::None;
        const auto r = runSdp(cfg);
        t.row({std::to_string(q), stats::fmt(r.avgLatencyUs, 2),
               stats::fmt(r.p99LatencyUs, 2)});
    }
    t.print();
}

void
panelC()
{
    stats::Table t("Fig 3(c): latency distribution (us at quantile)");
    t.header({"quantile", "1 queue", "256 queues", "512 queues"});
    std::vector<std::vector<double>> columns;
    for (unsigned q : {1u, 256u, 512u}) {
        auto cfg = harness::zeroLoadConfig(baseCfg(), 1500);
        cfg.numQueues = q;
        cfg.shape = traffic::Shape::SQ;
        cfg.jitter = dp::ServiceJitter::None;
        dp::SdpSystem sys(cfg);
        sys.run();
        std::vector<double> col;
        for (double quant : {0.10, 0.25, 0.50, 0.75, 0.90, 0.99})
            col.push_back(sys.latencyHistogram().quantile(quant));
        columns.push_back(std::move(col));
    }
    const char *names[] = {"p10", "p25", "p50", "p75", "p90", "p99"};
    for (int i = 0; i < 6; ++i) {
        t.row({names[i], stats::fmt(columns[0][i], 2),
               stats::fmt(columns[1][i], 2),
               stats::fmt(columns[2][i], 2)});
    }
    t.print();
}

} // namespace

int
main()
{
    harness::printTableI();
    harness::printExperimentBanner(
        "Figure 3", "DPDK-style queue scalability case study "
                    "(simulated substitution for the Xeon+NIC testbed)");
    panelA();
    panelB();
    panelC();
    std::puts("Expected shape: SQ throughput collapses with queue "
              "count, NC milder, FB/PC flat;\nlatency grows linearly "
              "with queue count and the tail grows faster than the "
              "average.");
    return 0;
}
