/**
 * @file
 * Extension benchmark: all four notification mechanisms side by side.
 *
 * Adds the conventional kernel-interrupt path (Figure 1(a) of the
 * paper) as a second baseline next to spin-polling, hardware
 * HyperPlane, and software-ready-set HyperPlane: peak throughput,
 * zero-load latency, and idle power for each, at small and large queue
 * counts.
 */

#include <cstdio>

#include "dp/sdp_system.hh"
#include "harness/experiment.hh"
#include "harness/parallel.hh"
#include "harness/runner.hh"
#include "stats/table.hh"

using namespace hyperplane;

int
main(int argc, char **argv)
{
    harness::printTableI();
    harness::printExperimentBanner(
        "Extension: notification mechanisms",
        "interrupts vs spinning vs HyperPlane (packet encapsulation, "
        "SQ traffic, 1 core)");
    const unsigned jobs = harness::jobsFromArgs(argc, argv);

    const std::vector<unsigned> queueCounts{64, 1000};
    const std::vector<dp::PlaneKind> planes{
        dp::PlaneKind::InterruptDriven, dp::PlaneKind::Spinning,
        dp::PlaneKind::HyperPlaneSwReady, dp::PlaneKind::HyperPlane};

    // Grid order (queues, plane), one peak and one zero-load run each.
    std::vector<dp::SdpConfig> peakGrid, zeroGrid;
    for (unsigned queues : queueCounts) {
        for (auto plane : planes) {
            dp::SdpConfig cfg;
            cfg.plane = plane;
            cfg.numCores = 1;
            cfg.numQueues = queues;
            cfg.workload = workloads::Kind::PacketEncapsulation;
            cfg.shape = traffic::Shape::SQ;
            cfg.seed = 121;
            cfg.warmupUs = 800.0;
            cfg.measureUs = 5000.0;
            peakGrid.push_back(cfg);

            auto zcfg = cfg;
            zcfg.jitter = dp::ServiceJitter::None;
            zeroGrid.push_back(harness::zeroLoadConfig(zcfg, 500));
        }
    }
    const auto peaks = harness::runSaturations(peakGrid, jobs);
    const auto zeros = harness::runConfigs(zeroGrid, jobs);

    std::size_t idx = 0;
    for (unsigned queues : queueCounts) {
        stats::Table t("Notification mechanisms at " +
                       std::to_string(queues) + " queues");
        t.header({"mechanism", "peak Mtps", "zero-load avg us",
                  "zero-load p99 us", "idle power W"});
        for (auto plane : planes) {
            const auto &peak = peaks[idx];
            const auto &zero = zeros[idx];
            ++idx;
            t.row({dp::toString(plane),
                   stats::fmt(peak.throughputMtps),
                   stats::fmt(zero.avgLatencyUs, 2),
                   stats::fmt(zero.p99LatencyUs, 2),
                   stats::fmt(zero.avgCorePowerW, 2)});
        }
        t.print();
    }

    std::puts("Expected: interrupts are work-proportional but pay the "
              "~1.5 us kernel path per wakeup;\nspinning reacts fast "
              "at few queues but collapses with many; HyperPlane "
              "dominates both\naxes; the software ready set sits "
              "between.");
    return 0;
}
