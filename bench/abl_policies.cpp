/**
 * @file
 * Ablation: service policies (Section IV-B).
 *
 * The evaluation reports round-robin only ("we found service policy to
 * have minimal impact on the performance trends"); this ablation checks
 * that claim for aggregate numbers and shows what the policies *do*
 * differ on: per-class service when weights are skewed.
 */

#include <cstdio>

#include "dp/sdp_system.hh"
#include "harness/experiment.hh"
#include "harness/export.hh"
#include "harness/parallel.hh"
#include "harness/runner.hh"
#include "stats/table.hh"

using namespace hyperplane;

int
main(int argc, char **argv)
{
    harness::printTableI();
    harness::printExperimentBanner(
        "Ablation: service policies",
        "round-robin vs weighted round-robin vs strict priority");
    const unsigned jobs = harness::jobsFromArgs(argc, argv);

    // Aggregate behaviour: the paper's claim that policy barely moves
    // the headline numbers.
    const std::vector<core::ServicePolicy> policies{
        core::ServicePolicy::RoundRobin,
        core::ServicePolicy::WeightedRoundRobin,
        core::ServicePolicy::StrictPriority};
    std::vector<harness::SweepSeries> series;
    for (auto policy : policies) {
        dp::SdpConfig cfg;
        cfg.plane = dp::PlaneKind::HyperPlane;
        cfg.numCores = 1;
        cfg.numQueues = 64;
        cfg.shape = traffic::Shape::FB;
        cfg.policy = policy;
        cfg.seed = 111;
        cfg.warmupUs = 800.0;
        cfg.measureUs = 6000.0;
        series.push_back({core::toString(policy), cfg});
    }
    const auto aggregate = harness::runLoadSweeps(series, {0.7}, jobs);

    stats::Table ta("Aggregate at 70% load (packet encapsulation, 64 "
                    "queues FB)");
    ta.header({"policy", "throughput Mtps", "avg us", "p99 us"});
    std::vector<harness::NamedSweep> sweeps;
    for (const auto &sw : aggregate) {
        const auto &r = sw.points[0].results;
        ta.row({sw.name, stats::fmt(r.throughputMtps),
                stats::fmt(r.avgLatencyUs, 2),
                stats::fmt(r.p99LatencyUs, 2)});
        sweeps.push_back({sw.name, sw.points});
    }
    ta.print();

    // Differentiated service: WRR with 4:1 weights on the first 8
    // queues must shift latency between classes at high load.  Each
    // point installs per-system hooks, so it drives parallelFor
    // directly and owns its SdpSystem + histograms.
    const std::vector<core::ServicePolicy> wrrPolicies{
        core::ServicePolicy::RoundRobin,
        core::ServicePolicy::WeightedRoundRobin};
    struct ClassTail
    {
        std::string name;
        double hotP99;
        double coldP99;
    };
    std::vector<ClassTail> tails(wrrPolicies.size());
    harness::parallelFor(wrrPolicies.size(), jobs, [&](std::size_t i) {
        const auto policy = wrrPolicies[i];
        dp::SdpConfig cfg;
        cfg.plane = dp::PlaneKind::HyperPlane;
        cfg.numCores = 1;
        cfg.numQueues = 64;
        cfg.shape = traffic::Shape::FB;
        cfg.policy = policy;
        cfg.seed = 112;
        cfg.warmupUs = 800.0;
        cfg.measureUs = 8000.0;
        const double cap = harness::calibrateCapacity(cfg);
        cfg.offeredRatePerSec = cap * 0.85;

        dp::SdpSystem sys(cfg);
        if (policy == core::ServicePolicy::WeightedRoundRobin) {
            for (QueueId q = 0; q < 8; ++q)
                sys.qwaitUnit(0)->readySet().setWeight(q, 4);
        }
        // Track per-class p99 via completion latencies.
        stats::LogHistogram hot(0.01, 1.02, 2048);
        stats::LogHistogram cold(0.01, 1.02, 2048);
        sys.core(0).setCompletionHook(
            [&](const queueing::WorkItem &item, Tick when) {
                const double us = ticksToUs(when - item.arrivalTick);
                (item.qid < 8 ? hot : cold).record(us);
            });
        sys.run();
        tails[i] = {core::toString(policy), hot.quantile(0.99),
                    cold.quantile(0.99)};
    });

    stats::Table tb("WRR differentiation at 85% load (8 weighted "
                    "queues of 64)");
    tb.header({"policy", "weighted-class p99 us", "rest p99 us"});
    for (const auto &row : tails)
        tb.row({row.name, stats::fmt(row.hotP99, 2),
                stats::fmt(row.coldP99, 2)});
    tb.print();

    if (const char *path = harness::argValue(argc, argv, "--json"))
        harness::writeTextFile(path, harness::loadSweepJson(sweeps));

    std::puts("Expected: aggregate rows nearly identical (the paper's "
              "observation); WRR pulls the\nweighted class's tail "
              "below the rest at high load.");
    return 0;
}
