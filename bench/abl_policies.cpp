/**
 * @file
 * Ablation: service policies (Section IV-B).
 *
 * The evaluation reports round-robin only ("we found service policy to
 * have minimal impact on the performance trends"); this ablation checks
 * that claim for aggregate numbers and shows what the policies *do*
 * differ on: per-class service when weights are skewed.
 */

#include <cstdio>

#include "dp/sdp_system.hh"
#include "harness/experiment.hh"
#include "harness/export.hh"
#include "harness/runner.hh"
#include "stats/table.hh"

using namespace hyperplane;

int
main(int argc, char **argv)
{
    harness::printTableI();
    harness::printExperimentBanner(
        "Ablation: service policies",
        "round-robin vs weighted round-robin vs strict priority");

    // Aggregate behaviour: the paper's claim that policy barely moves
    // the headline numbers.
    stats::Table ta("Aggregate at 70% load (packet encapsulation, 64 "
                    "queues FB)");
    ta.header({"policy", "throughput Mtps", "avg us", "p99 us"});
    std::vector<harness::NamedSweep> sweeps;
    for (auto policy : {core::ServicePolicy::RoundRobin,
                        core::ServicePolicy::WeightedRoundRobin,
                        core::ServicePolicy::StrictPriority}) {
        dp::SdpConfig cfg;
        cfg.plane = dp::PlaneKind::HyperPlane;
        cfg.numCores = 1;
        cfg.numQueues = 64;
        cfg.shape = traffic::Shape::FB;
        cfg.policy = policy;
        cfg.seed = 111;
        cfg.warmupUs = 800.0;
        cfg.measureUs = 6000.0;
        const double cap = harness::calibrateCapacity(cfg);
        const auto r = harness::runAtLoad(cfg, cap, 0.7);
        ta.row({core::toString(policy), stats::fmt(r.throughputMtps),
                stats::fmt(r.avgLatencyUs, 2),
                stats::fmt(r.p99LatencyUs, 2)});
        sweeps.push_back({core::toString(policy), {{0.7, r}}});
    }
    ta.print();

    // Differentiated service: WRR with 4:1 weights on the first 8
    // queues must shift latency between classes at high load.
    stats::Table tb("WRR differentiation at 85% load (8 weighted "
                    "queues of 64)");
    tb.header({"policy", "weighted-class p99 us", "rest p99 us"});
    for (auto policy : {core::ServicePolicy::RoundRobin,
                        core::ServicePolicy::WeightedRoundRobin}) {
        dp::SdpConfig cfg;
        cfg.plane = dp::PlaneKind::HyperPlane;
        cfg.numCores = 1;
        cfg.numQueues = 64;
        cfg.shape = traffic::Shape::FB;
        cfg.policy = policy;
        cfg.seed = 112;
        cfg.warmupUs = 800.0;
        cfg.measureUs = 8000.0;
        const double cap = harness::calibrateCapacity(cfg);
        cfg.offeredRatePerSec = cap * 0.85;

        dp::SdpSystem sys(cfg);
        if (policy == core::ServicePolicy::WeightedRoundRobin) {
            for (QueueId q = 0; q < 8; ++q)
                sys.qwaitUnit(0)->readySet().setWeight(q, 4);
        }
        // Track per-class p99 via completion latencies.
        stats::LogHistogram hot(0.01, 1.02, 2048);
        stats::LogHistogram cold(0.01, 1.02, 2048);
        sys.core(0).setCompletionHook(
            [&](const queueing::WorkItem &item, Tick when) {
                const double us = ticksToUs(when - item.arrivalTick);
                (item.qid < 8 ? hot : cold).record(us);
            });
        sys.run();
        tb.row({core::toString(policy),
                stats::fmt(hot.quantile(0.99), 2),
                stats::fmt(cold.quantile(0.99), 2)});
    }
    tb.print();

    if (const char *path = harness::argValue(argc, argv, "--json"))
        harness::writeTextFile(path, harness::loadSweepJson(sweeps));

    std::puts("Expected: aggregate rows nearly identical (the paper's "
              "observation); WRR pulls the\nweighted class's tail "
              "below the rest at high load.");
    return 0;
}
