/**
 * @file
 * Performance trajectory tracker (not a figure reproduction).
 *
 * Times (a) representative single-point simulations, reporting host
 * wall-clock and simulated-events/sec straight off the kernel's
 * dispatch counter, (b) the parallel simulation backend (--sim-threads)
 * against the sequential kernel on one machine, byte-comparing results,
 * and (c) the full Figure 10 sweep at --jobs 1 and
 * --jobs N, byte-comparing the two JSON exports to prove the parallel
 * runner changes wall-clock only.  Results land in BENCH_perf_smoke.json
 * at the repo root (override with --out) so successive PRs can track
 * the simulator's own performance.
 *
 * --check exits nonzero if the jobs-1 and jobs-N sweeps differ, if any
 * built-in capture overflowed the callback inline buffer, or — on hosts
 * with >= 4 hardware threads — if the parallel speedup falls below 2x.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dp/sdp_system.hh"
#include "harness/experiment.hh"
#include "harness/export.hh"
#include "harness/parallel.hh"
#include "harness/runner.hh"
#include "net/simd/dispatch.hh"
#include "server/wire.hh"
#include "sim/callback.hh"
#include "stats/json.hh"
#include "stats/table.hh"

using namespace hyperplane;

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

struct SinglePoint
{
    const char *name;
    double wallSec;
    std::uint64_t events;
    double eventsPerSec;
    double throughputMtps;
    std::uint64_t dirLookups;
    std::uint64_t dirHits;
    std::uint64_t dirLines;
};

/** One timed run; events/sec uses the kernel's dispatch counter. */
SinglePoint
timePoint(const char *name, const dp::SdpConfig &cfg)
{
    dp::SdpSystem sys(cfg);
    const auto t0 = std::chrono::steady_clock::now();
    const auto r = sys.run();
    const double sec = secondsSince(t0);
    const std::uint64_t events = sys.eventQueue().dispatched();
    return {name,
            sec,
            events,
            events / sec,
            r.throughputMtps,
            sys.memory().dirLookups.value(),
            sys.memory().dirHits.value(),
            sys.memory().directoryLines()};
}

/**
 * Endpoints of the ext_core_scaling sweep (same config), timed here so
 * the tracked BENCH_perf_smoke.json records the per-event cost at 16
 * and 128 cores and their ratio alongside the other trajectory points.
 * Best-of-reps, same noise-robust estimator as the full sweep bench.
 */
struct ScalingEndpoint
{
    std::uint64_t events;
    double nsPerEvent;
};

ScalingEndpoint
timeScalingEndpoint(unsigned cores, unsigned reps)
{
    dp::SdpConfig cfg;
    cfg.plane = dp::PlaneKind::HyperPlane;
    cfg.org = dp::QueueOrg::ScaleOut;
    cfg.numCores = cores;
    cfg.numQueues = 8 * cores;
    cfg.workload = workloads::Kind::PacketEncapsulation;
    cfg.shape = traffic::Shape::FB;
    cfg.offeredRatePerSec = 4e5 * cores;
    cfg.warmupUs = 200.0;
    cfg.measureUs = 6000.0;
    cfg.seed = 97;

    ScalingEndpoint best{0, 0.0};
    for (unsigned rep = 0; rep < reps; ++rep) {
        dp::SdpSystem sys(cfg);
        const auto t0 = std::chrono::steady_clock::now();
        (void)sys.run();
        const double sec = secondsSince(t0);
        const std::uint64_t events = sys.eventQueue().dispatched();
        const double ns =
            events > 0 ? 1e9 * sec / static_cast<double>(events) : 0.0;
        if (rep == 0 || ns < best.nsPerEvent)
            best = {events, ns};
    }
    return best;
}

/**
 * Hand-rolled timing of one hot-path kernel: scalar reference vs the
 * dispatched variant over the same buffer, best-of-reps.  The tracked
 * JSON records the ratio so a dispatch regression (a future change
 * accidentally routing to a slower variant) shows up in the trajectory;
 * --check gates dispatched >= 0.8x scalar and result equality.
 */
struct KernelPoint
{
    const char *name;
    const char *variant; // dispatched variant name, for provenance
    double scalarNs;
    double dispatchedNs;
    double speedup;
    bool resultsMatch;
};

template <typename Fn>
double
bestOfNs(Fn &&fn, unsigned iters, unsigned reps)
{
    double best = 0.0;
    for (unsigned r = 0; r < reps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        for (unsigned i = 0; i < iters; ++i)
            fn();
        const double ns = 1e9 * secondsSince(t0) / iters;
        if (r == 0 || ns < best)
            best = ns;
    }
    return best;
}

std::vector<KernelPoint>
timeKernels()
{
    const auto &scalar = net::simd::scalarKernels();
    const auto &hot = net::simd::kernels();
    std::vector<std::uint8_t> buf(1500);
    for (std::size_t i = 0; i < buf.size(); ++i)
        buf[i] = static_cast<std::uint8_t>(i * 131 + 7);
    constexpr unsigned iters = 20000, reps = 3;

    std::vector<KernelPoint> out;
    {
        volatile std::uint32_t sink = 0;
        const double s = bestOfNs(
            [&] { sink = scalar.checksumPartial(buf.data(), 1500, 0); },
            iters, reps);
        const double d = bestOfNs(
            [&] { sink = hot.checksumPartial(buf.data(), 1500, 0); },
            iters, reps);
        out.push_back({"checksum_1500B", hot.checksumName, s, d,
                       d > 0 ? s / d : 0.0,
                       scalar.checksumPartial(buf.data(), 1500, 0) ==
                           hot.checksumPartial(buf.data(), 1500, 0)});
    }
    {
        volatile std::uint32_t sink = 0;
        const double s = bestOfNs(
            [&] { sink = scalar.crc32c(buf.data(), 1024, 0); }, iters,
            reps);
        const double d = bestOfNs(
            [&] { sink = hot.crc32c(buf.data(), 1024, 0); }, iters,
            reps);
        out.push_back({"crc32c_1024B", hot.crc32cName, s, d,
                       d > 0 ? s / d : 0.0,
                       scalar.crc32c(buf.data(), 1024, 0) ==
                           hot.crc32c(buf.data(), 1024, 0)});
    }
    {
        // A 32-packet RX burst of valid request headers.
        constexpr std::size_t n = 32;
        server::wire::RequestHeader hdr;
        std::vector<std::vector<std::uint8_t>> storage(n);
        std::vector<const std::uint8_t *> pkts(n);
        std::vector<std::uint32_t> lens(n);
        for (std::size_t i = 0; i < n; ++i) {
            storage[i].resize(64);
            hdr.seq = i;
            lens[i] = static_cast<std::uint32_t>(
                server::wire::buildRequest(storage[i].data(),
                                           storage[i].size(), hdr,
                                           nullptr));
            pkts[i] = storage[i].data();
        }
        const std::uint8_t prefix[8] = {
            'H', 'P', 'R', 'Q', server::wire::wireVersion, 0, 0, 0};
        std::uint8_t okScalar[n], okHot[n];
        const auto run = [&](net::simd::HeaderCheckFn fn,
                             std::uint8_t *ok) {
            fn(pkts.data(), lens.data(), n, prefix,
               server::wire::numOpcodes,
               server::wire::RequestHeader::wireSize, ok);
        };
        const double s = bestOfNs(
            [&] { run(scalar.headerCheck, okScalar); }, iters, reps);
        const double d =
            bestOfNs([&] { run(hot.headerCheck, okHot); }, iters, reps);
        run(scalar.headerCheck, okScalar);
        run(hot.headerCheck, okHot);
        bool match = true;
        for (std::size_t i = 0; i < n; ++i)
            match &= (okScalar[i] != 0) == (okHot[i] != 0);
        out.push_back({"header_check_32pkt", hot.headerCheckName, s, d,
                       d > 0 ? s / d : 0.0, match});
    }
    return out;
}

/**
 * Parallel simulation backend: the same 16-core scale-out machine run
 * on the sequential kernel and on the token-affine backend, comparing
 * wall clock and byte-comparing the full results JSON (the backend is
 * bit-identical by construction; this keeps it honest).
 */
struct ParallelPoint
{
    unsigned simThreads;
    double seqWallSec;
    double parWallSec;
    double speedup;
    bool identical;
};

ParallelPoint
timeParallelBackend(unsigned simThreads)
{
    dp::SdpConfig cfg;
    cfg.plane = dp::PlaneKind::HyperPlane;
    cfg.org = dp::QueueOrg::ScaleOut;
    cfg.numCores = 16;
    cfg.numQueues = 128;
    cfg.workload = workloads::Kind::PacketEncapsulation;
    cfg.shape = traffic::Shape::FB;
    cfg.offeredRatePerSec = 6.4e6;
    cfg.warmupUs = 200.0;
    cfg.measureUs = 6000.0;
    cfg.seed = 97;

    ParallelPoint out{simThreads, 0.0, 0.0, 0.0, false};
    std::string seqResults, parResults;
    std::uint64_t seqEvents = 0, parEvents = 0;
    {
        cfg.simThreads = 1;
        dp::SdpSystem sys(cfg);
        const auto t0 = std::chrono::steady_clock::now();
        const auto r = sys.run();
        out.seqWallSec = secondsSince(t0);
        seqResults = harness::resultsJson(r);
        seqEvents = sys.eventQueue().dispatched();
    }
    {
        cfg.simThreads = simThreads;
        dp::SdpSystem sys(cfg);
        const auto t0 = std::chrono::steady_clock::now();
        const auto r = sys.run();
        out.parWallSec = secondsSince(t0);
        parResults = harness::resultsJson(r);
        parEvents = sys.eventQueue().dispatched();
    }
    out.speedup =
        out.parWallSec > 0.0 ? out.seqWallSec / out.parWallSec : 0.0;
    out.identical = seqResults == parResults && seqEvents == parEvents;
    return out;
}

/** The Figure 10 series grid (both panels), verbatim. */
std::vector<harness::SweepSeries>
fig10Series()
{
    struct Def
    {
        const char *name;
        traffic::Shape shape;
        dp::PlaneKind plane;
        dp::QueueOrg org;
        double imbalance;
    };
    const Def defs[] = {
        {"fb-spin-out", traffic::Shape::FB, dp::PlaneKind::Spinning,
         dp::QueueOrg::ScaleOut, 0.0},
        {"fb-spin-up2", traffic::Shape::FB, dp::PlaneKind::Spinning,
         dp::QueueOrg::ScaleUp2, 0.0},
        {"fb-spin-up4", traffic::Shape::FB, dp::PlaneKind::Spinning,
         dp::QueueOrg::ScaleUpAll, 0.0},
        {"fb-hp-out", traffic::Shape::FB, dp::PlaneKind::HyperPlane,
         dp::QueueOrg::ScaleOut, 0.0},
        {"fb-hp-up2", traffic::Shape::FB, dp::PlaneKind::HyperPlane,
         dp::QueueOrg::ScaleUp2, 0.0},
        {"fb-hp-up4", traffic::Shape::FB, dp::PlaneKind::HyperPlane,
         dp::QueueOrg::ScaleUpAll, 0.0},
        {"pc-spin-out", traffic::Shape::PC, dp::PlaneKind::Spinning,
         dp::QueueOrg::ScaleOut, 0.0},
        {"pc-spin-out-imb", traffic::Shape::PC, dp::PlaneKind::Spinning,
         dp::QueueOrg::ScaleOut, 0.10},
        {"pc-spin-up2", traffic::Shape::PC, dp::PlaneKind::Spinning,
         dp::QueueOrg::ScaleUp2, 0.0},
        {"pc-hp-out", traffic::Shape::PC, dp::PlaneKind::HyperPlane,
         dp::QueueOrg::ScaleOut, 0.0},
        {"pc-hp-out-imb", traffic::Shape::PC, dp::PlaneKind::HyperPlane,
         dp::QueueOrg::ScaleOut, 0.10},
        {"pc-hp-up2", traffic::Shape::PC, dp::PlaneKind::HyperPlane,
         dp::QueueOrg::ScaleUp2, 0.0},
    };

    std::vector<harness::SweepSeries> series;
    for (const auto &d : defs) {
        dp::SdpConfig cfg;
        cfg.numCores = 4;
        cfg.numQueues = 400;
        cfg.workload = workloads::Kind::PacketEncapsulation;
        cfg.shape = d.shape;
        cfg.plane = d.plane;
        cfg.org = d.org;
        cfg.imbalance = d.imbalance;
        cfg.warmupUs = 1500.0;
        cfg.measureUs = 8000.0;
        cfg.seed = 41;
        series.push_back({d.name, cfg});
    }
    return series;
}

std::string
sweepJson(unsigned jobs, double &wallSec)
{
    const std::vector<double> loads{0.1, 0.3, 0.5, 0.7, 0.9};
    const auto t0 = std::chrono::steady_clock::now();
    const auto sweeps =
        harness::runLoadSweeps(fig10Series(), loads, jobs);
    wallSec = secondsSince(t0);
    std::vector<harness::NamedSweep> named;
    for (const auto &sw : sweeps)
        named.push_back({sw.name, sw.points});
    return harness::loadSweepJson(named);
}

} // namespace

int
main(int argc, char **argv)
{
    harness::printExperimentBanner(
        "perf_smoke", "simulator wall-clock trajectory: single-point "
                      "events/sec + fig10 sweep scaling");

    const bool check = harness::argPresent(argc, argv, "--check");
    const char *outPath = harness::argValue(argc, argv, "--out");
    if (outPath == nullptr)
        outPath = "BENCH_perf_smoke.json";
    const unsigned hw = std::thread::hardware_concurrency();
    unsigned jobs = harness::jobsFromArgs(argc, argv);
    if (jobs == 1 && hw > 1)
        jobs = hw;

    // --- Single-point runs -------------------------------------------
    std::vector<SinglePoint> points;
    {
        dp::SdpConfig cfg;
        cfg.plane = dp::PlaneKind::HyperPlane;
        cfg.numCores = 1;
        cfg.numQueues = 400;
        cfg.workload = workloads::Kind::PacketEncapsulation;
        cfg.shape = traffic::Shape::FB;
        cfg.offeredRatePerSec = 2e6;
        cfg.warmupUs = 800.0;
        cfg.measureUs = 60000.0;
        cfg.seed = 7;
        points.push_back(timePoint("hyperplane-loaded", cfg));

        auto spin = cfg;
        spin.plane = dp::PlaneKind::Spinning;
        points.push_back(timePoint("spinning-loaded", spin));

        auto mc = cfg;
        mc.numCores = 4;
        mc.org = dp::QueueOrg::ScaleUpAll;
        mc.offeredRatePerSec = 6e6;
        points.push_back(timePoint("hyperplane-4core", mc));

        // Memory-bound point: 16 spin-polling cores all sharing 16
        // overloaded queues, so queue-head lines ping-pong and nearly
        // every access hits the directory's owner/sharer/invalidate
        // queries.  This is the point that tracks the O(cores)->O(1)
        // coherence-lookup win (see docs/PERFORMANCE.md).
        auto mb = cfg;
        mb.plane = dp::PlaneKind::Spinning;
        mb.numCores = 16;
        mb.numQueues = 16;
        mb.org = dp::QueueOrg::ScaleUpAll;
        mb.offeredRatePerSec = 4e7;
        mb.warmupUs = 300.0;
        mb.measureUs = 2500.0;
        mb.seed = 23;
        points.push_back(timePoint("membound-16core-spin", mb));
    }

    stats::Table t("Single-point kernel throughput");
    t.header({"point", "wall s", "sim events", "events/s", "Mtps",
              "dir lookups"});
    for (const auto &p : points) {
        t.row({p.name, stats::fmt(p.wallSec, 3),
               std::to_string(p.events),
               stats::fmt(p.eventsPerSec / 1e6, 2) + "M",
               stats::fmt(p.throughputMtps),
               std::to_string(p.dirLookups)});
    }
    t.print();

    // --- Core-scaling endpoints (16 vs 128 cores) --------------------
    const ScalingEndpoint sc16 = timeScalingEndpoint(16, 3);
    const ScalingEndpoint sc128 = timeScalingEndpoint(128, 3);
    const double scalingSpread =
        sc16.nsPerEvent > 0.0 ? sc128.nsPerEvent / sc16.nsPerEvent : 0.0;
    std::printf("core scaling: %.1f ns/event at 16 cores, %.1f at 128 "
                "(%.2fx; full sweep: bench/ext_core_scaling)\n",
                sc16.nsPerEvent, sc128.nsPerEvent, scalingSpread);

    // --- Hot-path kernel micro-points --------------------------------
    const std::vector<KernelPoint> kernels = timeKernels();
    {
        stats::Table kt("SIMD kernel dispatch (scalar vs dispatched)");
        kt.header({"kernel", "variant", "scalar ns", "dispatched ns",
                   "speedup", "match"});
        for (const auto &k : kernels) {
            kt.row({k.name, k.variant, stats::fmt(k.scalarNs, 1),
                    stats::fmt(k.dispatchedNs, 1),
                    stats::fmt(k.speedup, 2) + "x",
                    k.resultsMatch ? "yes" : "NO"});
        }
        kt.print();
    }

    const std::uint64_t heapFallbacks =
        EventCallback::heapFallbackCount();
    std::printf("callback inline-buffer overflows: %llu (expect 0)\n",
                static_cast<unsigned long long>(heapFallbacks));

    // --- Parallel simulation backend (sim-threads 1 vs 4) ------------
    const unsigned simThreads = 4;
    const ParallelPoint par = timeParallelBackend(simThreads);
    // Same convention as the fig10 sweep below: the wall-clock gate
    // needs real cores, the bit-identity check runs everywhere.
    const bool parCheckable = hw >= 4;
    std::printf("parallel backend: %.2f s sequential, %.2f s at "
                "--sim-threads %u (%.2fx); results %s\n",
                par.seqWallSec, par.parWallSec, simThreads, par.speedup,
                par.identical ? "byte-identical" : "DIFFER");

    // --- fig10 sweep: jobs 1 vs jobs N -------------------------------
    double seqSec = 0.0, parSec = 0.0;
    const std::string seqJson = sweepJson(1, seqSec);
    const std::string parJson = sweepJson(jobs, parSec);
    const bool identical = seqJson == parJson;
    const double speedup = parSec > 0 ? seqSec / parSec : 0.0;

    std::printf("fig10 sweep: %.2f s at --jobs 1, %.2f s at --jobs %u "
                "(%.2fx); exports %s\n",
                seqSec, parSec, jobs, speedup,
                identical ? "byte-identical" : "DIFFER");

    // --- JSON export --------------------------------------------------
    std::ostringstream os;
    // Speedup only means something with real parallel hardware; on a
    // <4-thread host a sub-1.0 ratio reads like a regression when it is
    // only scheduler overhead, so the sweep check is reported skipped.
    const bool sweepCheckable = hw >= 4 && jobs >= 4;
    os << "{\n\"host\":" << harness::hostJson(jobs, simThreads)
       << ",\n\"hardware_concurrency\":" << hw
       << ",\n\"jobs\":" << jobs
       << ",\n\"callback_heap_fallbacks\":" << heapFallbacks
       << ",\n\"single_points\":[";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const auto &p = points[i];
        os << (i == 0 ? "" : ",") << "\n{\"name\":"
           << stats::jsonString(p.name)
           << ",\"wall_sec\":" << stats::jsonNumber(p.wallSec)
           << ",\"sim_events\":" << p.events
           << ",\"events_per_sec\":" << stats::jsonNumber(p.eventsPerSec)
           << ",\"throughput_mtps\":"
           << stats::jsonNumber(p.throughputMtps)
           << ",\"directory_lookups\":" << p.dirLookups
           << ",\"directory_hits\":" << p.dirHits
           << ",\"directory_lines\":" << p.dirLines << "}";
    }
    os << "],\n\"kernel_micro\":{\"force_scalar\":"
       << (net::simd::kernels().forcedScalar ? "true" : "false")
       << ",\"points\":[";
    for (std::size_t i = 0; i < kernels.size(); ++i) {
        const auto &k = kernels[i];
        os << (i == 0 ? "" : ",") << "\n{\"name\":"
           << stats::jsonString(k.name)
           << ",\"variant\":" << stats::jsonString(k.variant)
           << ",\"scalar_ns\":" << stats::jsonNumber(k.scalarNs)
           << ",\"dispatched_ns\":" << stats::jsonNumber(k.dispatchedNs)
           << ",\"speedup\":" << stats::jsonNumber(k.speedup)
           << ",\"results_match\":" << (k.resultsMatch ? "true" : "false")
           << "}";
    }
    os << "]}";
    os << ",\n\"core_scaling\":{\"ns_per_event_16\":"
       << stats::jsonNumber(sc16.nsPerEvent)
       << ",\"ns_per_event_128\":" << stats::jsonNumber(sc128.nsPerEvent)
       << ",\"spread_128_vs_16\":" << stats::jsonNumber(scalingSpread)
       << ",\"sim_events_16\":" << sc16.events
       << ",\"sim_events_128\":" << sc128.events << "}";
    os << ",\n\"parallel_backend\":{\"sim_threads\":" << par.simThreads
       << ",\"seq_wall_sec\":" << stats::jsonNumber(par.seqWallSec)
       << ",\"par_wall_sec\":" << stats::jsonNumber(par.parWallSec)
       << ",\"results_identical\":" << (par.identical ? "true" : "false");
    if (parCheckable) {
        os << ",\"speedup\":" << stats::jsonNumber(par.speedup)
           << ",\"speedup_check\":\""
           << (par.speedup >= 1.5 ? "ok" : "slow") << "\"";
    } else {
        os << ",\"speedup_check\":\"skipped(single-thread-host)\"";
    }
    os << "}";
    os << ",\n\"fig10_sweep\":{\"jobs1_wall_sec\":"
       << stats::jsonNumber(seqSec)
       << ",\"jobsN_wall_sec\":" << stats::jsonNumber(parSec);
    if (sweepCheckable) {
        os << ",\"speedup\":" << stats::jsonNumber(speedup)
           << ",\"sweep_check\":\"" << (identical ? "ok" : "differs")
           << "\"";
    } else {
        os << ",\"sweep_check\":\"skipped(single-thread-host)\"";
    }
    os << ",\"byte_identical\":" << (identical ? "true" : "false")
       << "}\n}\n";
    harness::writeTextFile(outPath, os.str());

    if (!check)
        return 0;

    bool ok = true;
    if (!identical) {
        std::puts("CHECK FAILED: --jobs 1 and --jobs N exports differ");
        ok = false;
    }
    if (heapFallbacks != 0) {
        std::puts("CHECK FAILED: schedule fast path heap-allocated");
        ok = false;
    }
    for (const auto &k : kernels) {
        if (!k.resultsMatch) {
            std::printf("CHECK FAILED: %s dispatched result differs "
                        "from scalar\n",
                        k.name);
            ok = false;
        }
        // The dispatched kernel may tie scalar (scalar hosts, forced
        // scalar) but must never be meaningfully slower.
        if (k.speedup > 0.0 && k.speedup < 0.8) {
            std::printf("CHECK FAILED: %s dispatched %.2fx slower than "
                        "scalar (variant %s)\n",
                        k.name, 1.0 / k.speedup, k.variant);
            ok = false;
        }
    }
    // The speedup assertion needs real cores; skip on small hosts (the
    // determinism byte-compare above runs everywhere).
    if (hw >= 4 && jobs >= 4 && speedup < 2.0) {
        std::printf("CHECK FAILED: speedup %.2fx < 2x with %u hardware "
                    "threads\n",
                    speedup, hw);
        ok = false;
    }
    if (!par.identical) {
        std::puts("CHECK FAILED: parallel backend results differ from "
                  "the sequential kernel");
        ok = false;
    }
    if (parCheckable && par.speedup < 1.5) {
        std::printf("CHECK FAILED: parallel backend %.2fx < 1.5x with "
                    "%u sim threads on %u hardware threads\n",
                    par.speedup, simThreads, hw);
        ok = false;
    }
    return ok ? 0 : 1;
}
