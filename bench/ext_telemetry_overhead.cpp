/**
 * @file
 * Extension benchmark: cost of the live telemetry plane on the real
 * UDP server.
 *
 * Two variants of the same closed-loop saturation run over loopback:
 * telemetry at its defaults (sharded stage histograms + decimated
 * per-request sampling + 1-in-64 flight recorder + metrics endpoint
 * being scraped mid-run) versus telemetry disabled.  The gate is the
 * tentpole's acceptance bar: the default telemetry configuration may
 * cost at most 5% of peak requests/sec, and the telemetry-enabled run
 * must still answer >= 99.9% of requests.  While the loaded run is in
 * flight the bench scrapes the metrics endpoint over its UDP one-shot
 * op and validates that the Prometheus page and the JSON registry
 * export are well formed — the endpoint must serve under load, not
 * just at idle.
 *
 * Measurement design: the run is split into *rounds*; each round
 * constructs a fresh pair of servers (telemetry on and off), keeps
 * both up, and alternates short loadgen slices between them (on-off,
 * off-on, ...) so the two variants sample nearly the same wall-clock
 * windows.  The gate uses the median of per-pair cost ratios pooled
 * across every round.  Both layers are load-bearing on a small host:
 * separate multi-second best-of-N runs per variant are flaky because
 * steal-time windows longer than a run bias a whole side, and a
 * single server instantiation is flaky because one unlucky cache/page
 * layout (fixed at construction) biases every pair the same way —
 * re-instantiating per round with a heap-offset perturbation re-rolls
 * that layout, and the pooled median outvotes an unlucky round.
 *
 * Flags:
 *   --quick        shorter slices for CI smoke
 *   --check        exit nonzero if a gate fails
 *   --duration S   seconds per slice (default 0.5; --quick 0.3)
 *   --repeats N    measured slice pairs per round (default 3)
 *   --rounds N     server re-instantiations (default 5, median pooled)
 *   --tolerance F  peak-throughput cost bound (default 0.05)
 *   --json FILE    machine-readable export
 *
 * When the sandbox forbids UDP sockets the run prints a skip
 * annotation and exits 0 (with {"skipped":true} JSON if requested).
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "../tests/json_check.hh"
#include "harness/experiment.hh"
#include "harness/export.hh"
#include "server/loadgen.hh"
#include "server/server.hh"
#include "stats/json.hh"
#include "stats/table.hh"

using namespace hyperplane;

namespace {

struct Scenario
{
    double seconds = 0.5; ///< per-slice send-phase seconds
    unsigned window = 128; ///< closed-loop outstanding cap
    unsigned repeats = 3; ///< measured slice pairs per round
    unsigned rounds = 5; ///< fresh server pairs (layout re-rolls)
    double tolerance = 0.05;
};

/** Accumulated over every measured slice of one variant. */
struct VariantTotals
{
    std::uint64_t sent = 0;
    std::uint64_t answered = 0;
    double sendSec = 0.0;
    std::vector<double> p50Us, p99Us, p999Us;

    void add(const server::LoadGenReport &r)
    {
        sent += r.sent;
        answered += r.answered;
        sendSec += r.durationSec;
        p50Us.push_back(r.p50Us);
        p99Us.push_back(r.p99Us);
        p999Us.push_back(r.p999Us);
    }
    double reqPerSec() const
    {
        return sendSec > 0.0 ? static_cast<double>(answered) / sendSec
                             : 0.0;
    }
    double answeredRatio() const
    {
        return sent > 0 ? static_cast<double>(answered) /
                              static_cast<double>(sent)
                        : 0.0;
    }
};

double
median(std::vector<double> v)
{
    if (v.empty())
        return 0.0;
    std::sort(v.begin(), v.end());
    const std::size_t n = v.size();
    return n % 2 == 1 ? v[n / 2]
                      : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

server::ServerConfig
serverConfig(bool telemetryOn)
{
    // Small enough for a 1-2 CPU CI box: the question is the *relative*
    // cost of telemetry, and extra threads only add scheduler noise.
    // One worker serving every queue on purpose: each loadgen slice
    // arrives from a fresh ephemeral source port, so with multiple
    // workers the flow->queue->worker hash re-rolls per slice and the
    // resulting balance lottery swamps a few-percent telemetry effect.
    server::ServerConfig sc;
    sc.rxThreads = 1;
    sc.txThreads = 1;
    sc.workers = 1;
    sc.numQueues = 4;
    sc.telemetry.enabled = telemetryOn;
    // The endpoint is part of the default-on cost being measured.
    sc.telemetry.metricsPort = telemetryOn ? 0 : -1;
    return sc;
}

} // namespace

int
main(int argc, char **argv)
{
    harness::printTableI();
    harness::printExperimentBanner(
        "Extension: telemetry plane overhead",
        "real loopback server at closed-loop saturation, default "
        "telemetry (stage histograms +\nflight recorder + live "
        "endpoint scrape) vs telemetry off; the default configuration "
        "must\ncost <= 5% of peak req/s and still answer >= 99.9%");

    const bool check = harness::argPresent(argc, argv, "--check");
    const bool quick = harness::argPresent(argc, argv, "--quick");
    const char *jsonPath = harness::argValue(argc, argv, "--json");

    Scenario s;
    if (quick)
        s.seconds = 0.3;
    if (const char *v = harness::argValue(argc, argv, "--duration"))
        s.seconds = std::atof(v);
    if (const char *v = harness::argValue(argc, argv, "--repeats"))
        s.repeats = static_cast<unsigned>(std::atoi(v));
    if (const char *v = harness::argValue(argc, argv, "--rounds"))
        s.rounds = static_cast<unsigned>(std::atoi(v));
    if (const char *v = harness::argValue(argc, argv, "--tolerance"))
        s.tolerance = std::atof(v);

    VariantTotals on, off;
    std::vector<double> pairCosts;
    std::string promPage, statsJson;
    std::uint64_t flightRecorded = 0, stageSamples = 0;
    // Kept alive across rounds so each round's servers see a shifted
    // heap (see the header comment).
    std::vector<std::unique_ptr<char[]>> heapShift;
    bool sockets = true;

    for (unsigned round = 0; sockets && round < s.rounds; ++round) {
        server::UdpServer srvOn(serverConfig(true));
        server::UdpServer srvOff(serverConfig(false));
        if (!srvOn.start() || !srvOff.start()) {
            sockets = false;
            break;
        }

        const auto slice =
            [&](bool v) -> std::optional<server::LoadGenReport> {
            server::LoadGenConfig lc;
            lc.serverPort = v ? srvOn.port() : srvOff.port();
            lc.openLoop = false; // saturation, not offered load
            lc.window = s.window;
            lc.ratePerSec = 1e6; // ignored in closed loop
            lc.durationSec = s.seconds;
            lc.numFlows = 64;
            lc.seed = 29;
            return server::UdpLoadGen(lc).run();
        };

        // One unmeasured warmup pair per round: first-touch page
        // faults, cold i-cache, cold socket paths.
        if (!slice(true) || !slice(false)) {
            sockets = false;
            break;
        }
        for (unsigned r = 0; r < s.repeats; ++r) {
            std::thread scraper;
            if (round == 0 && r == 0 && srvOn.metricsPort() >= 0) {
                // Scrape the live endpoint mid-slice, while the
                // enabled server is under load.
                scraper = std::thread([&] {
                    std::this_thread::sleep_for(
                        std::chrono::duration<double>(s.seconds * 0.5));
                    std::string ct;
                    promPage = srvOn.metricsPage("/metrics", ct);
                    statsJson = srvOn.metricsPage("/stats.json", ct);
                });
            }
            std::optional<server::LoadGenReport> ron, roff;
            if (r % 2 == 0) {
                ron = slice(true);
                roff = slice(false);
            } else {
                roff = slice(false);
                ron = slice(true);
            }
            if (scraper.joinable())
                scraper.join();
            if (!ron || !roff) {
                sockets = false;
                break;
            }
            on.add(*ron);
            off.add(*roff);
            if (roff->achievedPerSec > 0.0) {
                pairCosts.push_back(1.0 - ron->achievedPerSec /
                                              roff->achievedPerSec);
            }
        }

        flightRecorded += srvOn.flightRecorder()
                              ? srvOn.flightRecorder()->recorded()
                              : 0;
        stageSamples +=
            srvOn.stageLatency(telemetry::ServerStage::EndToEnd)
                .count();
        srvOn.stop();
        srvOff.stop();
        // Next round's allocations start from a different offset.
        heapShift.push_back(
            std::make_unique<char[]>((round + 1) * 8 * 1024 + 64));
    }
    if (on.sendSec == 0.0 || off.sendSec == 0.0) {
        std::puts("SKIP: UDP loopback sockets unavailable in this "
                  "sandbox; telemetry overhead not measured.");
        if (jsonPath != nullptr)
            harness::writeTextFile(jsonPath, "{\"skipped\":true}\n");
        return 0;
    }

    const double cost = median(pairCosts);

    stats::Table t("Telemetry on (defaults) vs off, closed-loop peak");
    t.header({"variant", "req/s", "answered", "p50 us", "p99 us",
              "p99.9 us"});
    const auto row = [&t](const char *name, const VariantTotals &v) {
        t.row({name, stats::fmt(v.reqPerSec(), 0),
               stats::fmt(v.answeredRatio() * 100, 3) + "%",
               stats::fmt(median(v.p50Us), 1),
               stats::fmt(median(v.p99Us), 1),
               stats::fmt(median(v.p999Us), 1)});
    };
    row("telemetry on", on);
    row("telemetry off", off);
    t.print();
    std::printf("telemetry cost: %.2f%% of peak (median of %zu "
                "interleaved pairs, bound %.0f%%); flight events %llu, "
                "e2e stage samples %llu\n",
                cost * 100.0, pairCosts.size(), s.tolerance * 100.0,
                static_cast<unsigned long long>(flightRecorded),
                static_cast<unsigned long long>(stageSamples));

    const bool promOk =
        promPage.find("hyperplane_server_rx_packets") !=
            std::string::npos &&
        promPage.find("hyperplane_build_info{") != std::string::npos;
    const bool jsonOk =
        !statsJson.empty() &&
        hyperplane::testing::JsonChecker(statsJson).valid();
    std::printf("mid-run scrape: prometheus %s (%zu bytes), "
                "stats.json %s (%zu bytes)\n",
                promOk ? "ok" : "INVALID", promPage.size(),
                jsonOk ? "ok" : "INVALID", statsJson.size());

    if (jsonPath != nullptr) {
        const auto variantJson = [](const VariantTotals &v) {
            std::string j = "{\"req_per_sec\":";
            j += stats::jsonNumber(v.reqPerSec());
            j += ",\"answered_ratio\":";
            j += stats::jsonNumber(v.answeredRatio());
            j += ",\"sent\":" + std::to_string(v.sent);
            j += ",\"answered\":" + std::to_string(v.answered);
            j += ",\"p50_us\":" + stats::jsonNumber(median(v.p50Us));
            j += ",\"p99_us\":" + stats::jsonNumber(median(v.p99Us));
            j += ",\"p999_us\":" + stats::jsonNumber(median(v.p999Us));
            j += "}";
            return j;
        };
        std::string j = "{\"skipped\":false";
        j += ",\"host\":" + harness::hostJson();
        j += ",\"telemetry_on\":" + variantJson(on);
        j += ",\"telemetry_off\":" + variantJson(off);
        j += ",\"cost_ratio\":" + stats::jsonNumber(cost);
        j += ",\"pair_costs\":[";
        for (std::size_t i = 0; i < pairCosts.size(); ++i) {
            if (i)
                j += ",";
            j += stats::jsonNumber(pairCosts[i]);
        }
        j += "]";
        j += ",\"tolerance\":" + stats::jsonNumber(s.tolerance);
        j += ",\"flight_recorded\":" + std::to_string(flightRecorded);
        j += ",\"stage_samples\":" + std::to_string(stageSamples);
        j += ",\"scrape_prometheus_ok\":";
        j += promOk ? "true" : "false";
        j += ",\"scrape_json_ok\":";
        j += jsonOk ? "true" : "false";
        j += "}\n";
        harness::writeTextFile(jsonPath, j);
    }

    if (check) {
        bool ok = true;
        if (cost > s.tolerance) {
            std::printf("CHECK FAIL: telemetry costs %.2f%% of peak "
                        "req/s > %.0f%% bound\n",
                        cost * 100.0, s.tolerance * 100.0);
            ok = false;
        }
        if (on.answeredRatio() < 0.999) {
            std::printf("CHECK FAIL: answered ratio %.4f < 0.999 with "
                        "telemetry on\n",
                        on.answeredRatio());
            ok = false;
        }
        if (stageSamples == 0) {
            std::puts("CHECK FAIL: no e2e stage latency samples "
                      "recorded");
            ok = false;
        }
        if (flightRecorded == 0) {
            std::puts("CHECK FAIL: flight recorder stamped nothing");
            ok = false;
        }
        if (!promOk || !jsonOk) {
            std::puts("CHECK FAIL: mid-run metrics scrape invalid");
            ok = false;
        }
        if (!ok)
            return 1;
        std::puts("CHECK OK");
    }
    return 0;
}
