/**
 * @file
 * Figure 8 reproduction: peak throughput of the spinning data plane vs
 * HyperPlane for all six workloads under all four traffic shapes,
 * sweeping the total number of queues (Section V-B).
 */

#include <cstdio>

#include "dp/sdp_system.hh"
#include "harness/experiment.hh"
#include "harness/parallel.hh"
#include "harness/runner.hh"
#include "stats/table.hh"

using namespace hyperplane;

int
main(int argc, char **argv)
{
    harness::printTableI();
    harness::printExperimentBanner(
        "Figure 8",
        "peak throughput, spinning vs HyperPlane, 6 workloads x 4 "
        "shapes x queue counts (single core)");
    const unsigned jobs = harness::jobsFromArgs(argc, argv);

    const std::vector<unsigned> queueCounts{100, 400, 700, 1000};
    const auto kinds = workloads::allKinds();
    const auto shapes = traffic::allShapes();

    // Grid order (kind, shape, queues, plane); plane 0 = spinning.
    std::vector<dp::SdpConfig> grid;
    for (auto kind : kinds) {
        for (auto shape : shapes) {
            for (unsigned q : queueCounts) {
                dp::SdpConfig cfg;
                cfg.numCores = 1;
                cfg.numQueues = q;
                cfg.workload = kind;
                cfg.shape = shape;
                cfg.warmupUs = 800.0;
                cfg.measureUs = 5000.0;
                cfg.seed = 21;
                cfg.plane = dp::PlaneKind::Spinning;
                grid.push_back(cfg);
                cfg.plane = dp::PlaneKind::HyperPlane;
                grid.push_back(cfg);
            }
        }
    }
    const auto results = harness::runSaturations(grid, jobs);

    double sumRatio = 0.0;
    unsigned nRatio = 0;
    std::size_t idx = 0;

    for (auto kind : kinds) {
        stats::Table t(std::string("Fig 8: ") +
                       workloads::toString(kind) +
                       " (million tasks/s)");
        std::vector<std::string> header{"shape/plane"};
        for (unsigned q : queueCounts)
            header.push_back(std::to_string(q) + "q");
        t.header(std::move(header));

        for (auto shape : shapes) {
            std::vector<std::string> spinRow{
                std::string(traffic::toString(shape)) + "-spinning"};
            std::vector<std::string> hpRow{
                std::string(traffic::toString(shape)) + "-hyperplane"};
            for (std::size_t qi = 0; qi < queueCounts.size(); ++qi) {
                const auto &spin = results[idx++];
                const auto &hp = results[idx++];
                spinRow.push_back(stats::fmt(spin.throughputMtps));
                hpRow.push_back(stats::fmt(hp.throughputMtps));
                if (spin.throughputMtps > 0) {
                    sumRatio += hp.throughputMtps / spin.throughputMtps;
                    ++nRatio;
                }
            }
            t.row(std::move(spinRow));
            t.row(std::move(hpRow));
        }
        t.print();
    }

    std::printf("Mean HyperPlane/spinning peak-throughput ratio across "
                "all points: %s (paper: 4.1x on average)\n",
                stats::fmtRatio(sumRatio / nRatio).c_str());
    return 0;
}
