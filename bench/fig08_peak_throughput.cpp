/**
 * @file
 * Figure 8 reproduction: peak throughput of the spinning data plane vs
 * HyperPlane for all six workloads under all four traffic shapes,
 * sweeping the total number of queues (Section V-B).
 */

#include <cstdio>

#include "dp/sdp_system.hh"
#include "harness/experiment.hh"
#include "harness/runner.hh"
#include "stats/table.hh"

using namespace hyperplane;

int
main()
{
    harness::printTableI();
    harness::printExperimentBanner(
        "Figure 8",
        "peak throughput, spinning vs HyperPlane, 6 workloads x 4 "
        "shapes x queue counts (single core)");

    const std::vector<unsigned> queueCounts{100, 400, 700, 1000};
    double sumRatio = 0.0;
    unsigned nRatio = 0;

    for (auto kind : workloads::allKinds()) {
        stats::Table t(std::string("Fig 8: ") +
                       workloads::toString(kind) +
                       " (million tasks/s)");
        std::vector<std::string> header{"shape/plane"};
        for (unsigned q : queueCounts)
            header.push_back(std::to_string(q) + "q");
        t.header(std::move(header));

        for (auto shape : traffic::allShapes()) {
            std::vector<std::string> spinRow{
                std::string(traffic::toString(shape)) + "-spinning"};
            std::vector<std::string> hpRow{
                std::string(traffic::toString(shape)) + "-hyperplane"};
            for (unsigned q : queueCounts) {
                dp::SdpConfig cfg;
                cfg.numCores = 1;
                cfg.numQueues = q;
                cfg.workload = kind;
                cfg.shape = shape;
                cfg.warmupUs = 800.0;
                cfg.measureUs = 5000.0;
                cfg.seed = 21;

                cfg.plane = dp::PlaneKind::Spinning;
                const auto spin = harness::measureAtSaturation(cfg);
                cfg.plane = dp::PlaneKind::HyperPlane;
                const auto hp = harness::measureAtSaturation(cfg);

                spinRow.push_back(stats::fmt(spin.throughputMtps));
                hpRow.push_back(stats::fmt(hp.throughputMtps));
                if (spin.throughputMtps > 0) {
                    sumRatio += hp.throughputMtps / spin.throughputMtps;
                    ++nRatio;
                }
            }
            t.row(std::move(spinRow));
            t.row(std::move(hpRow));
        }
        t.print();
    }

    std::printf("Mean HyperPlane/spinning peak-throughput ratio across "
                "all points: %s (paper: 4.1x on average)\n",
                stats::fmtRatio(sumRatio / nRatio).c_str());
    return 0;
}
