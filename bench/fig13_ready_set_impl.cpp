/**
 * @file
 * Figure 13 reproduction: software-based vs hardware-based ready set
 * (Section V-E).  Single core monitoring 1000 queues; the software
 * iterator's cost grows with the number of ready QIDs, so the penalty
 * is worst under fully-balanced traffic.
 */

#include <cstdio>

#include "dp/sdp_system.hh"
#include "harness/experiment.hh"
#include "harness/parallel.hh"
#include "harness/runner.hh"
#include "stats/table.hh"

using namespace hyperplane;

int
main(int argc, char **argv)
{
    harness::printTableI();
    harness::printExperimentBanner(
        "Figure 13", "software vs hardware ready set: relative peak "
                     "throughput, 1000 queues, 1 core");
    const unsigned jobs = harness::jobsFromArgs(argc, argv);

    const auto kinds = workloads::allKinds();
    const std::vector<traffic::Shape> shapes{traffic::Shape::PC,
                                             traffic::Shape::FB};

    // Grid order (kind, shape, implementation); impl 0 = hardware.
    std::vector<dp::SdpConfig> grid;
    for (auto kind : kinds) {
        for (auto shape : shapes) {
            dp::SdpConfig cfg;
            cfg.numCores = 1;
            cfg.numQueues = 1000;
            cfg.workload = kind;
            cfg.shape = shape;
            cfg.warmupUs = 800.0;
            cfg.measureUs = 5000.0;
            cfg.seed = 71;
            cfg.plane = dp::PlaneKind::HyperPlane;
            grid.push_back(cfg);
            cfg.plane = dp::PlaneKind::HyperPlaneSwReady;
            grid.push_back(cfg);
        }
    }
    const auto results = harness::runSaturations(grid, jobs);

    stats::Table t("Fig 13: software ready set throughput relative to "
                   "hardware (%)");
    t.header({"workload", "PC", "FB"});
    std::size_t idx = 0;
    for (auto kind : kinds) {
        std::vector<std::string> row{workloads::toString(kind)};
        for (std::size_t s = 0; s < shapes.size(); ++s) {
            const auto &hw = results[idx++];
            const auto &sw = results[idx++];
            row.push_back(stats::fmt(
                100.0 * sw.throughputMtps / hw.throughputMtps, 1));
        }
        t.row(std::move(row));
    }
    t.print();

    std::puts("Expected shape: the software iterator loses throughput "
              "everywhere, and the drop is\nmore severe under FB "
              "(down to ~50% in the paper) where the ready list is "
              "longest.");
    return 0;
}
