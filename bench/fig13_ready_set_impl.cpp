/**
 * @file
 * Figure 13 reproduction: software-based vs hardware-based ready set
 * (Section V-E).  Single core monitoring 1000 queues; the software
 * iterator's cost grows with the number of ready QIDs, so the penalty
 * is worst under fully-balanced traffic.
 */

#include <cstdio>

#include "dp/sdp_system.hh"
#include "harness/experiment.hh"
#include "harness/runner.hh"
#include "stats/table.hh"

using namespace hyperplane;

int
main()
{
    harness::printTableI();
    harness::printExperimentBanner(
        "Figure 13", "software vs hardware ready set: relative peak "
                     "throughput, 1000 queues, 1 core");

    stats::Table t("Fig 13: software ready set throughput relative to "
                   "hardware (%)");
    t.header({"workload", "PC", "FB"});

    for (auto kind : workloads::allKinds()) {
        std::vector<std::string> row{workloads::toString(kind)};
        for (auto shape : {traffic::Shape::PC, traffic::Shape::FB}) {
            dp::SdpConfig cfg;
            cfg.numCores = 1;
            cfg.numQueues = 1000;
            cfg.workload = kind;
            cfg.shape = shape;
            cfg.warmupUs = 800.0;
            cfg.measureUs = 5000.0;
            cfg.seed = 71;

            cfg.plane = dp::PlaneKind::HyperPlane;
            const auto hw = harness::measureAtSaturation(cfg);
            cfg.plane = dp::PlaneKind::HyperPlaneSwReady;
            const auto sw = harness::measureAtSaturation(cfg);
            row.push_back(stats::fmt(
                100.0 * sw.throughputMtps / hw.throughputMtps, 1));
        }
        t.row(std::move(row));
    }
    t.print();

    std::puts("Expected shape: the software iterator loses throughput "
              "everywhere, and the drop is\nmore severe under FB "
              "(down to ~50% in the paper) where the ready list is "
              "longest.");
    return 0;
}
