/**
 * @file
 * Extension benchmark: the stateful application suite on both
 * execution paths.
 *
 * Part 1 (always runs, no sockets needed): each app as a *simulator*
 * workload — Kind::{HeavyHitter,ConntrackLb,SpinRtt} behind a
 * HyperPlane plane — with a determinism probe (two identical runs must
 * agree exactly on completions and handler counters; the stateful
 * workloads must not break the tick-parallel backend's bit-identical
 * guarantee).
 *
 * Part 2 (skips gracefully without sockets): each app as a *server*
 * handler — the real UDP server on loopback, flow-coherent loadgen
 * traffic pinned to that app's opcode — swept across active-flow
 * counts (1k -> 256k), the state-scaling axis HyperPlane's
 * many-active-flows claim rests on.  The heavy-hitter sweep uses the
 * Zipf popularity shape so the promotion table sees genuine skew.
 *
 * Gates (--check):
 *  - sim: nonzero completions, every synthesized request decodes
 *    (handledOk == processed), determinism probe exact;
 *  - server, every point: >= 99.9% answered, p99 below --max-p99-us,
 *    zero payload copies (app handlers build responses in the RX frame
 *    in place — same tripwire as echo);
 *  - server, per app: the app's own counters moved (sketch updates /
 *    connection opens / spin edges observed).
 *
 * Flags:
 *   --quick          small sweep for CI smoke runs
 *   --check          exit nonzero when a gate fails
 *   --max-p99-us N   p99 ceiling per point (default 50000)
 *   --rate R         offered req/s per point (default host-scaled)
 *   --duration S     send-phase seconds per point
 *   --json FILE      machine-readable export (BENCH_app.json in CI)
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "app/app.hh"
#include "app/conntrack_lb.hh"
#include "app/heavy_hitter.hh"
#include "app/spin_rtt.hh"
#include "dp/sdp_system.hh"
#include "harness/experiment.hh"
#include "harness/export.hh"
#include "server/loadgen.hh"
#include "server/server.hh"
#include "stats/json.hh"
#include "stats/registry.hh"
#include "stats/table.hh"
#include "workloads/stateful_app.hh"

using namespace hyperplane;

namespace {

// ---------------------------------------------------------------------
// Part 1: simulator scenarios
// ---------------------------------------------------------------------

struct SimPoint
{
    workloads::Kind kind;
    dp::SdpResults res;
    std::uint64_t processed = 0;
    std::uint64_t handledOk = 0;
    std::uint64_t counterA = 0; ///< app-specific (updates/opens/edges)
};

dp::SdpConfig
simConfigFor(workloads::Kind kind, bool quick)
{
    dp::SdpConfig cfg;
    cfg.plane = dp::PlaneKind::HyperPlane;
    cfg.numCores = 4;
    // Few queues + a high rate so each synthetic flow (the source
    // spreads 31 flow labels per queue) sees tens of packets — enough
    // for conntrack open/data cycles and spin-bit flips to register.
    cfg.numQueues = 8;
    cfg.org = dp::QueueOrg::ScaleOut;
    cfg.workload = kind;
    cfg.shape = traffic::Shape::FB;
    cfg.offeredRatePerSec = 4e6;
    cfg.warmupUs = 200.0;
    cfg.measureUs = quick ? 2000.0 : 8000.0;
    cfg.seed = 41;
    return cfg;
}

SimPoint
runSim(workloads::Kind kind, bool quick)
{
    dp::SdpSystem sys(simConfigFor(kind, quick));
    SimPoint pt;
    pt.kind = kind;
    pt.res = sys.run();
    auto &wl = dynamic_cast<workloads::StatefulApp &>(sys.workload());
    pt.processed = wl.processed();
    pt.handledOk = wl.handledOk();
    switch (kind) {
      case workloads::Kind::HeavyHitter:
        pt.counterA = dynamic_cast<app::HeavyHitterApp &>(wl.handler())
                          .updates();
        break;
      case workloads::Kind::ConntrackLb:
        pt.counterA =
            dynamic_cast<app::ConntrackLbApp &>(wl.handler()).opens();
        break;
      case workloads::Kind::SpinRtt:
        pt.counterA =
            dynamic_cast<app::SpinRttApp &>(wl.handler()).edges();
        break;
      default:
        break;
    }
    return pt;
}

// ---------------------------------------------------------------------
// Part 2: server flow-scaling sweep
// ---------------------------------------------------------------------

struct ServerPoint
{
    app::AppKind kind;
    unsigned numFlows;
    double ratePerSec;
    server::LoadGenReport report;
    server::ServerCounterSnapshot snap;
    /** server.app.<name>.* registry values sampled after the run. */
    double updates = 0, promotions = 0, hotFlows = 0;
    double opens = 0, closes = 0, active = 0, outOfOrder = 0;
    double edges = 0, rttSamples = 0, rttP50Ns = 0;
    double decodeErrors = 0;
};

std::optional<ServerPoint>
runServerPoint(app::AppKind kind, unsigned numFlows, double rate,
               double seconds)
{
    server::ServerConfig sc;
    sc.rxThreads = 2;
    sc.txThreads = 1;
    sc.workers = 2;
    sc.numQueues = 16;
    server::UdpServer srv(sc);
    if (!srv.start())
        return std::nullopt;

    server::LoadGenConfig lc;
    lc.serverPort = srv.port();
    lc.ratePerSec = rate;
    lc.durationSec = seconds;
    lc.openLoop = true;
    lc.numFlows = numFlows;
    // Zipf skew for the heavy hitter (promotions need hot flows); the
    // other apps spread uniformly so the flow-count axis is honest.
    lc.shape = kind == app::AppKind::HeavyHitter ? traffic::Shape::Zipf
                                                 : traffic::Shape::FB;
    lc.opcodeWeights = {};
    lc.opcodeWeights[server::wire::firstAppOpcode +
                     static_cast<unsigned>(kind)] = 1.0;
    lc.seed = 47 + static_cast<unsigned>(kind);
    auto report = server::UdpLoadGen(lc).run();
    if (!report) {
        srv.stop();
        return std::nullopt;
    }

    // App counters via the registry, exactly as telemetry exports them.
    stats::Registry reg;
    srv.registerStats(reg);
    const std::string p =
        std::string("server.app.") + app::statName(kind);
    ServerPoint pt;
    pt.kind = kind;
    pt.numFlows = numFlows;
    pt.ratePerSec = rate;
    pt.updates = reg.value(p + ".updates");
    pt.promotions = reg.value(p + ".promotions");
    pt.hotFlows = reg.value(p + ".hot_flows");
    pt.opens = reg.value(p + ".opens");
    pt.closes = reg.value(p + ".closes");
    pt.active = reg.value(p + ".active");
    pt.outOfOrder = reg.value(p + ".out_of_order");
    pt.edges = reg.value(p + ".edges");
    pt.rttSamples = reg.value(p + ".samples");
    pt.rttP50Ns = reg.value(p + ".rtt_p50_ns");
    pt.decodeErrors = reg.value(p + ".decode_errors");
    srv.stop();
    pt.report = std::move(*report);
    pt.snap = srv.counterSnapshot();
    return pt;
}

double
appCounter(const ServerPoint &pt)
{
    switch (pt.kind) {
      case app::AppKind::HeavyHitter:
        return pt.updates;
      case app::AppKind::ConntrackLb:
        return pt.opens;
      case app::AppKind::SpinRtt:
        return pt.edges;
    }
    return 0;
}

std::string
resultJson(const std::vector<SimPoint> &sims, bool simDeterministic,
           const std::vector<ServerPoint> &pts, bool serverSkipped)
{
    std::string out =
        "{\"skipped\":false,\"host\":" + harness::hostJson() +
        ",\"sim_deterministic\":" +
        (simDeterministic ? "true" : "false") + ",\"sim\":[";
    bool first = true;
    for (const auto &s : sims) {
        if (!first)
            out += ',';
        first = false;
        out += std::string("{\"workload\":") +
               stats::jsonString(workloads::toString(s.kind)) +
               ",\"completions\":" + std::to_string(s.res.completions) +
               ",\"throughput_mtps\":" +
               stats::jsonNumber(s.res.throughputMtps) +
               ",\"p99_us\":" + stats::jsonNumber(s.res.p99LatencyUs) +
               ",\"processed\":" + std::to_string(s.processed) +
               ",\"handled_ok\":" + std::to_string(s.handledOk) +
               ",\"app_counter\":" + std::to_string(s.counterA) + '}';
    }
    out += "],\"server_skipped\":";
    out += serverSkipped ? "true" : "false";
    out += ",\"points\":[";
    first = true;
    for (const auto &p : pts) {
        if (!first)
            out += ',';
        first = false;
        out += std::string("{\"app\":") +
               stats::jsonString(app::statName(p.kind)) +
               ",\"flows\":" + std::to_string(p.numFlows) +
               ",\"offered_per_sec\":" +
               stats::jsonNumber(p.ratePerSec) +
               ",\"payload_copies\":" +
               std::to_string(p.snap.payloadCopies) +
               ",\"updates\":" + stats::jsonNumber(p.updates) +
               ",\"promotions\":" + stats::jsonNumber(p.promotions) +
               ",\"hot_flows\":" + stats::jsonNumber(p.hotFlows) +
               ",\"opens\":" + stats::jsonNumber(p.opens) +
               ",\"closes\":" + stats::jsonNumber(p.closes) +
               ",\"conn_active\":" + stats::jsonNumber(p.active) +
               ",\"out_of_order\":" + stats::jsonNumber(p.outOfOrder) +
               ",\"edges\":" + stats::jsonNumber(p.edges) +
               ",\"rtt_samples\":" + stats::jsonNumber(p.rttSamples) +
               ",\"rtt_p50_ns\":" + stats::jsonNumber(p.rttP50Ns) +
               ",\"decode_errors\":" +
               stats::jsonNumber(p.decodeErrors) +
               ",\"report\":" + p.report.json() + '}';
    }
    out += "]}";
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    harness::printTableI();
    harness::printExperimentBanner(
        "Extension: stateful application suite (sim + server)",
        "heavy-hitter sketch, conntrack NAT/LB, and spin-bit RTT "
        "telemetry run as simulator\nworkloads and as UDP server "
        "handlers, swept across active-flow counts");

    const bool check = harness::argPresent(argc, argv, "--check");
    const bool quick = harness::argPresent(argc, argv, "--quick");
    const char *jsonPath = harness::argValue(argc, argv, "--json");
    const char *rateArg = harness::argValue(argc, argv, "--rate");
    const char *durArg = harness::argValue(argc, argv, "--duration");
    const char *p99Arg = harness::argValue(argc, argv, "--max-p99-us");

    // ---- Part 1: simulator ------------------------------------------
    std::vector<SimPoint> sims;
    for (const workloads::Kind k : workloads::appKinds())
        sims.push_back(runSim(k, quick));
    // Determinism probe: an identical re-run must agree exactly (the
    // same guarantee the fig10 goldens pin for the paper workloads).
    const SimPoint rerun = runSim(workloads::Kind::ConntrackLb, quick);
    const SimPoint &orig = sims[1];
    const bool simDeterministic =
        rerun.res.completions == orig.res.completions &&
        rerun.processed == orig.processed &&
        rerun.handledOk == orig.handledOk &&
        rerun.counterA == orig.counterA;

    stats::Table ts("simulator: stateful app workloads (HyperPlane)");
    ts.header({"workload", "completions", "Mtps", "p99 us", "handled",
               "app counter"});
    for (const auto &s : sims) {
        ts.row({workloads::toString(s.kind),
                std::to_string(s.res.completions),
                stats::fmt(s.res.throughputMtps, 3),
                stats::fmt(s.res.p99LatencyUs, 1),
                std::to_string(s.handledOk),
                std::to_string(s.counterA)});
    }
    ts.print();
    std::printf("determinism probe (conntrack re-run): %s\n",
                simDeterministic ? "exact" : "MISMATCH");

    // ---- Part 2: server flow sweep ----------------------------------
    const unsigned hw = std::thread::hardware_concurrency();
    std::vector<unsigned> flowCounts{1024, 8192, 65536, 262144};
    double rate = hw >= 4 ? 40e3 : 15e3;
    double seconds = 0.4;
    double maxP99Us = 50000.0;
    if (quick) {
        flowCounts = {1024, 4096};
        rate = 10e3;
        seconds = 0.3;
    }
    if (rateArg != nullptr)
        rate = std::atof(rateArg);
    if (durArg != nullptr)
        seconds = std::atof(durArg);
    if (p99Arg != nullptr)
        maxP99Us = std::atof(p99Arg);

    std::vector<ServerPoint> pts;
    bool serverSkipped = false;
    for (unsigned k = 0; k < app::numAppKinds && !serverSkipped; ++k) {
        for (const unsigned flows : flowCounts) {
            auto pt = runServerPoint(static_cast<app::AppKind>(k),
                                     flows, rate, seconds);
            if (!pt) {
                serverSkipped = true;
                break;
            }
            pts.push_back(std::move(*pt));
        }
    }
    if (serverSkipped) {
        pts.clear();
        std::puts("SKIP: UDP loopback sockets unavailable in this "
                  "sandbox; server app path not measured.");
    } else {
        stats::Table t("server: app handlers vs active flows");
        t.header({"app", "flows", "answered", "p50 us", "p99 us",
                  "p99.9 us", "app counter", "copies"});
        for (const auto &p : pts) {
            const auto &r = p.report;
            t.row({app::statName(p.kind), std::to_string(p.numFlows),
                   stats::fmt(r.answeredRatio * 100, 2) + "%",
                   stats::fmt(r.p50Us, 1), stats::fmt(r.p99Us, 1),
                   stats::fmt(r.p999Us, 1),
                   stats::fmt(appCounter(p), 0),
                   std::to_string(p.snap.payloadCopies)});
        }
        t.print();
        std::puts("Expected: answered stays ~100% and p99 bounded as "
                  "active flows scale 1k -> 256k;\nper-flow state stays "
                  "shard-local (zero payload copies, zero decode "
                  "errors).");
    }

    if (jsonPath != nullptr) {
        harness::writeTextFile(
            jsonPath,
            resultJson(sims, simDeterministic, pts, serverSkipped) +
                "\n");
    }

    if (!check)
        return 0;

    bool ok = true;
    for (const auto &s : sims) {
        if (s.res.completions == 0 || s.processed == 0) {
            std::printf("CHECK FAIL: sim %s processed nothing\n",
                        workloads::toString(s.kind));
            ok = false;
        }
        if (s.handledOk != s.processed) {
            std::printf("CHECK FAIL: sim %s rejected %llu synthesized "
                        "requests (must all decode)\n",
                        workloads::toString(s.kind),
                        static_cast<unsigned long long>(
                            s.processed - s.handledOk));
            ok = false;
        }
        if (s.counterA == 0) {
            std::printf("CHECK FAIL: sim %s app counter stayed zero\n",
                        workloads::toString(s.kind));
            ok = false;
        }
    }
    if (!simDeterministic) {
        std::puts("CHECK FAIL: stateful sim workload is not "
                  "deterministic across identical runs");
        ok = false;
    }
    for (const auto &p : pts) {
        const auto &r = p.report;
        if (r.answeredRatio < 0.999) {
            std::printf("CHECK FAIL: %s @ %u flows answered %.4f < "
                        "0.999\n",
                        app::statName(p.kind), p.numFlows,
                        r.answeredRatio);
            ok = false;
        }
        if (r.latencySamples == 0 || r.p99Us <= 0.0) {
            std::printf("CHECK FAIL: %s @ %u flows: empty latency "
                        "histogram\n",
                        app::statName(p.kind), p.numFlows);
            ok = false;
        } else if (r.p99Us > maxP99Us) {
            std::printf("CHECK FAIL: %s @ %u flows p99 %.1f us > "
                        "%.1f us\n",
                        app::statName(p.kind), p.numFlows, r.p99Us,
                        maxP99Us);
            ok = false;
        }
        // App handlers build responses over the request in place; any
        // payload memcpy would trip the same wire echo relies on.
        if (p.snap.payloadCopies != 0) {
            std::printf("CHECK FAIL: %s @ %u flows copied payloads "
                        "%llu times (expected 0)\n",
                        app::statName(p.kind), p.numFlows,
                        static_cast<unsigned long long>(
                            p.snap.payloadCopies));
            ok = false;
        }
        if (p.decodeErrors != 0) {
            std::printf("CHECK FAIL: %s @ %u flows: %.0f decode "
                        "errors from coherent loadgen traffic\n",
                        app::statName(p.kind), p.numFlows,
                        p.decodeErrors);
            ok = false;
        }
        // The app's own state machinery must have moved — but only
        // demand stateful signals (spin edges need several packets
        // per flow) where the traffic could plausibly produce them.
        const bool denseEnough =
            r.answered >= 2ull * p.numFlows;
        if (appCounter(p) <= 0.0 &&
            (p.kind != app::AppKind::SpinRtt || denseEnough)) {
            std::printf("CHECK FAIL: %s @ %u flows: app counter "
                        "stayed zero\n",
                        app::statName(p.kind), p.numFlows);
            ok = false;
        }
    }
    if (!ok)
        return 1;
    std::puts("CHECK OK");
    return 0;
}
