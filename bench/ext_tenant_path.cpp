/**
 * @file
 * Extension benchmark: the tenant-side receive path (Figure 2 steps
 * 2d-3).  End-to-end latency (producer enqueue -> tenant holds the
 * item) for spinning vs UMWAIT tenants, on top of each data plane.
 */

#include <cstdio>

#include "dp/sdp_system.hh"
#include "harness/experiment.hh"
#include "harness/parallel.hh"
#include "harness/runner.hh"
#include "stats/table.hh"

using namespace hyperplane;

int
main(int argc, char **argv)
{
    harness::printTableI();
    harness::printExperimentBanner(
        "Extension: tenant path",
        "end-to-end latency incl. the tenant hop (packet "
        "encapsulation, 256 queues, zero load)");
    const unsigned jobs = harness::jobsFromArgs(argc, argv);

    const std::vector<dp::PlaneKind> planes{dp::PlaneKind::Spinning,
                                            dp::PlaneKind::HyperPlane};
    const std::vector<dp::TenantNotify> notifies{
        dp::TenantNotify::Spin, dp::TenantNotify::Umwait};
    std::vector<dp::SdpConfig> grid;
    for (auto plane : planes) {
        for (auto notify : notifies) {
            dp::SdpConfig cfg;
            cfg.plane = plane;
            cfg.numCores = 1;
            cfg.numQueues = 256;
            cfg.workload = workloads::Kind::PacketEncapsulation;
            cfg.shape = traffic::Shape::SQ;
            cfg.jitter = dp::ServiceJitter::None;
            cfg.modelTenants = true;
            cfg.tenant.notify = notify;
            cfg.seed = 141;
            grid.push_back(harness::zeroLoadConfig(cfg, 600));
        }
    }
    const auto results = harness::runConfigs(grid, jobs);

    stats::Table t("Zero-load latency, data-plane vs end-to-end (us)");
    t.header({"plane / tenant notify", "dp avg", "e2e avg", "e2e p99"});
    std::size_t idx = 0;
    for (auto plane : planes) {
        for (auto notify : notifies) {
            const auto &r = results[idx++];
            t.row({std::string(dp::toString(plane)) + " / " +
                       dp::toString(notify),
                   stats::fmt(r.avgLatencyUs, 2),
                   stats::fmt(r.e2eAvgLatencyUs, 2),
                   stats::fmt(r.e2eP99LatencyUs, 2)});
        }
    }
    t.print();

    std::puts("Expected: the tenant hop adds well under 0.1 us (its "
              "queue count is 1, so UMWAIT or a\ntight spin both "
              "react immediately) — the notification bottleneck is "
              "the SDP side, which\nis the paper's point.");
    return 0;
}
