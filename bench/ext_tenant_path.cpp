/**
 * @file
 * Extension benchmark: multi-tenant SLO isolation under an adversarial
 * neighbor.
 *
 * Two tenants share one real UDP server: a well-behaved victim on its
 * own queue group (higher priority, generous rate limit) and an
 * aggressor that offers several times its admitted rate while its
 * "driver" storms the doorbells with zero-item rings.  The experiment
 * runs the victim alone first (aggressor-idle baseline) and then both
 * together, and measures whether the overload-control stack — per-tenant
 * token-bucket admission, priority-ranked watermark shedding, typed
 * rejects, and watchdog doorbell-storm containment — actually keeps the
 * victim's tail latency flat while the aggressor's excess is shed, not
 * lost.
 *
 * Flags:
 *   --quick          shorter run for CI smoke
 *   --check          exit nonzero if the isolation gates fail
 *   --duration S     send-phase seconds per run
 *   --json FILE      machine-readable export (BENCH_tenant.json in CI)
 *
 * When the sandbox forbids UDP sockets the run prints a skip annotation
 * and exits 0 (with a {"skipped":true} JSON if requested).
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "harness/experiment.hh"
#include "harness/export.hh"
#include "server/loadgen.hh"
#include "server/server.hh"
#include "stats/json.hh"
#include "stats/table.hh"

using namespace hyperplane;

namespace {

/** Victim p99 floor for the isolation gate: on a short CI run the
 *  baseline can be a handful of microseconds, and 2x a tiny number is
 *  not a meaningful SLO. */
constexpr double victimP99FloorUs = 150.0;

/**
 * Floor on boxes with fewer than four CPUs.  There the victim's tail
 * is dominated by the OS timeslicing it against the aggressor's *load
 * generator* threads — contention in this process, not in the server —
 * so the gate allows one scheduling quantum (~1 ms) of noise on top of
 * the baseline before calling isolation broken.
 */
constexpr double victimP99FloorConstrainedUs = 1200.0;

struct Scenario
{
    double victimRate = 6e3;
    double aggressorRate = 24e3;     ///< offered; >= 4x its admitted rate
    double aggressorLimit = 6e3;     ///< token-bucket admitted rate
    double seconds = 1.0;
    unsigned stormRingsPerBatch = 32;
    std::uint64_t doorbellRateCap = 25;
};

struct ServerSnapshot
{
    std::uint64_t stormDemotions = 0;
    std::uint64_t promotions = 0;
    std::uint64_t shedRateLimited = 0;
    std::uint64_t shedWatermark = 0;
    std::uint64_t shedQueueFull = 0;
    std::uint64_t mutedRings = 0;
    std::uint64_t victimAdmitted = 0;
    std::uint64_t victimServed = 0;
    std::uint64_t aggrAdmitted = 0;
    std::uint64_t aggrServed = 0;
    std::uint64_t aggrRateLimited = 0;
    std::uint64_t aggrDemotions = 0;
};

struct RunResult
{
    server::LoadGenReport victim;
    std::optional<server::LoadGenReport> aggressor;
    ServerSnapshot srv;
};

/** Two tenants on disjoint queue groups: the victim (higher priority,
 *  lower queue ids — the strict-priority arbiter grants the lowest
 *  ready QID) and the aggressor. */
server::ServerConfig
tenantServerConfig(const Scenario &s, bool withStorm)
{
    // Kept deliberately small: the bench must behave on a 1-2 CPU CI
    // box, where extra threads just add scheduler noise to the very
    // tail this experiment gates on.
    server::ServerConfig sc;
    sc.rxThreads = 1;
    sc.txThreads = 1;
    sc.workers = 2;
    sc.numQueues = 8;
    sc.policy = core::ServicePolicy::WeightedRoundRobin;

    dp::TenantSpec victim;
    victim.name = "victim";
    victim.weight = 8;
    victim.priority = 1;
    victim.rateLimitPerSec = s.victimRate * 8.0; // never the limiter
    victim.queueFirst = 0;
    victim.queueCount = 4;

    dp::TenantSpec aggressor;
    aggressor.name = "aggressor";
    aggressor.weight = 1;
    aggressor.priority = 0;
    aggressor.rateLimitPerSec = s.aggressorLimit;
    aggressor.queueFirst = 4;
    aggressor.queueCount = 4;

    sc.tenants = {victim, aggressor};
    sc.shedLowWatermark = 512;
    sc.shedHighWatermark = 4096;

    if (withStorm) {
        sc.fault.doorbellRateCap = s.doorbellRateCap;
        sc.fault.stormTenant = 1;
        sc.fault.stormRingsPerBatch = s.stormRingsPerBatch;
    }
    return sc;
}

server::LoadGenConfig
tenantLoadConfig(std::uint16_t port, unsigned tenantId, double rate,
                 double seconds)
{
    server::LoadGenConfig lc;
    lc.serverPort = port;
    lc.ratePerSec = rate;
    lc.durationSec = seconds;
    lc.numFlows = 64;
    lc.tenantId = tenantId;
    lc.numTenants = 2;
    lc.seed = 71 + tenantId;
    return lc;
}

ServerSnapshot
snapshot(const server::UdpServer &srv)
{
    ServerSnapshot out;
    const auto &c = srv.counters();
    out.stormDemotions = c.stormDemotions.load();
    out.promotions = c.promotions.load();
    out.shedRateLimited = c.shedRateLimited.load();
    out.shedWatermark = c.shedWatermark.load();
    out.shedQueueFull = c.shedQueueFull.load();
    out.mutedRings = srv.device().mutedRings();
    const auto &tt = srv.tenantTable();
    out.victimAdmitted = tt.counters(0).admitted.load();
    out.victimServed = tt.counters(0).served.load();
    out.aggrAdmitted = tt.counters(1).admitted.load();
    out.aggrServed = tt.counters(1).served.load();
    out.aggrRateLimited = tt.counters(1).rateLimited.load();
    out.aggrDemotions = tt.counters(1).demotions.load();
    return out;
}

/** One server run; victim always, aggressor optionally (concurrent). */
std::optional<RunResult>
runScenario(const Scenario &s, bool withAggressor)
{
    server::UdpServer srv(tenantServerConfig(s, withAggressor));
    if (!srv.start())
        return std::nullopt;

    RunResult out;
    std::optional<server::LoadGenReport> victimRep;
    std::thread victimThread([&] {
        victimRep = server::UdpLoadGen(
                        tenantLoadConfig(srv.port(), 0, s.victimRate,
                                         s.seconds))
                        .run();
    });
    if (withAggressor) {
        out.aggressor =
            server::UdpLoadGen(tenantLoadConfig(srv.port(), 1,
                                                s.aggressorRate,
                                                s.seconds))
                .run();
    }
    victimThread.join();
    out.srv = snapshot(srv);
    srv.stop();
    if (!victimRep || (withAggressor && !out.aggressor))
        return std::nullopt;
    out.victim = std::move(*victimRep);
    return out;
}

std::string
resultsJson(const RunResult &base, const RunResult &attack)
{
    const auto num = [](std::uint64_t v) {
        return std::to_string(v);
    };
    std::string out = "{\"skipped\":false";
    out += ",\"host\":" + harness::hostJson();
    out += ",\"baseline\":{\"victim\":" + base.victim.json() + "}";
    out += ",\"attack\":{\"victim\":" + attack.victim.json();
    out += ",\"aggressor\":" + attack.aggressor->json();
    const auto &sv = attack.srv;
    out += ",\"server\":{\"storm_demotions\":" + num(sv.stormDemotions);
    out += ",\"promotions\":" + num(sv.promotions);
    out += ",\"shed_rate_limited\":" + num(sv.shedRateLimited);
    out += ",\"shed_watermark\":" + num(sv.shedWatermark);
    out += ",\"shed_queue_full\":" + num(sv.shedQueueFull);
    out += ",\"muted_rings\":" + num(sv.mutedRings);
    out += ",\"tenant\":{\"victim\":{\"admitted\":" +
           num(sv.victimAdmitted) + ",\"served\":" +
           num(sv.victimServed) + "}";
    out += ",\"aggressor\":{\"admitted\":" + num(sv.aggrAdmitted) +
           ",\"served\":" + num(sv.aggrServed) +
           ",\"rate_limited\":" + num(sv.aggrRateLimited) +
           ",\"demotions\":" + num(sv.aggrDemotions) + "}}}}}";
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    harness::printTableI();
    harness::printExperimentBanner(
        "Extension: multi-tenant SLO isolation (adversarial neighbor)",
        "real loopback server, two tenants on disjoint queue groups: "
        "victim at fixed load vs an\naggressor offering >= 4x its "
        "admitted rate plus doorbell storms; admission + shedding +\n"
        "storm containment must hold the victim's p99");

    const bool check = harness::argPresent(argc, argv, "--check");
    const bool quick = harness::argPresent(argc, argv, "--quick");
    const char *jsonPath = harness::argValue(argc, argv, "--json");
    const char *durArg = harness::argValue(argc, argv, "--duration");
    const char *floorArg =
        harness::argValue(argc, argv, "--p99-floor-us");

    const unsigned ncpu = std::thread::hardware_concurrency();
    Scenario s;
    if (quick) {
        s.victimRate = 3e3;
        s.aggressorRate = 10e3;
        s.aggressorLimit = 2.5e3;
        s.seconds = 0.4;
    }
    if (ncpu != 0 && ncpu < 4) {
        // Constrained box: halve the offered load so the server and
        // both load generators fit without drowning the CPU — the
        // isolation question is the same, just at lower absolute rate.
        s.victimRate /= 2;
        s.aggressorRate /= 2;
        s.aggressorLimit /= 2;
    }
    if (durArg != nullptr)
        s.seconds = std::atof(durArg);

    // Best-of-2 per condition: scheduler/background noise only ever
    // inflates the tail, so the lower-p99 repeat is the better estimate
    // of each condition's true latency.
    const auto bestOf = [&s](bool withAggressor) {
        auto a = runScenario(s, withAggressor);
        if (!a)
            return a;
        auto b = runScenario(s, withAggressor);
        if (b && b->victim.p99Us < a->victim.p99Us)
            return b;
        return a;
    };
    auto base = bestOf(false);
    auto attack = base ? bestOf(true) : std::nullopt;
    if (!base || !attack) {
        std::puts("SKIP: UDP loopback sockets unavailable in this "
                  "sandbox; tenant isolation not measured.");
        if (jsonPath != nullptr)
            harness::writeTextFile(jsonPath, "{\"skipped\":true}\n");
        return 0;
    }

    // Percentiles come from each report's *per-tenant* section (the
    // one matching the tenant that generator targeted), exercising the
    // classification path the JSON export carries.
    stats::Table t("Victim vs aggressor, baseline and under attack");
    t.header({"run", "tenant", "offered/s", "answered", "shed", "lost",
              "p50 us", "p99 us", "p99.9 us"});
    const auto row = [&t](const char *run, const char *who,
                          unsigned tenantId,
                          const server::LoadGenReport &r) {
        const auto &ts = r.tenants.at(tenantId);
        t.row({run, who, stats::fmt(r.offeredPerSec, 0),
               stats::fmt(r.answeredRatio * 100, 2) + "%",
               std::to_string(ts.shed), std::to_string(r.lost),
               stats::fmt(ts.p50Us, 1), stats::fmt(ts.p99Us, 1),
               stats::fmt(ts.p999Us, 1)});
    };
    row("baseline", "victim", 0, base->victim);
    row("attack", "victim", 0, attack->victim);
    row("attack", "aggressor", 1, *attack->aggressor);
    t.print();

    const auto &sv = attack->srv;
    std::printf("server: storm demotions %llu, promotions %llu, muted "
                "rings %llu\n",
                static_cast<unsigned long long>(sv.stormDemotions),
                static_cast<unsigned long long>(sv.promotions),
                static_cast<unsigned long long>(sv.mutedRings));
    std::printf("sheds: rate-limited %llu, watermark %llu, queue-full "
                "%llu; aggressor admitted %llu / served %llu\n",
                static_cast<unsigned long long>(sv.shedRateLimited),
                static_cast<unsigned long long>(sv.shedWatermark),
                static_cast<unsigned long long>(sv.shedQueueFull),
                static_cast<unsigned long long>(sv.aggrAdmitted),
                static_cast<unsigned long long>(sv.aggrServed));
    std::puts("Expected: the victim's attack p99 stays within 2x its "
              "aggressor-idle baseline while the\naggressor's excess "
              "is answered with typed rejects (shed, not lost) and its "
              "storming queues\nare demoted to the polled fallback.");

    if (jsonPath != nullptr)
        harness::writeTextFile(jsonPath, resultsJson(*base, *attack) +
                                             "\n");

    if (check) {
        bool ok = true;
        double floorUs = ncpu >= 4 ? victimP99FloorUs
                                   : victimP99FloorConstrainedUs;
        if (floorArg != nullptr)
            floorUs = std::atof(floorArg);
        const double p99Budget =
            2.0 * std::max(base->victim.p99Us, floorUs);
        if (attack->victim.p99Us > p99Budget) {
            std::printf("CHECK FAIL: victim p99 %.1f us > budget %.1f "
                        "us (2x max(baseline %.1f, floor %.1f))\n",
                        attack->victim.p99Us, p99Budget,
                        base->victim.p99Us, floorUs);
            ok = false;
        }
        if (attack->victim.answeredRatio < 0.999) {
            std::printf("CHECK FAIL: victim answered %.4f < 0.999\n",
                        attack->victim.answeredRatio);
            ok = false;
        }
        if (attack->victim.shed != 0) {
            std::printf("CHECK FAIL: victim shed %llu times (its rate "
                        "is far under its limit)\n",
                        static_cast<unsigned long long>(
                            attack->victim.shed));
            ok = false;
        }
        if (attack->aggressor->shed == 0) {
            std::puts("CHECK FAIL: aggressor excess was never shed");
            ok = false;
        }
        const double aggrLost =
            attack->aggressor->sent
                ? static_cast<double>(attack->aggressor->lost) /
                      static_cast<double>(attack->aggressor->sent)
                : 0.0;
        if (aggrLost > 0.05) {
            std::printf("CHECK FAIL: aggressor lost ratio %.4f > 0.05 "
                        "(rejects must be answered, not dropped)\n",
                        aggrLost);
            ok = false;
        }
        if (sv.stormDemotions == 0) {
            std::puts("CHECK FAIL: doorbell storm never triggered a "
                      "demotion");
            ok = false;
        }
        if (sv.victimAdmitted == 0 || sv.aggrAdmitted == 0 ||
            sv.aggrRateLimited == 0) {
            std::puts("CHECK FAIL: per-tenant counters not recorded");
            ok = false;
        }
        // The loadgen's per-tenant sections must agree with its global
        // accounting: each generator targets exactly one tenant, so
        // that tenant's section carries every answer and nothing leaks
        // into the other tenant's section.
        const auto sectionsConsistent =
            [](const server::LoadGenReport &r, unsigned tenantId) {
                if (r.tenants.size() != 2)
                    return false;
                const auto &own = r.tenants[tenantId];
                const auto &other = r.tenants[1 - tenantId];
                return own.answered == r.answered &&
                       own.shed == r.shed && other.answered == 0;
            };
        if (!sectionsConsistent(attack->victim, 0) ||
            !sectionsConsistent(*attack->aggressor, 1)) {
            std::puts("CHECK FAIL: loadgen per-tenant report sections "
                      "disagree with global accounting");
            ok = false;
        }
        if (!ok)
            return 1;
        std::puts("CHECK OK");
    }
    return 0;
}
