/**
 * @file
 * Extension benchmark: NUMA-style work stealing across partitioned
 * ready sets — the mechanism Section III-B defers to future work
 * ("data plane cores fetch ready QIDs from remote ready sets if the
 * local ready set is empty").
 *
 * Four cores, scale-out (one ready set per core), PC traffic with
 * heavy static imbalance: stealing recovers most of the scale-up
 * organization's tail-latency advantage while keeping doorbells
 * NUMA-local.
 */

#include <cstdio>

#include "dp/sdp_system.hh"
#include "harness/experiment.hh"
#include "harness/export.hh"
#include "harness/parallel.hh"
#include "harness/runner.hh"
#include "stats/table.hh"

using namespace hyperplane;

int
main(int argc, char **argv)
{
    harness::printTableI();
    harness::printExperimentBanner(
        "Extension: work stealing",
        "scale-out HyperPlane +/- remote ready-set stealing "
        "(packet encapsulation, 4 cores, 400 queues, PC, 30% "
        "imbalance)");
    const unsigned jobs = harness::jobsFromArgs(argc, argv);

    struct Variant
    {
        const char *name;
        dp::QueueOrg org;
        bool stealing;
    };
    const Variant variants[] = {
        {"scale-out", dp::QueueOrg::ScaleOut, false},
        {"scale-out + stealing", dp::QueueOrg::ScaleOut, true},
        {"scale-up (reference)", dp::QueueOrg::ScaleUpAll, false},
    };

    const std::vector<double> loads{0.3, 0.5, 0.7, 0.9};
    std::vector<harness::SweepSeries> series;
    for (const auto &v : variants) {
        dp::SdpConfig cfg;
        cfg.plane = dp::PlaneKind::HyperPlane;
        cfg.numCores = 4;
        cfg.numQueues = 400;
        cfg.workload = workloads::Kind::PacketEncapsulation;
        cfg.shape = traffic::Shape::PC;
        cfg.org = v.org;
        cfg.workStealing = v.stealing;
        cfg.imbalance = 0.30;
        cfg.seed = 131;
        cfg.warmupUs = 1500.0;
        cfg.measureUs = 8000.0;
        series.push_back({v.name, cfg});
    }
    const auto results = harness::runLoadSweeps(series, loads, jobs);

    stats::Table t("p99 latency vs load (us)");
    std::vector<std::string> header{"config"};
    for (double l : loads)
        header.push_back(stats::fmt(l * 100, 0) + "%");
    header.push_back("stolen@90%");
    t.header(std::move(header));

    std::vector<harness::NamedSweep> sweeps;
    for (const auto &sw : results) {
        std::vector<std::string> row{sw.name};
        for (const auto &pt : sw.points)
            row.push_back(stats::fmt(pt.results.p99LatencyUs, 1));
        row.push_back(
            std::to_string(sw.points.back().results.stolenGrants));
        t.row(std::move(row));
        std::printf("  (%s saturates at %.2f Mtps)\n", sw.name.c_str(),
                    sw.capacityPerSec / 1e6);
        sweeps.push_back({sw.name, sw.points});
    }
    t.print();

    if (const char *path = harness::argValue(argc, argv, "--json"))
        harness::writeTextFile(path, harness::loadSweepJson(sweeps));

    std::puts("Expected: imbalance inflates scale-out tails at high "
              "load; stealing pulls them back toward\nthe scale-up "
              "reference at the cost of remote ready-set probes.");
    return 0;
}
