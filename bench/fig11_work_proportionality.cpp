/**
 * @file
 * Figure 11 reproduction: work proportionality (Section V-D).
 *
 *  (a) IPC of a packet-encapsulation data-plane core vs load, split
 *      into useful work and useless spinning;
 *  (b) IPC of an SMT co-runner (matrix-multiply-class application)
 *      sharing the core with the data plane.
 */

#include <cstdio>

#include "dp/sdp_system.hh"
#include "harness/experiment.hh"
#include "harness/export.hh"
#include "harness/parallel.hh"
#include "harness/runner.hh"
#include "stats/table.hh"

using namespace hyperplane;

int
main(int argc, char **argv)
{
    harness::printTableI();
    harness::printExperimentBanner(
        "Figure 11",
        "IPC breakdown and SMT co-runner IPC vs data-plane load");
    const unsigned jobs = harness::jobsFromArgs(argc, argv);

    dp::SdpConfig cfg;
    cfg.numCores = 1;
    cfg.numQueues = 100;
    cfg.workload = workloads::Kind::PacketEncapsulation;
    cfg.shape = traffic::Shape::PC;
    cfg.warmupUs = 1000.0;
    cfg.measureUs = 8000.0;
    cfg.seed = 51;

    const std::vector<double> loads{0.01, 0.2, 0.4, 0.6, 0.8, 1.0};

    stats::Table ta("Fig 11(a): core IPC vs load");
    ta.header({"load", "spin total", "spin useful", "spin useless",
               "hp total"});
    stats::Table tb("Fig 11(b): SMT co-runner IPC vs load");
    tb.header({"load", "with spinning", "with hyperplane"});

    auto spinCfg = cfg;
    spinCfg.plane = dp::PlaneKind::Spinning;
    auto hpCfg = cfg;
    hpCfg.plane = dp::PlaneKind::HyperPlane;
    const auto sweeps = harness::runLoadSweeps(
        {{"spinning", spinCfg}, {"hyperplane", hpCfg}}, loads, jobs);
    const auto &spinPts = sweeps[0].points;
    const auto &hpPts = sweeps[1].points;

    for (std::size_t i = 0; i < loads.size(); ++i) {
        const auto &spin = spinPts[i].results;
        const auto &hp = hpPts[i].results;
        const double l = loads[i];
        ta.row({stats::fmt(l * 100, 0) + "%", stats::fmt(spin.ipc, 2),
                stats::fmt(spin.usefulIpc, 2),
                stats::fmt(spin.uselessIpc, 2), stats::fmt(hp.ipc, 2)});
        tb.row({stats::fmt(l * 100, 0) + "%",
                stats::fmt(spin.coRunnerIpc, 2),
                stats::fmt(hp.coRunnerIpc, 2)});
    }
    ta.print();
    tb.print();

    if (const char *path = harness::argValue(argc, argv, "--json")) {
        harness::writeTextFile(
            path, harness::loadSweepJson(
                      {{"spinning", spinPts}, {"hyperplane", hpPts}}));
    }

    std::puts("Expected shape: spinning IPC is highest at zero load "
              "(all useless) and decreases with load;\nHyperPlane IPC "
              "grows ~linearly with load.  The co-runner IPC rises "
              "with load under spinning\n(spinning is the worst "
              "antagonist) and falls with load under HyperPlane.");
    return 0;
}
