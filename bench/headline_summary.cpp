/**
 * @file
 * The paper's headline numbers: "HyperPlane improves peak throughput by
 * 4.1x and tail latency by 16.4x, on average, in comparison to a
 * state-of-the-art spin-polling-based SDP, across a varying number of
 * I/O queues (up to 1000)."
 *
 * This binary aggregates a representative slice of the Figure 8 and
 * Figure 9 grids into the same two averages.
 */

#include <cstdio>

#include "dp/sdp_system.hh"
#include "harness/experiment.hh"
#include "harness/parallel.hh"
#include "harness/runner.hh"
#include "stats/table.hh"

using namespace hyperplane;

int
main(int argc, char **argv)
{
    harness::printTableI();
    harness::printExperimentBanner(
        "Headline", "average peak-throughput and tail-latency "
                    "improvement of HyperPlane over spinning");
    const unsigned jobs = harness::jobsFromArgs(argc, argv);

    const std::vector<workloads::Kind> kinds = {
        workloads::Kind::PacketEncapsulation,
        workloads::Kind::PacketSteering,
        workloads::Kind::RequestDispatching,
    };
    const std::vector<unsigned> queueCounts{250, 1000};

    std::vector<dp::SdpConfig> throughputGrid;
    for (auto kind : kinds) {
        for (auto shape :
             {traffic::Shape::SQ, traffic::Shape::NC,
              traffic::Shape::PC, traffic::Shape::FB}) {
            for (unsigned q : queueCounts) {
                dp::SdpConfig cfg;
                cfg.numCores = 1;
                cfg.numQueues = q;
                cfg.workload = kind;
                cfg.shape = shape;
                cfg.warmupUs = 800.0;
                cfg.measureUs = 4000.0;
                cfg.seed = 81;
                cfg.plane = dp::PlaneKind::Spinning;
                throughputGrid.push_back(cfg);
                cfg.plane = dp::PlaneKind::HyperPlane;
                throughputGrid.push_back(cfg);
            }
        }
    }
    const auto throughputResults =
        harness::runSaturations(throughputGrid, jobs);
    double sumThroughputRatio = 0.0;
    unsigned nThroughput = 0;
    for (std::size_t i = 0; i < throughputResults.size(); i += 2) {
        sumThroughputRatio += throughputResults[i + 1].throughputMtps /
                              throughputResults[i].throughputMtps;
        ++nThroughput;
    }

    std::vector<dp::SdpConfig> tailGrid;
    for (auto kind : workloads::allKinds()) {
        for (unsigned q : {64u, 250u, 1000u}) {
            dp::SdpConfig cfg;
            cfg.numCores = 1;
            cfg.numQueues = q;
            cfg.workload = kind;
            cfg.shape = traffic::Shape::SQ;
            cfg.jitter = dp::ServiceJitter::None;
            cfg.seed = 82;
            cfg = harness::zeroLoadConfig(cfg, 600);
            cfg.plane = dp::PlaneKind::Spinning;
            tailGrid.push_back(cfg);
            cfg.plane = dp::PlaneKind::HyperPlane;
            tailGrid.push_back(cfg);
        }
    }
    const auto tailResults = harness::runConfigs(tailGrid, jobs);
    double sumTailRatio = 0.0;
    unsigned nTail = 0;
    for (std::size_t i = 0; i < tailResults.size(); i += 2) {
        sumTailRatio += tailResults[i].p99LatencyUs /
                        tailResults[i + 1].p99LatencyUs;
        ++nTail;
    }

    stats::Table t("Headline comparison (HyperPlane vs spinning)");
    t.header({"metric", "measured", "paper"});
    t.row({"peak throughput improvement",
           stats::fmtRatio(sumThroughputRatio / nThroughput), "4.1x"});
    t.row({"p99 tail latency improvement",
           stats::fmtRatio(sumTailRatio / nTail), "16.4x"});
    t.print();
    return 0;
}
