/**
 * @file
 * Extension benchmark: fault injection and recovery.
 *
 * HyperPlane replaces polling with edge-triggered coherence snoops, so a
 * lost doorbell write is not "one late packet" — it strands the queue
 * until an unrelated arrival happens to ring the same doorbell.  This
 * experiment injects lost doorbells at increasing rates and compares an
 * unprotected plane against one running the recovery machinery (periodic
 * watchdog QWAIT-VERIFY sweep + graceful degradation to software
 * polling): tail latency degrades gracefully toward the watchdog period
 * instead of diverging, and the lost-notification ledger stays balanced.
 */

#include <cstdio>

#include "harness/experiment.hh"
#include "harness/parallel.hh"
#include "harness/runner.hh"
#include "stats/table.hh"

using namespace hyperplane;

int
main(int argc, char **argv)
{
    harness::printTableI();
    harness::printExperimentBanner(
        "Extension: fault injection + recovery",
        "lost-doorbell rate vs tail latency, with and without the "
        "watchdog/degradation machinery\n(packet encapsulation, 2 "
        "cores, 48 queues, 0.2 Mtps, 25 us watchdog period)");
    const unsigned jobs = harness::jobsFromArgs(argc, argv);

    dp::SdpConfig cfg;
    cfg.plane = dp::PlaneKind::HyperPlane;
    cfg.numCores = 2;
    cfg.numQueues = 48;
    cfg.workload = workloads::Kind::PacketEncapsulation;
    cfg.shape = traffic::Shape::FB;
    cfg.offeredRatePerSec = 2e5;
    cfg.warmupUs = 1000.0;
    cfg.measureUs = 20000.0;
    cfg.seed = 97;
    cfg.recovery.watchdogPeriodUs = 25.0;

    const std::vector<double> rates{0.0, 0.01, 0.02, 0.05, 0.10};

    struct Variant
    {
        const char *name;
        bool recovery;
    };
    const Variant variants[] = {
        {"no recovery", false},
        {"watchdog + degradation", true},
    };

    stats::Table t("p99 latency (us) vs lost-doorbell rate");
    std::vector<std::string> header{"config"};
    for (double r : rates)
        header.push_back(stats::fmt(r * 100, 0) + "%");
    header.push_back("stuck@10%");
    t.header(std::move(header));

    std::vector<harness::FaultPoint> recovered;
    for (const auto &v : variants) {
        const auto sweep =
            harness::runFaultSweep(cfg, rates, v.recovery, jobs);
        std::vector<std::string> row{v.name};
        for (const auto &pt : sweep)
            row.push_back(stats::fmt(pt.results.p99LatencyUs, 1));
        row.push_back(
            std::to_string(sweep.back().results.stuckQueues));
        t.row(std::move(row));
        if (v.recovery)
            recovered = sweep;
    }
    t.print();

    stats::Table ledger("Recovery accounting (with recovery)");
    ledger.header({"drop rate", "lost", "watchdog", "self-heal",
                   "open", "sweeps", "p99.9 (us)"});
    for (const auto &pt : recovered) {
        const auto &r = pt.results;
        ledger.row({stats::fmt(pt.dropRate * 100, 0) + "%",
                    std::to_string(r.lostInjected),
                    std::to_string(r.watchdogRecoveries),
                    std::to_string(r.selfRecoveries),
                    std::to_string(r.lostOutstanding),
                    std::to_string(r.watchdogSweeps),
                    stats::fmt(r.p999LatencyUs, 1)});
    }
    ledger.print();

    std::puts("Expected: without recovery the tail diverges and queues "
              "strand as drops accumulate; with the\nwatchdog the p99 "
              "stays bounded near the sweep period and every lost "
              "notification is recovered\n(lost == watchdog + "
              "self-heal, none open).");
    return 0;
}
