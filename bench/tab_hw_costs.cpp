/**
 * @file
 * Section IV-C reproduction: area, power, and timing of the HyperPlane
 * hardware structures, from the analytic cost model calibrated to the
 * paper's RTL/CACTI/McPAT results, plus the Brent-Kung network facts
 * behind the ready-set latency.
 */

#include <cstdio>

#include "core/hw_cost.hh"
#include "core/ppa.hh"
#include "harness/experiment.hh"
#include "stats/table.hh"

using namespace hyperplane;

int
main()
{
    harness::printTableI();
    harness::printExperimentBanner(
        "Section IV-C", "hardware cost of the monitoring and ready "
                        "sets (1024 entries, 16 cores, 32 nm)");

    core::HwCostModel m;

    stats::Table t("Hardware costs (paper values in parentheses)");
    t.header({"metric", "model", "paper"});
    t.row({"ready set area (mm^2)",
           stats::fmt(m.readySetAreaMm2(), 3), "0.13"});
    t.row({"monitoring set area (mm^2)",
           stats::fmt(m.monitoringSetAreaMm2(), 3), "0.21"});
    t.row({"area overhead vs 16 cores",
           stats::fmt(100 * m.areaOverheadFraction(), 2) + "%",
           "0.26%"});
    t.row({"ready set power (of one core)",
           stats::fmt(100 * m.readySetPowerFraction(), 1) + "%",
           "2.1%"});
    t.row({"monitoring set power (of one core)",
           stats::fmt(100 * m.monitoringSetPowerFraction(), 1) + "%",
           "4.1%"});
    t.row({"ready set latency (ns)",
           stats::fmt(m.readySetLatencyNs(), 2), "12.25"});
    t.row({"monitoring lookup (cycles)",
           std::to_string(m.monitoringLookupCycles()), "<= 5"});
    t.row({"QWAIT end-to-end (cycles)",
           std::to_string(m.qwaitLatencyCycles()), "50"});
    t.print();

    stats::Table n("Brent-Kung prefix network (ready-set arbiter)");
    n.header({"bits", "prefix ops", "levels", "PPA delay (ns)",
              "ripple delay (ns)"});
    core::BrentKungPpa bk;
    core::RipplePpa rip;
    for (unsigned bits : {64u, 256u, 1024u, 4096u}) {
        const auto s = core::BrentKungPpa::networkStats(bits);
        n.row({std::to_string(bits), std::to_string(s.prefixOps),
               std::to_string(s.levels), stats::fmt(bk.delayNs(bits), 2),
               stats::fmt(rip.delayNs(bits), 2)});
    }
    n.print();
    return 0;
}
