/**
 * @file
 * Extension benchmark: cost of the observability subsystem.
 *
 * Three runs of the same saturated configuration — tracing disabled,
 * tracing enabled, tracing + registry sampling — compare simulated
 * throughput and host wall time.  The disabled run must match the
 * throughput of a build with HYPERPLANE_TRACE=0 (every stamp site is a
 * single null-pointer test); the enabled runs show the bounded cost of
 * the ring buffer and the sampler.
 *
 * A final zero-load traced run validates the latency breakdown: the
 * four stage means must sum to the end-to-end mean exactly (the stage
 * boundaries telescope per episode).
 *
 * This bench intentionally does NOT take --jobs: it measures host wall
 * time per variant, and concurrent runs would perturb each other's
 * timings.  It is the one deliberate exception to the parallel-runner
 * convention (see docs/PERFORMANCE.md).
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "dp/sdp_system.hh"
#include "harness/experiment.hh"
#include "harness/export.hh"
#include "harness/runner.hh"
#include "stats/json.hh"
#include "stats/table.hh"

using namespace hyperplane;

namespace {

dp::SdpConfig
loadedCfg()
{
    dp::SdpConfig cfg;
    cfg.plane = dp::PlaneKind::HyperPlane;
    cfg.numCores = 1;
    cfg.numQueues = 100;
    cfg.workload = workloads::Kind::PacketEncapsulation;
    cfg.shape = traffic::Shape::FB;
    cfg.offeredRatePerSec = 2e6; // near saturation; identical per run
    cfg.warmupUs = 800.0;
    cfg.measureUs = 6000.0;
    cfg.seed = 171;
    return cfg;
}

struct Variant
{
    const char *name;
    dp::SdpResults results;
    double hostMs;
};

Variant
runVariant(const char *name, const dp::SdpConfig &cfg)
{
    const auto t0 = std::chrono::steady_clock::now();
    const auto r = dp::runSdp(cfg);
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    return {name, r, ms};
}

} // namespace

int
main(int argc, char **argv)
{
    harness::printTableI();
    harness::printExperimentBanner(
        "Extension: trace overhead",
        "observability cost at saturation + breakdown validation");

    std::printf("trace stamp sites compiled %s\n",
                trace::kCompiledIn ? "in (HYPERPLANE_TRACE=1)"
                                   : "out (HYPERPLANE_TRACE=0)");

    auto base = loadedCfg();
    auto traced = base;
    traced.trace.enable = true;
    auto sampled = traced;
    sampled.trace.sampleEveryUs = 50.0;

    const Variant variants[] = {
        runVariant("disabled", base),
        runVariant("traced", traced),
        runVariant("traced+sampled", sampled),
    };

    stats::Table t("Observability overhead (same seed, same traffic)");
    t.header({"variant", "Mtps", "avg us", "host ms", "trace events",
              "ring drops"});
    for (const auto &v : variants) {
        t.row({v.name, stats::fmt(v.results.throughputMtps),
               stats::fmt(v.results.avgLatencyUs, 2),
               stats::fmt(v.hostMs, 1),
               std::to_string(v.results.traceEvents),
               std::to_string(v.results.traceDropped)});
    }
    t.print();

    const double mtpsDelta =
        std::abs(variants[1].results.throughputMtps -
                 variants[0].results.throughputMtps) /
        variants[0].results.throughputMtps;
    std::printf("simulated-throughput delta, disabled vs traced: "
                "%.3f%% (tracing observes, never perturbs)\n",
                100.0 * mtpsDelta);

    // --- Breakdown validation at zero load ---------------------------
    auto zcfg = loadedCfg();
    zcfg.jitter = dp::ServiceJitter::None;
    zcfg.shape = traffic::Shape::SQ;
    zcfg = harness::zeroLoadConfig(zcfg, 500);
    zcfg.trace.enable = true;
    dp::SdpSystem sys(zcfg);
    const auto zr = sys.run();

    const double sum = zr.avgDoorbellToSnoopUs + zr.avgSnoopToReadyUs +
                       zr.avgReadyToGrantUs +
                       zr.avgGrantToCompletionUs;
    const double tickUs = ticksToUs(1);
    // With the subsystem compiled out there is no breakdown to check.
    const bool sumOk = !trace::kCompiledIn ||
        std::abs(sum - zr.breakdownE2eAvgUs) <= tickUs + 1e-9;
    const bool latOk = !trace::kCompiledIn ||
        std::abs(zr.breakdownE2eAvgUs - zr.avgLatencyUs) <= 0.05;
    std::printf("zero-load breakdown: %.3f + %.3f + %.3f + %.3f = "
                "%.3f us vs e2e %.3f us (%s), measured avg %.3f us "
                "(%s), %llu episodes\n",
                zr.avgDoorbellToSnoopUs, zr.avgSnoopToReadyUs,
                zr.avgReadyToGrantUs, zr.avgGrantToCompletionUs, sum,
                zr.breakdownE2eAvgUs, sumOk ? "OK" : "MISMATCH",
                zr.avgLatencyUs, latOk ? "OK" : "MISMATCH",
                static_cast<unsigned long long>(zr.breakdownSamples));

    if (const char *path = harness::argValue(argc, argv, "--trace")) {
        std::ostringstream os;
        sys.writeChromeTrace(os);
        harness::writeTextFile(path, os.str());
    }
    if (const char *path = harness::argValue(argc, argv, "--json")) {
        std::ostringstream os;
        os << "{\"variants\":{";
        for (std::size_t i = 0; i < 3; ++i) {
            if (i != 0)
                os << ',';
            os << "\n" << stats::jsonString(variants[i].name)
               << ":" << harness::resultsJson(variants[i].results);
        }
        os << "},\n\"zero_load\":" << harness::resultsJson(zr)
           << "}\n";
        harness::writeTextFile(path, os.str());
    }

    std::puts("Expected: all three variants within noise of each "
              "other in Mtps (the simulation is\ndeterministic per "
              "seed; tracing adds host time only), and the stage "
              "means summing\nexactly to the breakdown e2e mean.");
    return sumOk && latOk ? 0 : 1;
}
