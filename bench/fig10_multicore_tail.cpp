/**
 * @file
 * Figure 10 reproduction: multicore 99% tail latency vs offered load
 * (Section V-C).  Packet encapsulation, 4 cores, 400 queues.
 *
 *  (a) FB traffic: scale-out vs scale-up-2 vs scale-up-4 for spinning
 *      and HyperPlane;
 *  (b) PC traffic: scale-out (with and without 10% static imbalance)
 *      vs scale-up-2.
 */

#include <cstdio>

#include "dp/sdp_system.hh"
#include "harness/experiment.hh"
#include "harness/export.hh"
#include "harness/parallel.hh"
#include "harness/runner.hh"
#include "stats/table.hh"

using namespace hyperplane;

namespace {

const std::vector<double> loads{0.1, 0.3, 0.5, 0.7, 0.9};

dp::SdpConfig
baseCfg(traffic::Shape shape)
{
    dp::SdpConfig cfg;
    cfg.numCores = 4;
    cfg.numQueues = 400;
    cfg.workload = workloads::Kind::PacketEncapsulation;
    cfg.shape = shape;
    cfg.warmupUs = 1500.0;
    cfg.measureUs = 8000.0;
    cfg.seed = 41;
    return cfg;
}

struct Series
{
    std::string name;
    dp::PlaneKind plane;
    dp::QueueOrg org;
    double imbalance;
};

void
panel(const char *title, traffic::Shape shape,
      const std::vector<Series> &series, unsigned jobs,
      std::vector<harness::NamedSweep> &sweeps)
{
    std::vector<harness::SweepSeries> spec;
    spec.reserve(series.size());
    for (const auto &s : series) {
        auto cfg = baseCfg(shape);
        cfg.plane = s.plane;
        cfg.org = s.org;
        cfg.imbalance = s.imbalance;
        // Saturation throughput is calibrated per configuration so the
        // load axis means the same thing the paper's does.
        spec.push_back({s.name, cfg});
    }
    const auto results = harness::runLoadSweeps(spec, loads, jobs);

    stats::Table t(title);
    std::vector<std::string> header{"config"};
    for (double l : loads)
        header.push_back(stats::fmt(l * 100, 0) + "%");
    t.header(std::move(header));

    for (const auto &sw : results) {
        std::vector<std::string> row{sw.name};
        for (const auto &pt : sw.points)
            row.push_back(stats::fmt(pt.results.p99LatencyUs, 1));
        t.row(std::move(row));
        std::printf("  (%s saturates at %.2f Mtps)\n", sw.name.c_str(),
                    sw.capacityPerSec / 1e6);
        sweeps.push_back({sw.name, sw.points});
    }
    t.print();
}

} // namespace

int
main(int argc, char **argv)
{
    harness::printTableI();
    harness::printExperimentBanner(
        "Figure 10", "multicore 99% tail latency vs load "
                     "(packet encapsulation, 4 cores, 400 queues)");
    const unsigned jobs = harness::jobsFromArgs(argc, argv);

    std::vector<harness::NamedSweep> sweeps;
    panel("Fig 10(a): fully balanced traffic (p99, us)",
          traffic::Shape::FB,
          {
              {"spinning-scale-out", dp::PlaneKind::Spinning,
               dp::QueueOrg::ScaleOut, 0.0},
              {"spinning-scale-up-2", dp::PlaneKind::Spinning,
               dp::QueueOrg::ScaleUp2, 0.0},
              {"spinning-scale-up-4", dp::PlaneKind::Spinning,
               dp::QueueOrg::ScaleUpAll, 0.0},
              {"hyperplane-scale-out", dp::PlaneKind::HyperPlane,
               dp::QueueOrg::ScaleOut, 0.0},
              {"hyperplane-scale-up-2", dp::PlaneKind::HyperPlane,
               dp::QueueOrg::ScaleUp2, 0.0},
              {"hyperplane-scale-up-4", dp::PlaneKind::HyperPlane,
               dp::QueueOrg::ScaleUpAll, 0.0},
          },
          jobs, sweeps);

    panel("Fig 10(b): proportionally concentrated traffic (p99, us)",
          traffic::Shape::PC,
          {
              {"spinning-scale-out", dp::PlaneKind::Spinning,
               dp::QueueOrg::ScaleOut, 0.0},
              {"spinning-scale-out-10%imb", dp::PlaneKind::Spinning,
               dp::QueueOrg::ScaleOut, 0.10},
              {"spinning-scale-up-2", dp::PlaneKind::Spinning,
               dp::QueueOrg::ScaleUp2, 0.0},
              {"hyperplane-scale-out", dp::PlaneKind::HyperPlane,
               dp::QueueOrg::ScaleOut, 0.0},
              {"hyperplane-scale-out-10%imb", dp::PlaneKind::HyperPlane,
               dp::QueueOrg::ScaleOut, 0.10},
              {"hyperplane-scale-up-2", dp::PlaneKind::HyperPlane,
               dp::QueueOrg::ScaleUp2, 0.0},
          },
          jobs, sweeps);

    if (const char *path = harness::argValue(argc, argv, "--json"))
        harness::writeTextFile(path, harness::loadSweepJson(sweeps));

    std::puts("Expected shape: HyperPlane below spinning at every "
              "pre-saturation load; scale-up helps\nHyperPlane but "
              "hurts spinning (sync + queue-head ping-pong); imbalance "
              "hurts scale-out only.");
    return 0;
}
