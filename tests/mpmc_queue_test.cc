/**
 * @file
 * Unit and threading tests for the bounded MPMC queue.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "queueing/mpmc_queue.hh"

namespace hyperplane {
namespace queueing {
namespace {

TEST(MpmcQueue, FifoOrderSingleThread)
{
    MpmcQueue<int> q(8);
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(q.tryPush(int(i)));
    for (int i = 0; i < 5; ++i) {
        const auto v = q.tryPop();
        ASSERT_TRUE(v.has_value());
        EXPECT_EQ(*v, i);
    }
    EXPECT_FALSE(q.tryPop().has_value());
}

TEST(MpmcQueue, CapacityBoundsRejectsWhenFull)
{
    MpmcQueue<int> q(2);
    EXPECT_TRUE(q.tryPush(1));
    EXPECT_TRUE(q.tryPush(2));
    EXPECT_FALSE(q.tryPush(3));
    EXPECT_EQ(q.size(), 2u);
    q.tryPop();
    EXPECT_TRUE(q.tryPush(3));
}

TEST(MpmcQueue, PopBatchDrainsUpToMax)
{
    MpmcQueue<int> q(16);
    for (int i = 0; i < 10; ++i)
        q.tryPush(int(i));
    std::vector<int> out;
    EXPECT_EQ(q.popBatch(out, 4), 4u);
    EXPECT_EQ(out.size(), 4u);
    EXPECT_EQ(out.front(), 0);
    EXPECT_EQ(q.popBatch(out, 100), 6u);
    EXPECT_EQ(out.size(), 10u);
    EXPECT_EQ(out.back(), 9);
    EXPECT_TRUE(q.empty());
}

TEST(MpmcQueue, MoveOnlyElements)
{
    MpmcQueue<std::unique_ptr<std::string>> q(4);
    EXPECT_TRUE(q.tryPush(std::make_unique<std::string>("hello")));
    const auto v = q.tryPop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(**v, "hello");
}

TEST(MpmcQueue, CountersTrackPushesAndPops)
{
    MpmcQueue<int> q(8);
    for (int i = 0; i < 6; ++i)
        q.tryPush(int(i));
    std::vector<int> out;
    q.popBatch(out, 4);
    EXPECT_EQ(q.totalPushed(), 6u);
    EXPECT_EQ(q.totalPopped(), 4u);
    EXPECT_EQ(q.size(), 2u);
    // A rejected push must not advance the counter.
    MpmcQueue<int> tiny(1);
    tiny.tryPush(1);
    tiny.tryPush(2);
    EXPECT_EQ(tiny.totalPushed(), 1u);
}

TEST(MpmcQueue, FullQueuePushFailuresAreCountedNotSilent)
{
    MpmcQueue<int> q(2);
    EXPECT_TRUE(q.tryPush(10));
    EXPECT_TRUE(q.tryPush(20));
    EXPECT_EQ(q.totalPushFailed(), 0u);

    // Rejected pushes must be observable: the overload-shedding path
    // turns each one into a typed reject, so a silent drop here would
    // be an unaccounted loss.
    EXPECT_FALSE(q.tryPush(30));
    EXPECT_FALSE(q.tryPush(31));
    EXPECT_EQ(q.totalPushFailed(), 2u);
    EXPECT_EQ(q.totalPushed(), 2u);
    EXPECT_EQ(q.size(), 2u);

    // The stored elements survive the failed pushes untouched.
    EXPECT_EQ(q.tryPop().value(), 10);
    EXPECT_EQ(q.tryPop().value(), 20);
    EXPECT_TRUE(q.empty());

    // After making room, pushes succeed again and the failure counter
    // stays where it was.
    EXPECT_TRUE(q.tryPush(40));
    EXPECT_EQ(q.totalPushFailed(), 2u);
    EXPECT_EQ(q.totalPushed(), 3u);
}

TEST(MpmcQueue, ManyProducersManyConsumersLoseNothing)
{
    constexpr int producers = 4;
    constexpr int consumers = 4;
    constexpr std::uint64_t perProducer = 20000;
    MpmcQueue<std::uint64_t> q(1024);
    std::atomic<std::uint64_t> popped{0};
    std::atomic<std::uint64_t> sum{0};

    std::vector<std::thread> threads;
    for (int p = 0; p < producers; ++p) {
        threads.emplace_back([&q, p] {
            for (std::uint64_t i = 0; i < perProducer; ++i) {
                std::uint64_t v = p * perProducer + i;
                while (!q.tryPush(std::move(v)))
                    std::this_thread::yield();
            }
        });
    }
    for (int c = 0; c < consumers; ++c) {
        threads.emplace_back([&] {
            std::vector<std::uint64_t> batch;
            while (popped.load() < producers * perProducer) {
                batch.clear();
                const std::size_t n = q.popBatch(batch, 64);
                if (n == 0) {
                    std::this_thread::yield();
                    continue;
                }
                std::uint64_t s = 0;
                for (std::uint64_t v : batch)
                    s += v;
                sum.fetch_add(s);
                popped.fetch_add(n);
            }
        });
    }
    for (auto &t : threads)
        t.join();

    constexpr std::uint64_t total = producers * perProducer;
    EXPECT_EQ(popped.load(), total);
    EXPECT_EQ(sum.load(), total * (total - 1) / 2);
    EXPECT_EQ(q.totalPushed(), total);
    EXPECT_EQ(q.totalPopped(), total);
    EXPECT_TRUE(q.empty());
}

} // namespace
} // namespace queueing
} // namespace hyperplane
