/**
 * @file
 * Unit and property tests for the Cauchy Reed-Solomon erasure coder.
 */

#include <gtest/gtest.h>

#include "codes/reed_solomon.hh"
#include "sim/rng.hh"

namespace hyperplane {
namespace codes {
namespace {

std::vector<Shard>
randomData(unsigned k, std::size_t len, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Shard> data(k, Shard(len));
    for (auto &shard : data)
        for (auto &b : shard)
            b = static_cast<std::uint8_t>(rng.next());
    return data;
}

TEST(ReedSolomon, EncodeProducesParityShards)
{
    ReedSolomon rs(4, 2);
    const auto data = randomData(4, 64, 1);
    const auto parity = rs.encode(data);
    ASSERT_EQ(parity.size(), 2u);
    for (const auto &p : parity)
        EXPECT_EQ(p.size(), 64u);
}

TEST(ReedSolomon, DecodeWithNoLossReturnsData)
{
    ReedSolomon rs(4, 2);
    const auto data = randomData(4, 32, 2);
    const auto parity = rs.encode(data);
    std::vector<Shard> shards = data;
    shards.insert(shards.end(), parity.begin(), parity.end());
    const auto decoded = rs.decode(shards);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, data);
}

TEST(ReedSolomon, RecoversFromParityOnlySurvivors)
{
    // Lose m data shards; recover from the remaining data + all parity.
    ReedSolomon rs(3, 3);
    const auto data = randomData(3, 48, 3);
    const auto parity = rs.encode(data);
    std::vector<Shard> shards(6);
    // All data lost, all parity survives.
    shards[3] = parity[0];
    shards[4] = parity[1];
    shards[5] = parity[2];
    const auto decoded = rs.decode(shards);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, data);
}

TEST(ReedSolomon, FailsWithTooFewSurvivors)
{
    ReedSolomon rs(4, 2);
    const auto data = randomData(4, 16, 4);
    const auto parity = rs.encode(data);
    std::vector<Shard> shards(6);
    shards[0] = data[0];
    shards[1] = data[1];
    shards[4] = parity[0]; // only 3 of 4 required survive
    EXPECT_FALSE(rs.decode(shards).has_value());
}

TEST(ReedSolomon, ParityIsLinear)
{
    // parity(a XOR b) == parity(a) XOR parity(b): the code is linear.
    ReedSolomon rs(4, 2);
    const auto a = randomData(4, 32, 5);
    const auto b = randomData(4, 32, 6);
    std::vector<Shard> sum(4, Shard(32));
    for (unsigned s = 0; s < 4; ++s)
        for (unsigned i = 0; i < 32; ++i)
            sum[s][i] = a[s][i] ^ b[s][i];
    const auto pa = rs.encode(a);
    const auto pb = rs.encode(b);
    const auto ps = rs.encode(sum);
    for (unsigned s = 0; s < 2; ++s)
        for (unsigned i = 0; i < 32; ++i)
            EXPECT_EQ(ps[s][i], pa[s][i] ^ pb[s][i]);
}

TEST(ReedSolomon, ZeroDataGivesZeroParity)
{
    ReedSolomon rs(5, 3);
    std::vector<Shard> data(5, Shard(16, 0));
    const auto parity = rs.encode(data);
    for (const auto &p : parity)
        for (auto b : p)
            EXPECT_EQ(b, 0);
}

/**
 * Property: every erasure pattern of up to m lost shards (data and/or
 * parity) is recoverable.  Exhaustive over all patterns for RS(4, 2).
 */
TEST(ReedSolomon, AllTwoErasurePatternsRecoverable)
{
    ReedSolomon rs(4, 2);
    const auto data = randomData(4, 24, 7);
    const auto parity = rs.encode(data);
    std::vector<Shard> full = data;
    full.insert(full.end(), parity.begin(), parity.end());

    for (unsigned lossA = 0; lossA < 6; ++lossA) {
        for (unsigned lossB = lossA; lossB < 6; ++lossB) {
            auto shards = full;
            shards[lossA].clear();
            shards[lossB].clear();
            const auto decoded = rs.decode(shards);
            ASSERT_TRUE(decoded.has_value())
                << "losses " << lossA << "," << lossB;
            EXPECT_EQ(*decoded, data)
                << "losses " << lossA << "," << lossB;
        }
    }
}

/** Parameterized sweep over (k, m) geometries. */
class RsGeometrySweep
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>>
{
};

TEST_P(RsGeometrySweep, WorstCaseErasureRecovers)
{
    const auto [k, m] = GetParam();
    ReedSolomon rs(k, m);
    const auto data = randomData(k, 40, k * 31 + m);
    const auto parity = rs.encode(data);
    std::vector<Shard> shards = data;
    shards.insert(shards.end(), parity.begin(), parity.end());
    // Lose the first m shards (all data when m >= k).
    for (unsigned i = 0; i < m; ++i)
        shards[i].clear();
    const auto decoded = rs.decode(shards);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, data);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, RsGeometrySweep,
    ::testing::Values(std::make_pair(1u, 1u), std::make_pair(2u, 1u),
                      std::make_pair(3u, 2u), std::make_pair(6u, 3u),
                      std::make_pair(10u, 4u), std::make_pair(17u, 3u),
                      std::make_pair(32u, 8u)));

} // namespace
} // namespace codes
} // namespace hyperplane
