/**
 * @file
 * Minimal JSON syntax validator for tests.
 *
 * Not a parser — it only answers "is this well-formed JSON?" so the
 * exporters' output can be checked without a JSON library dependency.
 * Accepts exactly the grammar of RFC 8259 (objects, arrays, strings
 * with escapes, numbers, true/false/null).
 */

#ifndef HYPERPLANE_TESTS_JSON_CHECK_HH
#define HYPERPLANE_TESTS_JSON_CHECK_HH

#include <cctype>
#include <string>

namespace hyperplane {
namespace testing {

class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : s_(text) {}

    /** True iff the whole input is one well-formed JSON value. */
    bool valid()
    {
        pos_ = 0;
        if (!value())
            return false;
        skipWs();
        return pos_ == s_.size();
    }

  private:
    void skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_]))) {
            ++pos_;
        }
    }

    bool eat(char c)
    {
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool literal(const char *word)
    {
        const std::size_t n = std::string(word).size();
        if (s_.compare(pos_, n, word) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    bool string()
    {
        if (!eat('"'))
            return false;
        while (pos_ < s_.size()) {
            const char c = s_[pos_++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos_ >= s_.size())
                    return false;
                const char e = s_[pos_++];
                if (e == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        if (pos_ >= s_.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                s_[pos_]))) {
                            return false;
                        }
                        ++pos_;
                    }
                } else if (std::string("\"\\/bfnrt").find(e) ==
                           std::string::npos) {
                    return false;
                }
            }
        }
        return false; // unterminated
    }

    bool number()
    {
        const std::size_t start = pos_;
        if (pos_ < s_.size() && s_[pos_] == '-')
            ++pos_;
        while (pos_ < s_.size() &&
               std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
            ++pos_;
        }
        if (pos_ == start ||
            (s_[start] == '-' && pos_ == start + 1)) {
            return false;
        }
        if (pos_ < s_.size() && s_[pos_] == '.') {
            ++pos_;
            if (pos_ >= s_.size() ||
                !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
                return false;
            }
            while (pos_ < s_.size() &&
                   std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
                ++pos_;
            }
        }
        if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < s_.size() &&
                (s_[pos_] == '+' || s_[pos_] == '-')) {
                ++pos_;
            }
            if (pos_ >= s_.size() ||
                !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
                return false;
            }
            while (pos_ < s_.size() &&
                   std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
                ++pos_;
            }
        }
        return true;
    }

    bool value()
    {
        skipWs();
        if (pos_ >= s_.size())
            return false;
        const char c = s_[pos_];
        if (c == '{') {
            ++pos_;
            if (eat('}'))
                return true;
            do {
                skipWs();
                if (!string() || !eat(':') || !value())
                    return false;
            } while (eat(','));
            return eat('}');
        }
        if (c == '[') {
            ++pos_;
            if (eat(']'))
                return true;
            do {
                if (!value())
                    return false;
            } while (eat(','));
            return eat(']');
        }
        if (c == '"')
            return string();
        if (c == 't')
            return literal("true");
        if (c == 'f')
            return literal("false");
        if (c == 'n')
            return literal("null");
        return number();
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

/** Convenience wrapper. */
inline bool
jsonWellFormed(const std::string &text)
{
    return JsonChecker(text).valid();
}

} // namespace testing
} // namespace hyperplane

#endif // HYPERPLANE_TESTS_JSON_CHECK_HH
