/**
 * @file
 * Unit tests for the ready set and its service policies.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/ready_set.hh"

namespace hyperplane {
namespace core {
namespace {

ReadySetConfig
cfgWith(ServicePolicy policy, unsigned cap = 64)
{
    ReadySetConfig cfg;
    cfg.capacity = cap;
    cfg.policy = policy;
    return cfg;
}

TEST(ReadySet, EmptySelectsNothing)
{
    ReadySet rs(cfgWith(ServicePolicy::RoundRobin));
    EXPECT_FALSE(rs.anyReady());
    EXPECT_FALSE(rs.selectNext().has_value());
}

TEST(ReadySet, ActivateThenSelectClearsReadyBit)
{
    ReadySet rs(cfgWith(ServicePolicy::RoundRobin));
    rs.activate(7);
    EXPECT_TRUE(rs.isReady(7));
    const auto qid = rs.selectNext();
    ASSERT_TRUE(qid.has_value());
    EXPECT_EQ(*qid, 7u);
    EXPECT_FALSE(rs.isReady(7));
    EXPECT_FALSE(rs.selectNext().has_value());
}

TEST(ReadySet, ActivationIdempotent)
{
    ReadySet rs(cfgWith(ServicePolicy::RoundRobin));
    rs.activate(3);
    rs.activate(3);
    EXPECT_TRUE(rs.selectNext().has_value());
    EXPECT_FALSE(rs.selectNext().has_value());
}

TEST(ReadySet, RoundRobinVisitsAllFairly)
{
    ReadySet rs(cfgWith(ServicePolicy::RoundRobin, 16));
    std::map<QueueId, int> grants;
    for (int round = 0; round < 30; ++round) {
        for (QueueId q : {2u, 5u, 11u})
            rs.activate(q);
        const auto qid = rs.selectNext();
        ASSERT_TRUE(qid.has_value());
        ++grants[*qid];
        // Drain remaining grants this round to keep state simple.
        while (auto more = rs.selectNext())
            ++grants[*more];
    }
    EXPECT_EQ(grants[2], 30);
    EXPECT_EQ(grants[5], 30);
    EXPECT_EQ(grants[11], 30);
}

TEST(ReadySet, RoundRobinOrderRotates)
{
    ReadySet rs(cfgWith(ServicePolicy::RoundRobin, 8));
    rs.activate(1);
    rs.activate(4);
    rs.activate(6);
    std::vector<QueueId> order;
    while (auto q = rs.selectNext())
        order.push_back(*q);
    EXPECT_EQ(order, (std::vector<QueueId>{1, 4, 6}));
    // Re-activate: priority continues after the last grant (7), so the
    // circular order restarts at 1.
    rs.activate(6);
    rs.activate(1);
    order.clear();
    while (auto q = rs.selectNext())
        order.push_back(*q);
    EXPECT_EQ(order, (std::vector<QueueId>{1, 6}));
}

TEST(ReadySet, StrictPriorityAlwaysPicksLowest)
{
    ReadySet rs(cfgWith(ServicePolicy::StrictPriority, 16));
    for (int i = 0; i < 10; ++i) {
        rs.activate(9);
        rs.activate(2);
        rs.activate(14);
        const auto q = rs.selectNext();
        ASSERT_TRUE(q.has_value());
        EXPECT_EQ(*q, 2u);
        rs.deactivate(9);
        rs.deactivate(14);
    }
}

TEST(ReadySet, StrictPriorityCanStarve)
{
    ReadySet rs(cfgWith(ServicePolicy::StrictPriority, 8));
    rs.activate(6);
    rs.activate(1);
    EXPECT_EQ(*rs.selectNext(), 1u);
    rs.activate(1); // low queue keeps arriving
    EXPECT_EQ(*rs.selectNext(), 1u);
    EXPECT_EQ(*rs.selectNext(), 6u); // only served when 1 is idle
}

TEST(ReadySet, WeightedRoundRobinHonorsWeights)
{
    ReadySet rs(cfgWith(ServicePolicy::WeightedRoundRobin, 8));
    rs.setWeight(1, 3);
    rs.setWeight(2, 1);
    std::map<QueueId, int> grants;
    for (int i = 0; i < 400; ++i) {
        rs.activate(1);
        rs.activate(2);
        const auto q = rs.selectNext();
        ASSERT_TRUE(q.has_value());
        ++grants[*q];
    }
    // 3:1 service ratio.
    EXPECT_NEAR(static_cast<double>(grants[1]) / grants[2], 3.0, 0.1);
}

TEST(ReadySet, WrrPriorityPassesWhenQueueRunsDry)
{
    ReadySet rs(cfgWith(ServicePolicy::WeightedRoundRobin, 8));
    rs.setWeight(1, 100); // huge credit
    rs.activate(1);
    rs.activate(2);
    EXPECT_EQ(*rs.selectNext(), 1u);
    // Queue 1 runs out of items (not re-activated): despite remaining
    // credit the priority must pass on.
    EXPECT_EQ(*rs.selectNext(), 2u);
}

TEST(ReadySet, DisableMasksGrantsEnableRestores)
{
    ReadySet rs(cfgWith(ServicePolicy::RoundRobin, 8));
    rs.activate(3);
    rs.disable(3);
    EXPECT_FALSE(rs.anyReady());
    EXPECT_FALSE(rs.selectNext().has_value());
    EXPECT_TRUE(rs.isReady(3)); // still ready, just masked
    rs.enable(3);
    EXPECT_EQ(*rs.selectNext(), 3u);
}

TEST(ReadySet, DisabledQueueDoesNotBlockOthers)
{
    ReadySet rs(cfgWith(ServicePolicy::StrictPriority, 8));
    rs.activate(0);
    rs.activate(5);
    rs.disable(0);
    EXPECT_EQ(*rs.selectNext(), 5u);
}

TEST(ReadySet, ReadyCountHonorsMask)
{
    ReadySet rs(cfgWith(ServicePolicy::RoundRobin, 8));
    rs.activate(1);
    rs.activate(2);
    rs.activate(3);
    EXPECT_EQ(rs.readyCount(), 3u);
    rs.disable(2);
    EXPECT_EQ(rs.readyCount(), 2u);
}

TEST(ReadySet, DeactivateClearsSticky)
{
    ReadySet rs(cfgWith(ServicePolicy::WeightedRoundRobin, 8));
    rs.setWeight(1, 10);
    rs.activate(1);
    rs.activate(2);
    EXPECT_EQ(*rs.selectNext(), 1u);
    rs.activate(1);
    rs.deactivate(1); // e.g. QWAIT-REMOVE
    EXPECT_EQ(*rs.selectNext(), 2u);
}

TEST(ReadySet, ResetClearsDynamicState)
{
    ReadySet rs(cfgWith(ServicePolicy::RoundRobin, 8));
    rs.activate(4);
    rs.disable(5);
    rs.reset();
    EXPECT_FALSE(rs.anyReady());
    EXPECT_TRUE(rs.isEnabled(5));
}

TEST(ReadySet, RippleArbiterVariantBehavesIdentically)
{
    ReadySetConfig a = cfgWith(ServicePolicy::RoundRobin, 32);
    ReadySetConfig b = a;
    b.arbiter = ArbiterKind::Ripple;
    ReadySet rsA(a), rsB(b);
    for (QueueId q : {3u, 9u, 27u}) {
        rsA.activate(q);
        rsB.activate(q);
    }
    for (int i = 0; i < 3; ++i) {
        const auto ga = rsA.selectNext();
        const auto gb = rsB.selectNext();
        ASSERT_TRUE(ga.has_value() && gb.has_value());
        EXPECT_EQ(*ga, *gb);
    }
}

TEST(ReadySet, GrantStatsAdvance)
{
    ReadySet rs(cfgWith(ServicePolicy::RoundRobin, 8));
    rs.activate(1);
    rs.selectNext();
    EXPECT_EQ(rs.activations.value(), 1u);
    EXPECT_EQ(rs.grants.value(), 1u);
}

/** Policy sweep: a single ready queue is always granted regardless of
 *  policy. */
class PolicySweep : public ::testing::TestWithParam<ServicePolicy>
{
};

TEST_P(PolicySweep, LoneReadyQueueGranted)
{
    ReadySet rs(cfgWith(GetParam(), 128));
    rs.activate(77);
    const auto q = rs.selectNext();
    ASSERT_TRUE(q.has_value());
    EXPECT_EQ(*q, 77u);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, PolicySweep,
    ::testing::Values(ServicePolicy::RoundRobin,
                      ServicePolicy::WeightedRoundRobin,
                      ServicePolicy::StrictPriority));

} // namespace
} // namespace core
} // namespace hyperplane
