/**
 * @file
 * Model-equivalence property test for the QwaitUnit.
 *
 * A reference model captures the *intended* semantics of Algorithm 1
 * with plain per-queue item counts: a grant must never be lost (if any
 * queue holds items and the protocol is followed, QWAIT eventually
 * returns it) and never duplicated (a queue with one in-flight grant is
 * not re-granted until RECONSIDER).  The test drives the real
 * QwaitUnit + Doorbells through long random traces of producer and
 * consumer actions and checks the hardware against the reference after
 * every step.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/qwait_unit.hh"
#include "queueing/doorbell.hh"
#include "sim/rng.hh"

namespace hyperplane {
namespace core {
namespace {

using queueing::AddressMap;
using queueing::Doorbell;

/** Reference bookkeeping per queue. */
struct RefQueue
{
    std::uint64_t items = 0; ///< enqueued, not yet claimed
    bool granted = false;    ///< returned by QWAIT, pre-RECONSIDER
};

class QwaitModelTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(QwaitModelTest, RandomTraceMatchesReferenceModel)
{
    constexpr unsigned numQueues = 24;
    QwaitConfig cfg;
    cfg.ready.capacity = numQueues;
    QwaitUnit unit(cfg);

    std::vector<Doorbell> doorbells;
    std::vector<RefQueue> ref(numQueues);
    for (QueueId q = 0; q < numQueues; ++q) {
        doorbells.emplace_back(AddressMap::doorbellAddr(q));
        ASSERT_EQ(unit.qwaitAdd(q, AddressMap::doorbellAddr(q)),
                  AddResult::Ok);
    }

    Rng rng(GetParam());
    std::uint64_t totalProduced = 0, totalConsumed = 0;

    for (int step = 0; step < 4000; ++step) {
        const unsigned action = static_cast<unsigned>(rng.uniformInt(3));
        if (action == 0) {
            // Producer: enqueue a burst into a random queue and ring.
            const auto q =
                static_cast<QueueId>(rng.uniformInt(numQueues));
            const auto n = 1 + rng.uniformInt(4);
            doorbells[q].increment(n);
            ref[q].items += n;
            totalProduced += n;
            unit.onWriteTransaction(AddressMap::doorbellAddr(q), 0);
        } else {
            // Consumer: one full QWAIT iteration (Algorithm 1 body).
            const auto qid = unit.qwait();
            if (!qid) {
                // Blocked: the reference must agree nothing is
                // grantable — every queue is either empty or already
                // granted (its grant is in flight elsewhere in a real
                // multicore; here in-flight sets are drained within
                // the iteration, so "granted" queues cannot exist at
                // this point).
                for (unsigned q = 0; q < numQueues; ++q) {
                    EXPECT_FALSE(ref[q].items > 0 && !ref[q].granted)
                        << "lost wakeup for queue " << q << " at step "
                        << step;
                }
                continue;
            }
            ASSERT_LT(*qid, numQueues);
            EXPECT_FALSE(ref[*qid].granted)
                << "double grant of queue " << *qid;
            ref[*qid].granted = true;

            if (!unit.qwaitVerify(*qid, doorbells[*qid])) {
                // Spurious: reference must show it empty.
                EXPECT_EQ(ref[*qid].items, 0u);
                ref[*qid].granted = false;
                continue;
            }
            EXPECT_GT(ref[*qid].items, 0u)
                << "verify passed an empty queue";

            // Dequeue a random batch.
            const auto want = 1 + rng.uniformInt(3);
            const auto got = doorbells[*qid].decrement(want);
            EXPECT_EQ(got, std::min<std::uint64_t>(want,
                                                   ref[*qid].items));
            ref[*qid].items -= got;
            totalConsumed += got;

            unit.qwaitReconsider(*qid, doorbells[*qid]);
            ref[*qid].granted = false;
        }

        // Global invariant: doorbell counters mirror the reference.
        for (unsigned q = 0; q < numQueues; ++q)
            ASSERT_EQ(doorbells[q].count(), ref[q].items);
    }

    // Drain everything; no wakeup may have been lost.
    for (int guard = 0; guard < 100000; ++guard) {
        const auto qid = unit.qwait();
        if (!qid)
            break;
        if (!unit.qwaitVerify(*qid, doorbells[*qid]))
            continue;
        const auto got = doorbells[*qid].decrement(
            doorbells[*qid].count());
        ref[*qid].items -= got;
        totalConsumed += got;
        unit.qwaitReconsider(*qid, doorbells[*qid]);
    }
    EXPECT_EQ(totalConsumed, totalProduced)
        << "items lost: the notification chain dropped a wakeup";
    for (unsigned q = 0; q < numQueues; ++q)
        EXPECT_EQ(ref[q].items, 0u) << "queue " << q << " stranded";
}

INSTANTIATE_TEST_SUITE_P(Seeds, QwaitModelTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34,
                                           55, 89));

} // namespace
} // namespace core
} // namespace hyperplane
