/**
 * @file
 * Unit tests for the core power model and the C-state machine.
 */

#include <gtest/gtest.h>

#include "power/cstate.hh"

namespace hyperplane {
namespace power {
namespace {

TEST(CorePower, ActivePowerGrowsWithIpc)
{
    CorePowerModel m;
    EXPECT_LT(m.activePowerW(0.5), m.activePowerW(2.0));
    EXPECT_GE(m.activePowerW(0.0), m.params().staticW);
}

TEST(CorePower, ActivePowerSaturatesAtPeakIpc)
{
    CorePowerModel m;
    EXPECT_DOUBLE_EQ(m.activePowerW(m.params().ipcPeak),
                     m.activePowerW(m.params().ipcPeak * 2));
    EXPECT_DOUBLE_EQ(m.activePowerW(m.params().ipcPeak),
                     m.params().staticW + m.params().dynPeakW);
}

TEST(CorePower, HaltStatesOrdered)
{
    CorePowerModel m;
    EXPECT_LT(m.haltPowerW(true), m.haltPowerW(false));
    EXPECT_LT(m.haltPowerW(false), m.activePowerW(1.0));
}

TEST(CorePower, EnergyIntegratesOverTime)
{
    CorePowerModel m;
    const Tick oneMs = usToTicks(1000.0);
    m.addActive(oneMs, 2.0);
    const double expect = m.activePowerW(2.0) * 1e-3;
    EXPECT_NEAR(m.energyJ(), expect, expect * 1e-9);
    EXPECT_EQ(m.accountedTicks(), oneMs);
}

TEST(CorePower, AveragePowerMixesStates)
{
    CorePowerModel m;
    const Tick half = usToTicks(500.0);
    m.addActive(half, m.params().ipcPeak);
    m.addHalt(half, true);
    const double expect =
        (m.activePowerW(m.params().ipcPeak) + m.haltPowerW(true)) / 2.0;
    EXPECT_NEAR(m.averagePowerW(), expect, 1e-9);
}

TEST(CorePower, ClearResets)
{
    CorePowerModel m;
    m.addActive(1000, 1.0);
    m.clear();
    EXPECT_DOUBLE_EQ(m.energyJ(), 0.0);
    EXPECT_EQ(m.accountedTicks(), 0u);
    EXPECT_DOUBLE_EQ(m.averagePowerW(), 0.0);
}

TEST(CorePower, C1IdleNearSixteenPercentOfSaturation)
{
    // The Figure 12(a) calibration: C1 idle power ~16.2% of the core's
    // power at saturation-load IPC (~1.1).
    CorePowerModel m;
    const double satPower = m.activePowerW(1.1);
    EXPECT_NEAR(m.haltPowerW(true) / satPower, 0.162, 0.015);
}

TEST(CState, RunHaltAccountsIntervals)
{
    CorePowerModel power;
    CStateMachine cs(power, /*useC1=*/false);
    cs.run(0, 2.0);
    cs.halt(1000);
    EXPECT_EQ(cs.state(), CState::C0Halt);
    const Tick lat = cs.wake(3000);
    EXPECT_EQ(lat, 0u); // C0-halt wakes instantly
    cs.finish(4000);
    EXPECT_EQ(power.accountedTicks(), 4000u);
    EXPECT_EQ(cs.halts.value(), 1u);
}

TEST(CState, C1WakeChargesLatency)
{
    CorePowerModel power;
    CStateMachine cs(power, /*useC1=*/true);
    cs.run(0, 1.0);
    cs.halt(100);
    EXPECT_EQ(cs.state(), CState::C1);
    EXPECT_EQ(cs.c1Entries.value(), 1u);
    const Tick lat = cs.wake(200);
    EXPECT_EQ(lat, power.params().c1WakeLatency);
    EXPECT_EQ(cs.state(), CState::C0Active);
}

TEST(CState, EnergyLowerWithC1)
{
    CorePowerModel pa, pb;
    CStateMachine a(pa, false), b(pb, true);
    const Tick t = usToTicks(100.0);
    a.halt(0);
    b.halt(0);
    a.finish(t);
    b.finish(t);
    EXPECT_LT(pb.energyJ(), pa.energyJ());
}

TEST(CState, NamesReadable)
{
    EXPECT_STREQ(toString(CState::C0Active), "C0-active");
    EXPECT_STREQ(toString(CState::C0Halt), "C0-halt");
    EXPECT_STREQ(toString(CState::C1), "C1");
}

} // namespace
} // namespace power
} // namespace hyperplane
