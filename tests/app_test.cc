/**
 * @file
 * Tests for the stateful application suite (src/app) and its simulator
 * wrapper: a randomized differential check of the count-min sketch
 * against an exact counter, connection lifecycle/expiry/ownership for
 * the conntrack LB, spin-bit edge/RTT accounting, fail-closed codec
 * round-trips, and sim-side determinism of the workload wrapper.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <unordered_map>
#include <vector>

#include "app/app.hh"
#include "app/conntrack_lb.hh"
#include "app/heavy_hitter.hh"
#include "app/spin_rtt.hh"
#include "dp/sdp_system.hh"
#include "sim/rng.hh"
#include "workloads/stateful_app.hh"
#include "workloads/workload.hh"

namespace hyperplane {
namespace app {
namespace {

// ---------------------------------------------------------------------
// Count-min sketch: differential vs an exact counter
// ---------------------------------------------------------------------

TEST(CountMinSketch, DifferentialNeverUnderestimatesBoundedOver)
{
    constexpr unsigned width = 1024;
    constexpr unsigned depth = 4;
    CountMinSketch cms(width, depth, 0xc0ffee);
    std::unordered_map<std::uint32_t, std::uint64_t> exact;

    // Skewed stream: a few hundred hot keys over a long tail.
    Rng rng(0xd1ff);
    for (int i = 0; i < 50000; ++i) {
        const bool hot = rng.uniformInt(4) == 0;
        const std::uint32_t key = hot ? rng.uniformInt(32)
                                      : 32 + rng.uniformInt(4096);
        const std::uint64_t w = 1 + rng.uniformInt(16);
        const std::uint64_t est = cms.update(key, w);
        exact[key] += w;
        // update() must report the post-update estimate.
        ASSERT_EQ(est, cms.estimate(key));
    }

    std::uint64_t total = 0;
    for (const auto &[k, v] : exact)
        total += v;
    ASSERT_EQ(cms.totalWeight(), total);

    // Guarantee 1: never underestimate.  Guarantee 2: the overestimate
    // stays near the CMS bound N/width per row; min-over-depth rows
    // concentrates well below a generous multiple of it.
    const std::uint64_t rowBound = total / width; // ~expected row error
    std::uint64_t worst = 0;
    long double sumErr = 0;
    for (const auto &[k, v] : exact) {
        const std::uint64_t est = cms.estimate(k);
        ASSERT_GE(est, v) << "key " << k;
        const std::uint64_t err = est - v;
        worst = std::max(worst, err);
        sumErr += err;
    }
    const double meanErr =
        static_cast<double>(sumErr / exact.size());
    EXPECT_LE(meanErr, 2.0 * rowBound);
    EXPECT_LE(worst, 32 * rowBound);

    // Unseen keys may collide with real weight but never exceed the
    // same bound; clear() must zero everything.
    EXPECT_LE(cms.estimate(0xfffffff0u), 32 * rowBound);
    cms.clear();
    EXPECT_EQ(cms.totalWeight(), 0u);
    EXPECT_EQ(cms.estimate(5), 0u);
}

// ---------------------------------------------------------------------
// Heavy-hitter handler: promotion and per-shard isolation
// ---------------------------------------------------------------------

AppRequest
makeReq(std::uint32_t flowId, std::uint64_t seq, std::uint64_t nowNs,
        const std::uint8_t *payload, std::size_t len)
{
    AppRequest r;
    r.flowId = flowId;
    r.seq = seq;
    r.nowNs = nowNs;
    r.payload = payload;
    r.payloadLen = static_cast<std::uint32_t>(len);
    return r;
}

TEST(HeavyHitterApp, PromotesHotKeysAndFlagsThem)
{
    AppConfig cfg;
    cfg.numShards = 2;
    cfg.promoteThreshold = 1000;
    cfg.maxPromoted = 8;
    HeavyHitterApp hh(cfg);

    std::uint8_t payload[HhRequest::wireSize];
    std::uint8_t out[64];

    // One hot key crosses the threshold; tail keys must not.
    bool sawHot = false;
    for (int i = 0; i < 50; ++i) {
        HhRequest m;
        m.key = 7;
        m.weight = 100;
        ASSERT_EQ(encode(m, payload, sizeof(payload)),
                  HhRequest::wireSize);
        const AppResult res = hh.handle(
            0, makeReq(7, i, 1000 + i, payload, sizeof(payload)), out,
            sizeof(out));
        ASSERT_TRUE(res.ok);
        ASSERT_EQ(res.payloadLen, HhResponse::wireSize);
        const auto resp = decodeHhResponse(out, res.payloadLen);
        ASSERT_TRUE(resp.has_value());
        EXPECT_GE(resp->estimate, 100ull * (i + 1));
        if (resp->hot)
            sawHot = true;
    }
    EXPECT_TRUE(sawHot);
    EXPECT_EQ(hh.promotions(), 1u);
    EXPECT_EQ(hh.hotFlows(), 1u);
    EXPECT_GT(hh.hotHits(), 0u);

    for (std::uint32_t k = 100; k < 120; ++k) {
        HhRequest m;
        m.key = k;
        m.weight = 1;
        encode(m, payload, sizeof(payload));
        const AppResult res = hh.handle(
            1, makeReq(k, 0, 2000, payload, sizeof(payload)), out,
            sizeof(out));
        ASSERT_TRUE(res.ok);
        const auto resp = decodeHhResponse(out, res.payloadLen);
        ASSERT_TRUE(resp.has_value());
        EXPECT_EQ(resp->hot, 0u);
    }
    // The tail updated shard 1's sketch but promoted nothing there.
    EXPECT_EQ(hh.promotions(), 1u);

    // Garbage payload fails closed.
    const AppResult bad =
        hh.handle(0, makeReq(1, 0, 1, payload, 3), out, sizeof(out));
    EXPECT_FALSE(bad.ok);
}

TEST(HeavyHitterApp, PromotionTableCapacityIsBounded)
{
    AppConfig cfg;
    cfg.numShards = 1;
    cfg.promoteThreshold = 10;
    cfg.maxPromoted = 4;
    HeavyHitterApp hh(cfg);

    std::uint8_t payload[HhRequest::wireSize];
    std::uint8_t out[64];
    for (std::uint32_t k = 0; k < 64; ++k) {
        HhRequest m;
        m.key = k;
        m.weight = 50 + k; // all promote; later keys outweigh earlier
        encode(m, payload, sizeof(payload));
        ASSERT_TRUE(hh.handle(0, makeReq(k, 0, 10, payload,
                                         sizeof(payload)),
                              out, sizeof(out))
                        .ok);
    }
    EXPECT_LE(hh.hotFlows(), cfg.maxPromoted);
    EXPECT_GT(hh.promotions(), 0u);
}

// ---------------------------------------------------------------------
// Conntrack LB: lifecycle, expiry, stable backends, shard ownership
// ---------------------------------------------------------------------

std::size_t
encodeCt(const CtRequest &m, std::uint8_t *buf, std::size_t cap)
{
    const std::size_t n = encode(m, buf, cap);
    EXPECT_EQ(n, CtRequest::wireSize);
    return n;
}

TEST(ConntrackLbApp, ConnectionLifecycle)
{
    AppConfig cfg;
    cfg.numShards = 2;
    ConntrackLbApp ct(cfg);

    CtRequest open = ctRequestFor(42, 0);
    ASSERT_EQ(open.verb, CtVerb::Open);
    std::uint8_t payload[CtRequest::wireSize];
    std::uint8_t out[64];

    encodeCt(open, payload, sizeof(payload));
    AppResult res = ct.handle(0, makeReq(42, 0, 1000, payload,
                                         sizeof(payload)),
                              out, sizeof(out));
    ASSERT_TRUE(res.ok);
    auto resp = decodeCtResponse(out, res.payloadLen);
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->state, 1u);
    const std::uint32_t backend = resp->backend;
    EXPECT_LT(backend, cfg.numBackends);
    EXPECT_EQ(ct.opens(), 1u);
    EXPECT_EQ(ct.activeConnections(), 1u);

    // In-order data keeps the entry and the backend.
    for (std::uint64_t s = 1; s < 63; ++s) {
        const CtRequest data = ctRequestFor(42, s);
        ASSERT_EQ(data.verb, CtVerb::Data);
        encodeCt(data, payload, sizeof(payload));
        res = ct.handle(0, makeReq(42, s, 1000 + s, payload,
                                   sizeof(payload)),
                        out, sizeof(out));
        ASSERT_TRUE(res.ok);
        resp = decodeCtResponse(out, res.payloadLen);
        ASSERT_TRUE(resp.has_value());
        EXPECT_EQ(resp->backend, backend) << "seq " << s;
        EXPECT_EQ(resp->state, 1u);
    }
    EXPECT_EQ(ct.outOfOrder(), 0u);

    // Close tears the entry down.
    const CtRequest close = ctRequestFor(42, 63);
    ASSERT_EQ(close.verb, CtVerb::Close);
    encodeCt(close, payload, sizeof(payload));
    res = ct.handle(0, makeReq(42, 63, 2000, payload, sizeof(payload)),
                    out, sizeof(out));
    ASSERT_TRUE(res.ok);
    EXPECT_EQ(ct.closes(), 1u);
    EXPECT_EQ(ct.activeConnections(), 0u);

    // Re-open lands on the same backend (tuple-hashed selection).
    encodeCt(ctRequestFor(42, 64), payload, sizeof(payload));
    res = ct.handle(0, makeReq(42, 64, 3000, payload, sizeof(payload)),
                    out, sizeof(out));
    ASSERT_TRUE(res.ok);
    resp = decodeCtResponse(out, res.payloadLen);
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->backend, backend);
}

TEST(ConntrackLbApp, DataMissRecreatesAndSeqGapsCount)
{
    AppConfig cfg;
    cfg.numShards = 1;
    ConntrackLbApp ct(cfg);
    std::uint8_t payload[CtRequest::wireSize];
    std::uint8_t out[64];

    // Data for an unknown connection (lost Open): tolerated, counted.
    encodeCt(ctRequestFor(7, 5), payload, sizeof(payload));
    AppResult res = ct.handle(0, makeReq(7, 5, 100, payload,
                                         sizeof(payload)),
                              out, sizeof(out));
    ASSERT_TRUE(res.ok);
    EXPECT_EQ(ct.misses(), 1u);
    EXPECT_EQ(ct.activeConnections(), 1u);

    // A sequence gap is out-of-order, not fatal.
    encodeCt(ctRequestFor(7, 9), payload, sizeof(payload));
    res = ct.handle(0, makeReq(7, 9, 200, payload, sizeof(payload)),
                    out, sizeof(out));
    ASSERT_TRUE(res.ok);
    EXPECT_EQ(ct.outOfOrder(), 1u);

    // Close for a connection that was never opened: a miss.
    encodeCt(ctRequestFor(8, 63), payload, sizeof(payload));
    res = ct.handle(0, makeReq(8, 63, 300, payload, sizeof(payload)),
                    out, sizeof(out));
    ASSERT_TRUE(res.ok);
    EXPECT_EQ(ct.misses(), 2u);
}

TEST(ConntrackLbApp, IdleEntriesExpire)
{
    AppConfig cfg;
    cfg.numShards = 2;
    cfg.idleTimeoutNs = 1000;
    ConntrackLbApp ct(cfg);
    std::uint8_t payload[CtRequest::wireSize];
    std::uint8_t out[64];

    encodeCt(ctRequestFor(1, 0), payload, sizeof(payload));
    ASSERT_TRUE(ct.handle(0, makeReq(1, 0, 100, payload,
                                     sizeof(payload)),
                          out, sizeof(out))
                    .ok);
    encodeCt(ctRequestFor(2, 0), payload, sizeof(payload));
    ASSERT_TRUE(ct.handle(1, makeReq(2, 0, 100, payload,
                                     sizeof(payload)),
                          out, sizeof(out))
                    .ok);
    EXPECT_EQ(ct.activeConnections(), 2u);

    ct.sweepIdle(100 + cfg.idleTimeoutNs + 1);
    EXPECT_EQ(ct.activeConnections(), 0u);
    EXPECT_EQ(ct.expiries(), 2u);
}

TEST(ConntrackLbApp, ShardsAreIndependentUnderConcurrency)
{
    // Flow-sharded ownership: four threads hammer four distinct shards
    // concurrently.  TSan gates the absence of cross-shard races; the
    // totals gate that no shard lost updates.
    AppConfig cfg;
    cfg.numShards = 4;
    ConntrackLbApp ct(cfg);
    constexpr int perShard = 4000;

    std::vector<std::thread> threads;
    for (unsigned shard = 0; shard < 4; ++shard) {
        threads.emplace_back([&ct, shard]() {
            std::uint8_t payload[CtRequest::wireSize];
            std::uint8_t out[64];
            for (int i = 0; i < perShard; ++i) {
                const std::uint32_t flow = 1000 * shard + (i % 50);
                const std::uint64_t seq = i / 50;
                const std::size_t n = encode(ctRequestFor(flow, seq),
                                             payload, sizeof(payload));
                ct.handle(shard,
                          makeReq(flow, seq, 10 * i + 1, payload, n),
                          out, sizeof(out));
            }
        });
    }
    for (auto &t : threads)
        t.join();
    // Each flow runs seq 0..79: Open at 0, Close at 63, re-Open at 64
    // — so two opens and one close per flow, and every flow is live at
    // the end.  Exact totals prove no shard lost an update.
    EXPECT_EQ(ct.opens(), 4u * 50u * 2u);
    EXPECT_EQ(ct.closes(), 4u * 50u);
    EXPECT_EQ(ct.outOfOrder(), 0u);
    EXPECT_EQ(ct.activeConnections(), 4u * 50u);
}

// ---------------------------------------------------------------------
// Spin-bit RTT observer
// ---------------------------------------------------------------------

std::size_t
encodeSpin(std::uint8_t spin, std::uint8_t *buf, std::size_t cap)
{
    SpinRequest m;
    m.spin = spin;
    return encode(m, buf, cap);
}

TEST(SpinRttApp, EdgesMakeRttSamples)
{
    AppConfig cfg;
    cfg.numShards = 1;
    SpinRttApp app(cfg);
    std::uint8_t payload[SpinRequest::wireSize];
    std::uint8_t out[64];

    // First packet initializes, no edge.
    encodeSpin(0, payload, sizeof(payload));
    AppResult res = app.handle(0, makeReq(9, 0, 1000, payload,
                                          sizeof(payload)),
                               out, sizeof(out));
    ASSERT_TRUE(res.ok);
    auto resp = decodeSpinResponse(out, res.payloadLen);
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->edges, 0u);
    EXPECT_EQ(app.edges(), 0u);

    // First flip: an edge, but no RTT yet (needs two edges).
    encodeSpin(1, payload, sizeof(payload));
    res = app.handle(0, makeReq(9, 1, 2000, payload, sizeof(payload)),
                     out, sizeof(out));
    ASSERT_TRUE(res.ok);
    EXPECT_EQ(app.edges(), 1u);
    EXPECT_EQ(app.samples(), 0u);

    // Second flip 250us later: one RTT sample of exactly the gap.
    encodeSpin(0, payload, sizeof(payload));
    res = app.handle(0, makeReq(9, 2, 2000 + 250000, payload,
                                sizeof(payload)),
                     out, sizeof(out));
    ASSERT_TRUE(res.ok);
    resp = decodeSpinResponse(out, res.payloadLen);
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(app.edges(), 2u);
    EXPECT_EQ(app.samples(), 1u);
    EXPECT_EQ(resp->lastRttNs, 250000u);
    EXPECT_EQ(resp->edges, 2u);

    // Unchanged spin adds no edge.
    encodeSpin(0, payload, sizeof(payload));
    app.handle(0, makeReq(9, 3, 2600000, payload, sizeof(payload)),
               out, sizeof(out));
    EXPECT_EQ(app.edges(), 2u);

    EXPECT_EQ(app.trackedFlows(), 1u);
    app.sweepIdle(2600000 + cfg.flowTimeoutNs + 1);
    EXPECT_EQ(app.trackedFlows(), 0u);

    // The histogram kept the sample even after flow expiry.
    EXPECT_EQ(app.rttHistogram().count(), 1u);
}

// ---------------------------------------------------------------------
// Codecs: round-trips and fail-closed decoding
// ---------------------------------------------------------------------

TEST(AppCodec, RoundTripsAllMessages)
{
    std::uint8_t buf[64];

    HhRequest hq;
    hq.key = 0xdeadbeef;
    hq.weight = 12345;
    ASSERT_EQ(encode(hq, buf, sizeof(buf)), HhRequest::wireSize);
    auto hq2 = decodeHhRequest(buf, HhRequest::wireSize);
    ASSERT_TRUE(hq2.has_value());
    EXPECT_EQ(hq2->key, hq.key);
    EXPECT_EQ(hq2->weight, hq.weight);

    HhResponse hr;
    hr.estimate = 0x1122334455667788ULL;
    hr.hot = 1;
    ASSERT_EQ(encode(hr, buf, sizeof(buf)), HhResponse::wireSize);
    auto hr2 = decodeHhResponse(buf, HhResponse::wireSize);
    ASSERT_TRUE(hr2.has_value());
    EXPECT_EQ(hr2->estimate, hr.estimate);
    EXPECT_EQ(hr2->hot, 1u);

    CtRequest cq;
    cq.verb = CtVerb::Data;
    cq.srcIp = 0x0a000001;
    cq.dstIp = 0xc0a80102;
    cq.srcPort = 1234;
    cq.dstPort = 443;
    cq.seqNo = 99;
    ASSERT_EQ(encode(cq, buf, sizeof(buf)), CtRequest::wireSize);
    auto cq2 = decodeCtRequest(buf, CtRequest::wireSize);
    ASSERT_TRUE(cq2.has_value());
    EXPECT_EQ(cq2->verb, cq.verb);
    EXPECT_EQ(cq2->srcIp, cq.srcIp);
    EXPECT_EQ(cq2->dstIp, cq.dstIp);
    EXPECT_EQ(cq2->srcPort, cq.srcPort);
    EXPECT_EQ(cq2->dstPort, cq.dstPort);
    EXPECT_EQ(cq2->seqNo, cq.seqNo);

    CtResponse cr;
    cr.backend = 17;
    cr.expectedSeq = 100;
    cr.state = 1;
    ASSERT_EQ(encode(cr, buf, sizeof(buf)), CtResponse::wireSize);
    auto cr2 = decodeCtResponse(buf, CtResponse::wireSize);
    ASSERT_TRUE(cr2.has_value());
    EXPECT_EQ(cr2->backend, 17u);
    EXPECT_EQ(cr2->expectedSeq, 100u);
    EXPECT_EQ(cr2->state, 1u);

    SpinRequest sq;
    sq.spin = 1;
    ASSERT_EQ(encode(sq, buf, sizeof(buf)), SpinRequest::wireSize);
    auto sq2 = decodeSpinRequest(buf, SpinRequest::wireSize);
    ASSERT_TRUE(sq2.has_value());
    EXPECT_EQ(sq2->spin, 1u);

    SpinResponse sr;
    sr.spin = 1;
    sr.edges = 42;
    sr.lastRttNs = 0xaabbccddULL;
    ASSERT_EQ(encode(sr, buf, sizeof(buf)), SpinResponse::wireSize);
    auto sr2 = decodeSpinResponse(buf, SpinResponse::wireSize);
    ASSERT_TRUE(sr2.has_value());
    EXPECT_EQ(sr2->spin, 1u);
    EXPECT_EQ(sr2->edges, 42u);
    EXPECT_EQ(sr2->lastRttNs, sr.lastRttNs);
}

TEST(AppCodec, DecodersFailClosed)
{
    std::uint8_t buf[64] = {};

    // Length must match exactly — short AND long reject.
    EXPECT_FALSE(decodeHhRequest(buf, HhRequest::wireSize - 1));
    EXPECT_FALSE(decodeHhRequest(buf, HhRequest::wireSize + 1));
    EXPECT_FALSE(decodeCtRequest(buf, CtRequest::wireSize - 1));
    EXPECT_FALSE(decodeCtRequest(buf, CtRequest::wireSize + 1));
    EXPECT_FALSE(decodeSpinRequest(buf, 0));
    EXPECT_FALSE(decodeSpinRequest(buf, SpinRequest::wireSize + 1));
    EXPECT_FALSE(decodeHhResponse(buf, HhResponse::wireSize - 1));
    EXPECT_FALSE(decodeCtResponse(buf, CtResponse::wireSize + 1));
    EXPECT_FALSE(decodeSpinResponse(buf, SpinResponse::wireSize - 1));

    // Out-of-range enum/flag bytes reject.
    CtRequest cq;
    encode(cq, buf, sizeof(buf));
    buf[0] = 3; // verb beyond Close
    EXPECT_FALSE(decodeCtRequest(buf, CtRequest::wireSize));

    SpinRequest sq;
    encode(sq, buf, sizeof(buf));
    buf[0] = 2; // spin beyond one bit
    EXPECT_FALSE(decodeSpinRequest(buf, SpinRequest::wireSize));

    // Encoders refuse too-small buffers.
    HhRequest hq;
    EXPECT_EQ(encode(hq, buf, HhRequest::wireSize - 1), 0u);
    SpinResponse sr;
    EXPECT_EQ(encode(sr, buf, SpinResponse::wireSize - 1), 0u);
}

TEST(AppCodec, FuzzRandomBytesNeverCrash)
{
    Rng rng(0xa99f077);
    std::uint8_t buf[64];
    unsigned accepted = 0;
    for (int iter = 0; iter < 20000; ++iter) {
        const std::size_t len = rng.uniformInt(sizeof(buf) + 1);
        for (std::size_t i = 0; i < len; ++i)
            buf[i] = static_cast<std::uint8_t>(rng.next());
        if (decodeHhRequest(buf, len))
            ++accepted; // any length-8 bytes are a valid HhRequest
        (void)decodeHhResponse(buf, len);
        (void)decodeCtRequest(buf, len);
        (void)decodeCtResponse(buf, len);
        (void)decodeSpinRequest(buf, len);
        (void)decodeSpinResponse(buf, len);
    }
    // Sanity: the fuzzer did exercise the accept path too.
    EXPECT_GT(accepted, 0u);
}

// ---------------------------------------------------------------------
// Synthesis: the shared request generator both environments use
// ---------------------------------------------------------------------

TEST(AppSynthesis, ConntrackLifecycleAndStableTuple)
{
    EXPECT_EQ(ctVerbFor(0), CtVerb::Open);
    EXPECT_EQ(ctVerbFor(1), CtVerb::Data);
    EXPECT_EQ(ctVerbFor(ctConnectionLength - 1), CtVerb::Close);
    EXPECT_EQ(ctVerbFor(ctConnectionLength), CtVerb::Open);

    // The 5-tuple is a function of flowId alone (the seqNo advances):
    // every packet of a connection hashes to the same shard.
    const CtRequest a = ctRequestFor(77, 1);
    const CtRequest b = ctRequestFor(77, 50);
    EXPECT_EQ(a.srcIp, b.srcIp);
    EXPECT_EQ(a.dstIp, b.dstIp);
    EXPECT_EQ(a.srcPort, b.srcPort);
    EXPECT_EQ(a.dstPort, b.dstPort);
    const CtRequest c = ctRequestFor(78, 1);
    EXPECT_TRUE(c.srcIp != a.srcIp || c.srcPort != a.srcPort ||
                c.dstIp != a.dstIp);
}

TEST(AppSynthesis, SynthesizedRequestsDecode)
{
    std::uint8_t buf[64];
    for (unsigned k = 0; k < numAppKinds; ++k) {
        const AppKind kind = static_cast<AppKind>(k);
        for (std::uint64_t seq = 0; seq < 130; ++seq) {
            const std::size_t n = synthesizeRequest(
                kind, 123, seq, static_cast<std::uint8_t>(seq & 1),
                buf, sizeof(buf));
            ASSERT_GT(n, 0u);
            switch (kind) {
              case AppKind::HeavyHitter: {
                const auto m = decodeHhRequest(buf, n);
                ASSERT_TRUE(m.has_value());
                EXPECT_EQ(m->key, 123u);
                break;
              }
              case AppKind::ConntrackLb: {
                const auto m = decodeCtRequest(buf, n);
                ASSERT_TRUE(m.has_value());
                EXPECT_EQ(m->verb, ctVerbFor(seq));
                break;
              }
              case AppKind::SpinRtt: {
                const auto m = decodeSpinRequest(buf, n);
                ASSERT_TRUE(m.has_value());
                EXPECT_EQ(m->spin, seq & 1);
                break;
              }
            }
        }
        // Zero capacity refuses cleanly.
        EXPECT_EQ(synthesizeRequest(kind, 1, 0, 0, buf, 2), 0u);
    }
}

// ---------------------------------------------------------------------
// Simulator wrapper: registration and determinism
// ---------------------------------------------------------------------

TEST(StatefulAppWorkload, RegisteredForAllThreeKinds)
{
    ASSERT_EQ(workloads::appKinds().size(), 3u);
    for (const workloads::Kind k : workloads::appKinds()) {
        const auto wl = workloads::makeWorkload(k, 1, 8);
        ASSERT_NE(wl, nullptr);
        EXPECT_EQ(wl->kind(), k);
        EXPECT_NE(dynamic_cast<workloads::StatefulApp *>(wl.get()),
                  nullptr);
        // The stateless golden contract: app kinds stay OUT of
        // allKinds() (fig10 goldens enumerate it).
        for (const workloads::Kind g : workloads::allKinds())
            EXPECT_NE(g, k);
    }
}

dp::SdpResults
runAppSim(workloads::Kind kind, unsigned simThreads,
          std::uint64_t *processed, std::uint64_t *handledOk)
{
    dp::SdpConfig cfg;
    cfg.plane = dp::PlaneKind::HyperPlane;
    cfg.org = dp::QueueOrg::ScaleOut;
    cfg.numCores = 4;
    cfg.numQueues = 16;
    cfg.offeredRatePerSec = 2e6;
    cfg.warmupUs = 50.0;
    cfg.measureUs = 400.0;
    cfg.seed = 77;
    cfg.workload = kind;
    cfg.simThreads = simThreads;
    dp::SdpSystem sys(cfg);
    const dp::SdpResults r = sys.run();
    auto &wl = dynamic_cast<workloads::StatefulApp &>(sys.workload());
    *processed = wl.processed();
    *handledOk = wl.handledOk();
    return r;
}

TEST(StatefulAppWorkload, DeterministicAcrossRunsAndSimThreads)
{
    for (const workloads::Kind kind : workloads::appKinds()) {
        std::uint64_t p1 = 0, ok1 = 0;
        const dp::SdpResults r1 = runAppSim(kind, 1, &p1, &ok1);
        ASSERT_GT(r1.completions, 0u);
        ASSERT_GT(p1, 0u);
        // Every synthesized request must decode.
        EXPECT_EQ(ok1, p1);

        for (const unsigned threads : {1u, 4u}) {
            std::uint64_t p2 = 0, ok2 = 0;
            const dp::SdpResults r2 = runAppSim(kind, threads, &p2,
                                                &ok2);
            EXPECT_EQ(r2.completions, r1.completions)
                << workloads::toString(kind) << " threads " << threads;
            EXPECT_EQ(r2.p99LatencyUs, r1.p99LatencyUs)
                << workloads::toString(kind) << " threads " << threads;
            EXPECT_EQ(p2, p1);
            EXPECT_EQ(ok2, ok1);
        }
    }
}

} // namespace
} // namespace app
} // namespace hyperplane
