/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/rng.hh"

namespace hyperplane {
namespace {

TEST(Rng, DeterministicForFixedSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 5);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(7);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntRespectsBound)
{
    Rng rng(11);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.uniformInt(17), 17u);
}

TEST(Rng, UniformIntCoversAllValues)
{
    Rng rng(13);
    std::vector<int> counts(8, 0);
    for (int i = 0; i < 8000; ++i)
        ++counts[rng.uniformInt(8)];
    for (int c : counts)
        EXPECT_GT(c, 800); // each bucket near 1000
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(3);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceProbabilityApproximatelyHolds)
{
    Rng rng(5);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.05) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.05, 0.005);
}

TEST(Rng, ExponentialMeanMatches)
{
    Rng rng(17);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(3.0);
    EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Rng, ExponentialAlwaysPositive)
{
    Rng rng(19);
    for (int i = 0; i < 10000; ++i)
        EXPECT_GT(rng.exponential(1.0), 0.0);
}

TEST(Rng, GaussianMomentsMatch)
{
    Rng rng(23);
    double sum = 0.0, sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian(10.0, 2.0);
        sum += g;
        sq += g * g;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.05);
    EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, SplitStreamsAreDecorrelated)
{
    Rng parent(31);
    Rng child = parent.split();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += parent.next() == child.next() ? 1 : 0;
    EXPECT_LT(same, 5);
}

TEST(Rng, ShufflePreservesElements)
{
    Rng rng(37);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto sorted = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleActuallyPermutes)
{
    Rng rng(41);
    std::vector<int> v(64);
    for (int i = 0; i < 64; ++i)
        v[i] = i;
    auto orig = v;
    rng.shuffle(v);
    EXPECT_NE(v, orig); // astronomically unlikely to be identity
}

} // namespace
} // namespace hyperplane
