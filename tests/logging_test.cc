/**
 * @file
 * Unit tests for the logging helpers.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"

namespace hyperplane {
namespace {

TEST(Logging, WarnIncrementsCounter)
{
    const unsigned long before = warnCount();
    hp_warn("test warning %d", 42);
    EXPECT_EQ(warnCount(), before + 1);
}

TEST(Logging, InformDoesNotCountAsWarning)
{
    const unsigned long before = warnCount();
    hp_inform("informational message");
    EXPECT_EQ(warnCount(), before);
}

TEST(Logging, AssertPassesOnTrueCondition)
{
    hp_assert(1 + 1 == 2, "arithmetic works");
    SUCCEED();
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(hp_panic("boom %d", 7), "boom 7");
}

TEST(LoggingDeath, AssertAbortsWithMessage)
{
    EXPECT_DEATH(hp_assert(false, "invariant %s broken", "x"),
                 "invariant x broken");
}

TEST(LoggingDeath, FatalExitsWithErrorCode)
{
    EXPECT_EXIT(hp_fatal("bad config"),
                ::testing::ExitedWithCode(1), "bad config");
}

} // namespace
} // namespace hyperplane
