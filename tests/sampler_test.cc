/**
 * @file
 * Unit tests for streaming scalar statistics.
 */

#include <gtest/gtest.h>

#include "sim/rng.hh"
#include "stats/sampler.hh"

namespace hyperplane {
namespace stats {
namespace {

TEST(Sampler, EmptyIsZero)
{
    Sampler s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Sampler, SingleSample)
{
    Sampler s;
    s.record(5.0);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 5.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(Sampler, KnownMeanAndVariance)
{
    Sampler s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.record(v);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Sample variance of this classic dataset is 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(Sampler, MergeMatchesCombinedStream)
{
    Rng rng(9);
    Sampler all, a, b;
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.gaussian(3.0, 1.5);
        all.record(v);
        (i % 2 == 0 ? a : b).record(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Sampler, MergeWithEmptyIsIdentity)
{
    Sampler a, empty;
    a.record(1.0);
    a.record(2.0);
    const double mean = a.mean();
    a.merge(empty);
    EXPECT_DOUBLE_EQ(a.mean(), mean);

    Sampler b;
    b.merge(a);
    EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(Sampler, ClearResets)
{
    Sampler s;
    s.record(1.0);
    s.clear();
    EXPECT_EQ(s.count(), 0u);
}

TEST(Counter, IncrementAndName)
{
    Counter c("events");
    EXPECT_EQ(c.name(), "events");
    c.inc();
    c.inc(9);
    EXPECT_EQ(c.value(), 10u);
    c.clear();
    EXPECT_EQ(c.value(), 0u);
}

TEST(RateMeter, ComputesEventsPerSecond)
{
    RateMeter m;
    m.start(0);
    m.record(3000);
    // 1 ms of simulated time at 3 GHz.
    const Tick oneMs = usToTicks(1000.0);
    EXPECT_NEAR(m.ratePerSecond(oneMs), 3.0e6, 1.0);
}

TEST(RateMeter, ZeroWindowIsZeroRate)
{
    RateMeter m;
    m.start(100);
    m.record(5);
    EXPECT_DOUBLE_EQ(m.ratePerSecond(100), 0.0);
}

} // namespace
} // namespace stats
} // namespace hyperplane
