/**
 * @file
 * Randomized-configuration robustness tests: the simulator must run
 * cleanly and keep its invariants for arbitrary (seeded, reproducible)
 * combinations of plane, organization, workload, shape, core/queue
 * counts, and feature flags.
 */

#include <gtest/gtest.h>

#include "dp/sdp_system.hh"
#include "sim/rng.hh"

namespace hyperplane {
namespace dp {
namespace {

SdpConfig
randomConfig(Rng &rng)
{
    SdpConfig cfg;
    const PlaneKind planes[] = {
        PlaneKind::Spinning, PlaneKind::HyperPlane,
        PlaneKind::HyperPlaneSwReady, PlaneKind::InterruptDriven};
    cfg.plane = planes[rng.uniformInt(4)];
    const unsigned coreChoices[] = {1, 2, 4};
    cfg.numCores = coreChoices[rng.uniformInt(3)];
    const QueueOrg orgs[] = {QueueOrg::ScaleOut, QueueOrg::ScaleUp2,
                             QueueOrg::ScaleUpAll};
    cfg.org = orgs[rng.uniformInt(3)];
    if (cfg.org == QueueOrg::ScaleUp2 && cfg.numCores % 2 != 0)
        cfg.org = QueueOrg::ScaleUpAll;
    cfg.numQueues = static_cast<unsigned>(
        cfg.numCores * (1 + rng.uniformInt(64)));
    cfg.workload =
        workloads::allKinds()[rng.uniformInt(6)];
    cfg.shape = traffic::allShapes()[rng.uniformInt(4)];
    cfg.policy =
        static_cast<core::ServicePolicy>(rng.uniformInt(3));
    cfg.powerOptimized = rng.chance(0.3);
    cfg.batchSize = 1 + static_cast<unsigned>(rng.uniformInt(8));
    cfg.jitter = rng.chance(0.5) ? ServiceJitter::Exponential
                                 : ServiceJitter::None;
    cfg.imbalance = rng.chance(0.3) ? 0.2 : 0.0;
    if (cfg.plane == PlaneKind::HyperPlane) {
        cfg.workStealing = rng.chance(0.3);
        cfg.inOrderQueues = rng.chance(0.3);
        if (rng.chance(0.2))
            cfg.backgroundQuantum = usToTicks(1.0);
    }
    const bool hyper = cfg.plane == PlaneKind::HyperPlane ||
                       cfg.plane == PlaneKind::HyperPlaneSwReady;
    if (hyper && rng.chance(0.4)) {
        // Fault-campaign dimension: lossy notification paths with the
        // recovery machinery armed.  The invariants below must survive
        // any of these combinations.
        cfg.fault.dropSnoopRate = rng.chance(0.7) ? 0.1 * rng.uniform()
                                                  : 0.0;
        cfg.fault.delaySnoopRate = rng.chance(0.5) ? 0.1 * rng.uniform()
                                                   : 0.0;
        cfg.fault.suppressWakeRate =
            rng.chance(0.3) ? 0.1 * rng.uniform() : 0.0;
        if (rng.chance(0.3))
            cfg.fault.spuriousWakesPerSec = 2e3;
        if (rng.chance(0.3)) {
            cfg.fault.stormRatePerSec = 2e3;
            cfg.fault.stormBurst = 4;
        }
        cfg.recovery.watchdog = true;
        cfg.recovery.gracefulDegradation = true;
        cfg.recovery.watchdogPeriodUs = 50.0;
    }
    cfg.offeredRatePerSec = 2e4 + rng.uniform() * 3e5;
    cfg.warmupUs = 200.0;
    cfg.measureUs = 1500.0;
    cfg.seed = rng.next();
    return cfg;
}

class FuzzConfig : public ::testing::TestWithParam<int>
{
};

TEST_P(FuzzConfig, RunsCleanlyAndKeepsInvariants)
{
    Rng rng(777 + GetParam());
    const SdpConfig cfg = randomConfig(rng);
    SCOPED_TRACE(std::string(toString(cfg.plane)) + "/" +
                 toString(cfg.org) + "/" +
                 workloads::toString(cfg.workload) + "/" +
                 traffic::toString(cfg.shape) + " cores=" +
                 std::to_string(cfg.numCores) + " queues=" +
                 std::to_string(cfg.numQueues));

    SdpSystem sys(cfg);
    const SdpResults r = sys.run();

    // Conservation across the whole run.
    std::uint64_t dequeued = 0;
    for (QueueId q = 0; q < sys.queues().size(); ++q) {
        dequeued += sys.queues()[q].totalDequeued();
        EXPECT_EQ(sys.queues()[q].doorbell().count(),
                  sys.queues()[q].depth());
    }
    EXPECT_EQ(sys.queues().totalEnqueued(),
              dequeued + sys.queues().totalBacklog());

    // Fault campaigns: the lost-notification ledger must balance, and
    // after (at most) two watchdog sweeps nothing may remain stuck —
    // drops just before the cutoff are rescued by the first sweep.
    if (auto *inj = sys.faultInjector()) {
        EXPECT_EQ(inj->lostInjected.value(),
                  inj->watchdogRecovered.value() +
                      inj->selfRecovered.value() + inj->outstandingLost());
    }
    if (sys.watchdog()) {
        sys.watchdog()->sweepOnce();
        sys.watchdog()->sweepOnce();
        EXPECT_EQ(sys.stuckQueues(), 0u);
    }

    // Sane digested results.
    EXPECT_GE(r.throughputMtps, 0.0);
    EXPECT_LE(r.p50LatencyUs, r.p99LatencyUs + 1e-9);
    EXPECT_GE(r.activeFraction, 0.0);
    EXPECT_LE(r.activeFraction, 1.0);
    EXPECT_NEAR(r.usefulIpc + r.uselessIpc, r.ipc, 1e-9);
    EXPECT_GT(r.avgCorePowerW, 0.0);
    EXPECT_LT(r.avgCorePowerW, 15.0);

    // Time accounting per core never exceeds the window materially.
    const auto window = usToTicks(cfg.measureUs);
    for (unsigned i = 0; i < cfg.numCores; ++i) {
        const auto &a = sys.core(i).activity();
        const auto accounted =
            a.activeTicks + a.c0HaltTicks + a.c1HaltTicks;
        EXPECT_LT(static_cast<double>(accounted),
                  1.10 * static_cast<double>(window));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzConfig, ::testing::Range(0, 24));

} // namespace
} // namespace dp
} // namespace hyperplane
