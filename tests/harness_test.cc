/**
 * @file
 * Unit tests for the experiment harness.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "harness/export.hh"
#include "harness/runner.hh"
#include "json_check.hh"

namespace hyperplane {
namespace harness {
namespace {

TEST(Harness, RoughCyclesOrderMatchesWorkloadWeight)
{
    // Crypto and erasure coding are the heavy tasks; encapsulation and
    // dispatching the light ones (Figure 8's y-axis ranges).
    const double encap =
        roughCyclesPerItem(workloads::Kind::PacketEncapsulation);
    const double crypto =
        roughCyclesPerItem(workloads::Kind::CryptoForwarding);
    const double erasure =
        roughCyclesPerItem(workloads::Kind::ErasureCoding);
    const double dispatch =
        roughCyclesPerItem(workloads::Kind::RequestDispatching);
    EXPECT_GT(crypto, 3 * encap);
    EXPECT_GT(erasure, crypto);
    EXPECT_LT(dispatch, 2 * encap);
}

TEST(Harness, RoughCyclesScalesWithPayload)
{
    EXPECT_GT(roughCyclesPerItem(workloads::Kind::CryptoForwarding,
                                 4096),
              2 * roughCyclesPerItem(workloads::Kind::CryptoForwarding,
                                     1024));
}

TEST(Harness, SaturatingRateExceedsAnalyticCapacity)
{
    dp::SdpConfig cfg;
    cfg.workload = workloads::Kind::PacketEncapsulation;
    cfg.numCores = 2;
    const double perItem = roughCyclesPerItem(cfg.workload);
    const double capacity = 2 * clockGHz * 1e9 / perItem;
    EXPECT_GT(saturatingRate(cfg), 1.5 * capacity);
}

TEST(Harness, CalibrateCapacityInPlausibleRange)
{
    dp::SdpConfig cfg;
    cfg.plane = dp::PlaneKind::HyperPlane;
    cfg.numCores = 1;
    cfg.numQueues = 32;
    cfg.workload = workloads::Kind::PacketEncapsulation;
    cfg.shape = traffic::Shape::FB;
    cfg.seed = 3;
    const double cap = calibrateCapacity(cfg);
    // One core, ~1.5 us/item service: a few hundred thousand tasks/s.
    EXPECT_GT(cap, 2e5);
    EXPECT_LT(cap, 1e6);
}

TEST(Harness, RunAtLoadTracksOfferedFraction)
{
    dp::SdpConfig cfg;
    cfg.plane = dp::PlaneKind::HyperPlane;
    cfg.numCores = 1;
    cfg.numQueues = 32;
    cfg.workload = workloads::Kind::PacketEncapsulation;
    cfg.shape = traffic::Shape::FB;
    cfg.seed = 3;
    cfg.warmupUs = 500.0;
    cfg.measureUs = 5000.0;
    const auto r = runAtLoad(cfg, 6e5, 0.5);
    EXPECT_NEAR(r.throughputMtps, 0.3, 0.05);
}

TEST(Harness, LoadSweepReturnsOnePointPerLoad)
{
    dp::SdpConfig cfg;
    cfg.plane = dp::PlaneKind::HyperPlane;
    cfg.numCores = 1;
    cfg.numQueues = 16;
    cfg.workload = workloads::Kind::RequestDispatching;
    cfg.seed = 3;
    cfg.warmupUs = 300.0;
    cfg.measureUs = 2000.0;
    const auto points = runLoadSweep(cfg, 5e5, {0.2, 0.6});
    ASSERT_EQ(points.size(), 2u);
    EXPECT_DOUBLE_EQ(points[0].loadFraction, 0.2);
    EXPECT_LT(points[0].results.completions,
              points[1].results.completions);
}

TEST(Harness, ZeroLoadConfigKeepsQueueingNegligible)
{
    dp::SdpConfig cfg;
    cfg.workload = workloads::Kind::ErasureCoding;
    cfg = zeroLoadConfig(cfg, 1000);
    // Rate capped so even a 1000-queue spinning sweep fits between
    // arrivals.
    EXPECT_LE(cfg.offeredRatePerSec, 5000.0);
    // Window sized for the target completion count.
    EXPECT_NEAR(cfg.measureUs * cfg.offeredRatePerSec / 1e6, 1000.0,
                1.0);
}

TEST(Harness, RowLabelCombinesPlaneAndShape)
{
    dp::SdpConfig cfg;
    cfg.plane = dp::PlaneKind::Spinning;
    cfg.shape = traffic::Shape::NC;
    EXPECT_EQ(rowLabel(cfg), "spinning/NC");
}

TEST(Harness, ResultsJsonIsWellFormed)
{
    dp::SdpResults r;
    r.throughputMtps = 1.25;
    r.completions = 1000;
    r.avgLatencyUs = 3.5;
    const std::string json = resultsJson(r);
    EXPECT_TRUE(hyperplane::testing::jsonWellFormed(json)) << json;
    EXPECT_NE(json.find("\"throughput_mtps\":1.25"), std::string::npos);
    EXPECT_NE(json.find("\"completions\":1000"), std::string::npos);
    EXPECT_NE(json.find("\"avg_latency_us\":3.5"), std::string::npos);
    EXPECT_NE(json.find("\"breakdown_samples\""), std::string::npos);
    EXPECT_NE(json.find("\"trace_events\""), std::string::npos);
}

TEST(Harness, LoadSweepJsonIsWellFormed)
{
    dp::SdpResults r;
    r.throughputMtps = 0.5;
    const std::vector<NamedSweep> sweeps{
        {"spinning", {{0.2, r}, {0.8, r}}},
        {"hyperplane", {{0.2, r}}},
    };
    const std::string json = loadSweepJson(sweeps);
    EXPECT_TRUE(hyperplane::testing::jsonWellFormed(json)) << json;
    EXPECT_NE(json.find("\"name\":\"spinning\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"hyperplane\""), std::string::npos);
    EXPECT_NE(json.find("\"load\":0.8"), std::string::npos);
}

TEST(Harness, ArgParsingFindsFlagValues)
{
    const char *argvArr[] = {"prog", "--json", "out.json", "--flag"};
    char **argv = const_cast<char **>(argvArr);
    EXPECT_STREQ(argValue(4, argv, "--json"), "out.json");
    EXPECT_EQ(argValue(4, argv, "--flag"), nullptr); // no value slot
    EXPECT_EQ(argValue(4, argv, "--none"), nullptr);
    EXPECT_TRUE(argPresent(4, argv, "--flag"));
    EXPECT_FALSE(argPresent(4, argv, "--none"));
}

} // namespace
} // namespace harness
} // namespace hyperplane
