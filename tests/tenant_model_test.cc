/**
 * @file
 * Unit tests for the tenant-side receive model (Figure 2 steps 2d-3).
 */

#include <gtest/gtest.h>

#include "dp/sdp_system.hh"
#include "dp/tenant_model.hh"

namespace hyperplane {
namespace dp {
namespace {

queueing::WorkItem
itemAt(Tick arrival)
{
    queueing::WorkItem it;
    it.arrivalTick = arrival;
    return it;
}

TEST(TenantModel, UmwaitAddsFixedWakeCost)
{
    TenantParams p;
    p.notify = TenantNotify::Umwait;
    p.umwaitWakeCycles = 150;
    p.receiveCycles = 100;
    TenantModel tm(p);
    const Tick held = tm.deliver(itemAt(1000), 5000);
    EXPECT_EQ(held, 5000u + 150 + 100);
    EXPECT_EQ(tm.delivered(), 1u);
    EXPECT_NEAR(tm.latency().mean(), ticksToUs(held - 1000), 1e-9);
}

TEST(TenantModel, SpinReactionBoundedByPollLoop)
{
    TenantParams p;
    p.notify = TenantNotify::Spin;
    p.spinPollCycles = 20;
    p.receiveCycles = 0;
    TenantModel tm(p);
    for (int i = 0; i < 200; ++i) {
        const Tick held = tm.deliver(itemAt(0), 1000);
        EXPECT_GE(held, 1000u);
        EXPECT_LE(held, 1020u);
    }
}

TEST(TenantModel, SpinFasterThanUmwaitOnAverage)
{
    TenantParams spin;
    spin.notify = TenantNotify::Spin;
    TenantParams umwait;
    umwait.notify = TenantNotify::Umwait;
    TenantModel a(spin), b(umwait);
    for (int i = 0; i < 500; ++i) {
        a.deliver(itemAt(0), 1000);
        b.deliver(itemAt(0), 1000);
    }
    EXPECT_LT(a.latency().mean(), b.latency().mean());
}

TEST(TenantModel, ResetClearsStats)
{
    TenantModel tm;
    tm.deliver(itemAt(0), 100);
    tm.resetStats();
    EXPECT_EQ(tm.delivered(), 0u);
    EXPECT_EQ(tm.latency().count(), 0u);
}

TEST(TenantModel, NamesReadable)
{
    EXPECT_STREQ(toString(TenantNotify::Spin), "spin");
    EXPECT_STREQ(toString(TenantNotify::Umwait), "umwait");
}

TEST(TenantModel, EndToEndLatencyReportedBySystem)
{
    SdpConfig cfg;
    cfg.plane = PlaneKind::HyperPlane;
    cfg.numCores = 1;
    cfg.numQueues = 16;
    cfg.offeredRatePerSec = 5e4;
    cfg.warmupUs = 300.0;
    cfg.measureUs = 3000.0;
    cfg.modelTenants = true;
    cfg.seed = 3;
    const auto r = runSdp(cfg);
    ASSERT_GT(r.completions, 50u);
    // End-to-end includes the tenant hop: strictly beyond data-plane
    // completion latency, but only by a sub-microsecond margin.
    EXPECT_GT(r.e2eAvgLatencyUs, r.avgLatencyUs);
    EXPECT_LT(r.e2eAvgLatencyUs, r.avgLatencyUs + 0.5);
    EXPECT_GE(r.e2eP99LatencyUs, r.e2eAvgLatencyUs);
}

TEST(TenantModel, DisabledByDefault)
{
    SdpConfig cfg;
    cfg.plane = PlaneKind::HyperPlane;
    cfg.numCores = 1;
    cfg.numQueues = 8;
    cfg.offeredRatePerSec = 5e4;
    cfg.warmupUs = 200.0;
    cfg.measureUs = 1000.0;
    SdpSystem sys(cfg);
    const auto r = sys.run();
    EXPECT_EQ(sys.tenants(), nullptr);
    EXPECT_DOUBLE_EQ(r.e2eAvgLatencyUs, 0.0);
}

} // namespace
} // namespace dp
} // namespace hyperplane
