/**
 * @file
 * Unit tests for the telemetry plane: sharded counters, histogram
 * shards, the flight recorder (including concurrent wraparound), the
 * operational event log, Prometheus rendering, build info, and the
 * metrics endpoint (HTTP + UDP one-shot; skipped without sockets).
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "json_check.hh"
#include "net/simd/dispatch.hh"
#include "sim/rng.hh"
#include "stats/registry.hh"
#include "telemetry/build_info.hh"
#include "telemetry/event_log.hh"
#include "telemetry/flight_recorder.hh"
#include "telemetry/metrics_server.hh"
#include "telemetry/prometheus.hh"
#include "telemetry/shard_stats.hh"

namespace hyperplane {
namespace telemetry {
namespace {

TEST(CounterShards, PerShardAddsAggregate)
{
    CounterShards cs(3);
    cs.add(0, HotCounter::RxPackets, 10);
    cs.add(1, HotCounter::RxPackets, 20);
    cs.add(2, HotCounter::RxPackets);
    cs.add(1, HotCounter::Served, 5);
    EXPECT_EQ(cs.total(HotCounter::RxPackets), 31u);
    EXPECT_EQ(cs.total(HotCounter::Served), 5u);
    EXPECT_EQ(cs.total(HotCounter::TxPackets), 0u);
    EXPECT_EQ(cs.shardValue(1, HotCounter::RxPackets), 20u);
}

TEST(CounterShards, ConcurrentWritersNeverLoseCounts)
{
    // One writer per shard is the contract; under TSan this checks the
    // relaxed load+store discipline is race-free.
    constexpr unsigned shards = 4;
    constexpr std::uint64_t perShard = 100000;
    CounterShards cs(shards);
    std::vector<std::thread> ts;
    for (unsigned s = 0; s < shards; ++s) {
        ts.emplace_back([&cs, s] {
            for (std::uint64_t i = 0; i < perShard; ++i)
                cs.add(s, HotCounter::RxPackets);
        });
    }
    std::atomic<bool> run{true};
    std::thread reader([&] {
        std::uint64_t prev = 0;
        while (run.load(std::memory_order_relaxed)) {
            const std::uint64_t t = cs.total(HotCounter::RxPackets);
            ASSERT_GE(t, prev); // monotone under concurrent reads
            prev = t;
        }
    });
    for (auto &t : ts)
        t.join();
    run.store(false);
    reader.join();
    EXPECT_EQ(cs.total(HotCounter::RxPackets), shards * perShard);
}

TEST(HistogramShard, MatchesLogHistogramQuantiles)
{
    HistogramShard hs(100.0, 1.05, 512);
    stats::LogHistogram ref(100.0, 1.05, 512);
    Rng rng(11);
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.exponential(4000.0) + 100.0;
        hs.record(v);
        ref.record(v);
    }
    const stats::LogHistogram snap = hs.snapshot();
    EXPECT_EQ(snap.count(), ref.count());
    EXPECT_DOUBLE_EQ(snap.min(), ref.min());
    EXPECT_DOUBLE_EQ(snap.max(), ref.max());
    for (double q : {0.5, 0.9, 0.99, 0.999})
        EXPECT_DOUBLE_EQ(snap.quantile(q), ref.quantile(q));
}

TEST(StageLatencyShards, AggregatesAcrossShardsAndTenants)
{
    StageLatencyShards sl(2, 2, 100.0, 1.05, 256);
    // Shard 0 records tenant 0, shard 1 records tenant 1.
    for (int i = 0; i < 100; ++i) {
        sl.record(0, ServerStage::EndToEnd, 0, 1000.0);
        sl.record(1, ServerStage::EndToEnd, 1, 9000.0);
    }
    sl.record(0, ServerStage::RxAdmit, 0, 500.0);

    EXPECT_EQ(sl.samples(ServerStage::EndToEnd), 200u);
    EXPECT_EQ(sl.samples(ServerStage::RxAdmit), 1u);
    EXPECT_EQ(sl.samples(ServerStage::ServiceTx), 0u);

    const auto t0 = sl.aggregate(ServerStage::EndToEnd, 0);
    const auto t1 = sl.aggregate(ServerStage::EndToEnd, 1);
    const auto all = sl.aggregate(ServerStage::EndToEnd);
    EXPECT_EQ(t0.count(), 100u);
    EXPECT_EQ(t1.count(), 100u);
    EXPECT_EQ(all.count(), 200u);
    // Tenant 1's samples are ~9x tenant 0's; the merged p50 must land
    // between the two tenant medians.
    EXPECT_LT(t0.quantile(0.5), t1.quantile(0.5));
    EXPECT_GE(all.quantile(0.5), t0.quantile(0.5));
    EXPECT_LE(all.quantile(0.5), t1.quantile(0.5));
}

TEST(FlightRecorder, SamplingIsDeterministicModulus)
{
    FlightRecorder fr(1, 16, 64);
    EXPECT_TRUE(fr.enabled());
    EXPECT_TRUE(fr.sampled(0));
    EXPECT_TRUE(fr.sampled(64));
    EXPECT_TRUE(fr.sampled(128));
    EXPECT_FALSE(fr.sampled(1));
    EXPECT_FALSE(fr.sampled(63));

    FlightRecorder off(1, 16, 0);
    EXPECT_FALSE(off.enabled());
    EXPECT_FALSE(off.sampled(0));
    off.stamp(0, trace::Stage::Service, trace::Phase::Begin, 0, 1);
    EXPECT_EQ(off.recorded(), 0u);
    EXPECT_TRUE(off.snapshot().empty());
}

TEST(FlightRecorder, WraparoundKeepsNewestSorted)
{
    FlightRecorder fr(1, 8, 1);
    for (std::uint64_t i = 0; i < 20; ++i)
        fr.stamp(0, trace::Stage::Completion, trace::Phase::Instant, 3,
                 static_cast<Tick>(i * 10), 7, i);
    EXPECT_EQ(fr.recorded(), 20u);
    const auto snap = fr.snapshot();
    ASSERT_EQ(snap.size(), 8u);
    // Only the newest 8 survive, sorted by timestamp.
    for (std::size_t i = 0; i < snap.size(); ++i) {
        EXPECT_EQ(snap[i].arg, 12 + i);
        EXPECT_EQ(snap[i].ts, static_cast<Tick>((12 + i) * 10));
        EXPECT_EQ(snap[i].track, 3u);
        EXPECT_EQ(snap[i].qid, 7u);
    }
}

TEST(FlightRecorder, ConcurrentStampAndSnapshotStayCoherent)
{
    // Satellite gate: single-writer-per-shard stamping races against a
    // snapshotting reader over tiny rings.  Snapshots must only ever
    // contain fully-written events (the per-slot seqlock discards
    // mid-write slots); under TSan this is also the data-race check.
    constexpr unsigned shards = 3;
    constexpr std::uint64_t perShard = 20000;
    FlightRecorder fr(shards, 16, 1);
    std::atomic<bool> run{true};
    std::thread reader([&] {
        while (run.load(std::memory_order_relaxed)) {
            for (const auto &e : fr.snapshot()) {
                // Writers encode track == shard and arg == ts, so any
                // torn slot shows up as a mismatched pair.
                ASSERT_EQ(e.arg, static_cast<std::uint64_t>(e.ts));
                ASSERT_LT(e.track, shards);
            }
        }
    });
    std::vector<std::thread> writers;
    for (unsigned s = 0; s < shards; ++s) {
        writers.emplace_back([&fr, s] {
            for (std::uint64_t i = 1; i <= perShard; ++i)
                fr.stamp(s, trace::Stage::Service,
                         trace::Phase::Instant, s,
                         static_cast<Tick>(i), invalidQueueId, i);
        });
    }
    for (auto &w : writers)
        w.join();
    run.store(false);
    reader.join();
    EXPECT_EQ(fr.recorded(), shards * perShard);
    const auto snap = fr.snapshot();
    EXPECT_LE(snap.size(), shards * 16u);
    EXPECT_GE(snap.size(), shards * 15u); // nothing mid-write now
    for (std::size_t i = 1; i < snap.size(); ++i)
        EXPECT_GE(snap[i].ts, snap[i - 1].ts); // merged sort order
}

TEST(EventLog, RingEvictsOldestAndCounts)
{
    EventLog log(4);
    for (int i = 0; i < 7; ++i)
        log.post(OpEventKind::Demotion, 100 + i, i, i * 10);
    EXPECT_EQ(log.posted(), 7u);
    EXPECT_EQ(log.evicted(), 3u);
    const auto snap = log.snapshot();
    ASSERT_EQ(snap.size(), 4u);
    for (std::size_t i = 0; i < snap.size(); ++i) {
        EXPECT_EQ(snap[i].ns, 103u + i);
        EXPECT_EQ(snap[i].queue, 3u + i);
    }
}

TEST(EventLog, JsonIsWellFormedEvenWithHostileDetail)
{
    EventLog log(8);
    log.post(OpEventKind::StormDemotion, 1, 2, 3,
             "tenant=\"quoted\"\nback\\slash");
    log.post(OpEventKind::FlightDump, 2, ~0u, 0, "path=/tmp/x.json");
    const std::string j = log.json();
    EXPECT_TRUE(hyperplane::testing::JsonChecker(j).valid()) << j;
    EXPECT_NE(j.find("storm_demotion"), std::string::npos);
    EXPECT_NE(j.find("flight_dump"), std::string::npos);
}

TEST(Prometheus, SanitizesNamesAndEscapesLabels)
{
    EXPECT_EQ(sanitizeMetricName("server.rx_packets"),
              "hyperplane_server_rx_packets");
    EXPECT_EQ(sanitizeMetricName("tenant.bulk-1.p99 ns"),
              "hyperplane_tenant_bulk_1_p99_ns");
    EXPECT_EQ(escapeLabelValue("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
}

TEST(Prometheus, PageHasBuildInfoUptimeAndEveryEntry)
{
    stats::Registry reg;
    double weird = 0.0;
    reg.addScalar("unit.test.value", [] { return 42.0; });
    reg.addScalar("unit.test.weird", [&weird] { return weird; });
    weird = std::numeric_limits<double>::quiet_NaN();

    const std::string page = prometheusText(reg, 12.5);
    EXPECT_NE(page.find("hyperplane_build_info{"), std::string::npos);
    EXPECT_NE(page.find("cpu_features=\""), std::string::npos);
    EXPECT_NE(page.find("simd_checksum=\""), std::string::npos);
    EXPECT_NE(page.find("force_scalar=\""), std::string::npos);
    EXPECT_NE(page.find("hyperplane_uptime_seconds 12.5"),
              std::string::npos);
    EXPECT_NE(page.find("hyperplane_unit_test_value 42"),
              std::string::npos);
    EXPECT_NE(page.find("hyperplane_unit_test_weird NaN"),
              std::string::npos);
    // Exposition format: every line is "name{labels} value" or a
    // comment; no line may contain an unescaped bare quote outside
    // label values.  Cheap structural check: non-comment lines have
    // exactly one space separating name and value.
    std::size_t start = 0;
    while (start < page.size()) {
        std::size_t end = page.find('\n', start);
        if (end == std::string::npos)
            end = page.size();
        const std::string line = page.substr(start, end - start);
        if (!line.empty() && line[0] != '#' &&
            line.find('{') == std::string::npos) {
            EXPECT_EQ(std::count(line.begin(), line.end(), ' '), 1)
                << line;
        }
        start = end + 1;
    }
}

TEST(BuildInfo, IsPopulated)
{
    const BuildInfo &bi = buildInfo();
    ASSERT_NE(bi.gitSha, nullptr);
    ASSERT_NE(bi.buildType, nullptr);
    ASSERT_NE(bi.compiler, nullptr);
    EXPECT_GT(std::strlen(bi.gitSha), 0u);
    EXPECT_GT(std::strlen(bi.compiler), 0u);
    EXPECT_EQ(bi.traceCompiledIn, trace::kCompiledIn);
    // SIMD provenance mirrors the dispatched kernel table.
    const auto &k = net::simd::kernels();
    ASSERT_NE(bi.cpuFeatures, nullptr);
    EXPECT_GT(std::strlen(bi.cpuFeatures), 0u);
    EXPECT_STREQ(bi.simdChecksum, k.checksumName);
    EXPECT_STREQ(bi.simdCrc32c, k.crc32cName);
    EXPECT_STREQ(bi.simdHeaderCheck, k.headerCheckName);
    EXPECT_EQ(bi.forcedScalar, k.forcedScalar);
}

/** Scrape the metrics server over its UDP one-shot op. */
std::string
udpScrape(std::uint16_t port, const std::string &path)
{
    const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
    if (fd < 0)
        return {};
    timeval tv{2, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::sendto(fd, path.data(), path.size(), 0,
                 reinterpret_cast<sockaddr *>(&addr),
                 sizeof(addr)) < 0) {
        ::close(fd);
        return {};
    }
    std::string body;
    char buf[2048];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break; // empty datagram terminates the response
        body.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return body;
}

/** Minimal HTTP GET against 127.0.0.1:port. */
std::string
httpGet(std::uint16_t port, const std::string &path)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return {};
    timeval tv{2, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return {};
    }
    const std::string req =
        "GET " + path + " HTTP/1.0\r\nHost: t\r\n\r\n";
    if (::send(fd, req.data(), req.size(), 0) < 0) {
        ::close(fd);
        return {};
    }
    std::string resp;
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
        resp.append(buf, static_cast<std::size_t>(n));
    ::close(fd);
    return resp;
}

TEST(MetricsServerTest, ServesHttpAndUdpOrSkips)
{
    MetricsServer ms;
    const bool up = ms.start("127.0.0.1", 0,
                             [](const std::string &path,
                                std::string &contentType) {
                                 if (path == "/metrics") {
                                     contentType = "text/plain";
                                     return std::string("body 1\n");
                                 }
                                 return std::string();
                             });
    if (!up)
        GTEST_SKIP() << "sockets unavailable in this sandbox";
    ASSERT_GT(ms.port(), 0);

    const std::string ok = httpGet(ms.port(), "/metrics");
    if (ok.empty())
        GTEST_SKIP() << "TCP connect unavailable in this sandbox";
    EXPECT_NE(ok.find("200 OK"), std::string::npos);
    EXPECT_NE(ok.find("body 1"), std::string::npos);
    EXPECT_NE(ok.find("Content-Type: text/plain"), std::string::npos);

    const std::string missing = httpGet(ms.port(), "/nope");
    EXPECT_NE(missing.find("404"), std::string::npos);

    // UDP one-shot: empty datagram means "/metrics".
    EXPECT_EQ(udpScrape(ms.port(), "/metrics"), "body 1\n");
    EXPECT_EQ(udpScrape(ms.port(), ""), "body 1\n");
    EXPECT_GE(ms.requestsServed(), 4u);
    ms.stop();
    EXPECT_FALSE(ms.running());
}

TEST(MetricsServerTest, UdpChunksLargeBodies)
{
    MetricsServer ms;
    // Three full chunks plus a remainder, to cross the 1200-byte
    // datagram boundary several times.
    const std::string big(3 * MetricsServer::kUdpChunk + 123, 'x');
    const bool up = ms.start(
        "127.0.0.1", 0,
        [&big](const std::string &, std::string &ct) {
            ct = "text/plain";
            return big;
        });
    if (!up)
        GTEST_SKIP() << "sockets unavailable in this sandbox";
    const std::string got = udpScrape(ms.port(), "/metrics");
    if (got.empty())
        GTEST_SKIP() << "UDP loopback unavailable in this sandbox";
    EXPECT_EQ(got, big);
    ms.stop();
}

} // namespace
} // namespace telemetry
} // namespace hyperplane
