/**
 * @file
 * Unit tests for the kernel-driver model (control plane of Algorithm 1).
 */

#include <gtest/gtest.h>

#include <set>

#include "core/driver.hh"
#include "queueing/doorbell.hh"

namespace hyperplane {
namespace core {
namespace {

QwaitConfig
unitConfig(unsigned monitoringCapacity = 1024)
{
    QwaitConfig cfg;
    cfg.monitoring.capacity = monitoringCapacity;
    cfg.ready.capacity = 2048;
    return cfg;
}

TEST(Driver, ConnectBindsWithinRange)
{
    QwaitUnit unit(unitConfig());
    HyperPlaneDriver driver(unit, queueing::AddressMap::doorbellBase,
                            256);
    const auto addr = driver.connect(0);
    ASSERT_TRUE(addr.has_value());
    EXPECT_GE(*addr, driver.rangeLo());
    EXPECT_LT(*addr, driver.rangeHi());
    EXPECT_EQ(*addr % cacheLineBytes, 0u);
    EXPECT_EQ(unit.doorbellOf(0), *addr);
    EXPECT_EQ(driver.connectedCount(), 1u);
}

TEST(Driver, DistinctTenantsDistinctDoorbells)
{
    QwaitUnit unit(unitConfig());
    HyperPlaneDriver driver(unit, queueing::AddressMap::doorbellBase,
                            256);
    std::set<Addr> addrs;
    for (QueueId q = 0; q < 200; ++q) {
        const auto addr = driver.connect(q);
        ASSERT_TRUE(addr.has_value()) << "qid " << q;
        EXPECT_TRUE(addrs.insert(*addr).second) << "duplicate doorbell";
    }
    EXPECT_EQ(driver.freeSlots(), 56u);
}

TEST(Driver, DoubleConnectRejected)
{
    QwaitUnit unit(unitConfig());
    HyperPlaneDriver driver(unit, queueing::AddressMap::doorbellBase,
                            16);
    ASSERT_TRUE(driver.connect(3).has_value());
    EXPECT_FALSE(driver.connect(3).has_value());
    EXPECT_EQ(driver.connectedCount(), 1u);
}

TEST(Driver, RangeExhaustionReported)
{
    QwaitUnit unit(unitConfig());
    HyperPlaneDriver driver(unit, queueing::AddressMap::doorbellBase,
                            4);
    for (QueueId q = 0; q < 4; ++q)
        ASSERT_TRUE(driver.connect(q).has_value());
    EXPECT_FALSE(driver.connect(4).has_value());
    EXPECT_EQ(driver.freeSlots(), 0u);
}

TEST(Driver, DisconnectFreesSlotForReuse)
{
    QwaitUnit unit(unitConfig());
    HyperPlaneDriver driver(unit, queueing::AddressMap::doorbellBase,
                            4);
    for (QueueId q = 0; q < 4; ++q)
        ASSERT_TRUE(driver.connect(q).has_value());
    EXPECT_TRUE(driver.disconnect(1));
    EXPECT_FALSE(driver.disconnect(1));
    EXPECT_EQ(driver.freeSlots(), 1u);
    EXPECT_FALSE(driver.doorbellOf(1).has_value());
    EXPECT_TRUE(driver.connect(99).has_value());
    EXPECT_EQ(driver.freeSlots(), 0u);
}

TEST(Driver, ConflictRetryFillsTinyMonitoringSet)
{
    // A cramped monitoring set with a short walk forces QWAIT-ADD
    // conflicts; the driver's re-allocation loop must still connect
    // most tenants (with fresh addresses hashing elsewhere).
    QwaitConfig cfg = unitConfig(16);
    cfg.monitoring.maxWalkSteps = 2;
    QwaitUnit unit(cfg);
    HyperPlaneDriver driver(unit, queueing::AddressMap::doorbellBase,
                            4096);
    unsigned connected = 0;
    for (QueueId q = 0; q < 14; ++q)
        connected += driver.connect(q).has_value() ? 1 : 0;
    EXPECT_GE(connected, 12u);
    EXPECT_EQ(unit.monitoringSet().occupancy(), connected);
    // Failed candidates' slots were rolled back: used slots ==
    // connected tenants.
    EXPECT_EQ(driver.freeSlots(), 4096u - connected);
}

TEST(Driver, EndToEndNotificationThroughDriverBinding)
{
    QwaitUnit unit(unitConfig());
    HyperPlaneDriver driver(unit, queueing::AddressMap::doorbellBase,
                            64);
    const auto addr = driver.connect(7);
    ASSERT_TRUE(addr.has_value());
    unit.onWriteTransaction(*addr, 0);
    const auto qid = unit.qwait();
    ASSERT_TRUE(qid.has_value());
    EXPECT_EQ(*qid, 7u);
}

} // namespace
} // namespace core
} // namespace hyperplane
