/**
 * @file
 * Unit and property tests for GF(2^8) arithmetic.
 */

#include <gtest/gtest.h>

#include <vector>

#include "codes/gf256.hh"

namespace hyperplane {
namespace codes {
namespace {

TEST(Gf256, AdditionIsXor)
{
    EXPECT_EQ(gfAdd(0x57, 0x83), 0xd4);
    EXPECT_EQ(gfAdd(0xff, 0xff), 0x00);
}

TEST(Gf256, KnownProducts)
{
    // 2 * 2 = 4; 0x80 * 2 = 0x11d reduced = 0x1d.
    EXPECT_EQ(gfMul(2, 2), 4);
    EXPECT_EQ(gfMul(0x80, 2), 0x1d);
    EXPECT_EQ(gfMul(1, 0xab), 0xab);
    EXPECT_EQ(gfMul(0, 0xab), 0);
}

TEST(Gf256, MultiplicationCommutes)
{
    for (unsigned a = 0; a < 256; a += 7) {
        for (unsigned b = 0; b < 256; b += 11) {
            EXPECT_EQ(gfMul(static_cast<std::uint8_t>(a),
                            static_cast<std::uint8_t>(b)),
                      gfMul(static_cast<std::uint8_t>(b),
                            static_cast<std::uint8_t>(a)));
        }
    }
}

TEST(Gf256, MultiplicationAssociates)
{
    for (unsigned a = 1; a < 256; a += 31) {
        for (unsigned b = 1; b < 256; b += 37) {
            for (unsigned c = 1; c < 256; c += 41) {
                const auto x = static_cast<std::uint8_t>(a);
                const auto y = static_cast<std::uint8_t>(b);
                const auto z = static_cast<std::uint8_t>(c);
                EXPECT_EQ(gfMul(gfMul(x, y), z), gfMul(x, gfMul(y, z)));
            }
        }
    }
}

TEST(Gf256, DistributesOverAddition)
{
    for (unsigned a = 0; a < 256; a += 13) {
        for (unsigned b = 0; b < 256; b += 17) {
            for (unsigned c = 0; c < 256; c += 19) {
                const auto x = static_cast<std::uint8_t>(a);
                const auto y = static_cast<std::uint8_t>(b);
                const auto z = static_cast<std::uint8_t>(c);
                EXPECT_EQ(gfMul(x, gfAdd(y, z)),
                          gfAdd(gfMul(x, y), gfMul(x, z)));
            }
        }
    }
}

TEST(Gf256, EveryNonzeroElementHasInverse)
{
    for (unsigned a = 1; a < 256; ++a) {
        const auto x = static_cast<std::uint8_t>(a);
        EXPECT_EQ(gfMul(x, gfInv(x)), 1) << "element " << a;
    }
}

TEST(Gf256, DivisionInvertsMultiplication)
{
    for (unsigned a = 0; a < 256; a += 5) {
        for (unsigned b = 1; b < 256; b += 9) {
            const auto x = static_cast<std::uint8_t>(a);
            const auto y = static_cast<std::uint8_t>(b);
            EXPECT_EQ(gfMul(gfDiv(x, y), y), x);
        }
    }
}

TEST(Gf256, ExpLogRoundTrip)
{
    for (unsigned a = 1; a < 256; ++a) {
        const auto x = static_cast<std::uint8_t>(a);
        EXPECT_EQ(gfExp(gfLog(x)), x);
    }
}

TEST(Gf256, AlphaIsPrimitive)
{
    // alpha = 2 must generate all 255 nonzero elements.
    std::vector<bool> seen(256, false);
    std::uint8_t x = 1;
    for (int i = 0; i < 255; ++i) {
        EXPECT_FALSE(seen[x]) << "cycle shorter than 255 at " << i;
        seen[x] = true;
        x = gfMul(x, 2);
    }
    EXPECT_EQ(x, 1); // full cycle returns to 1
}

TEST(Gf256, PowMatchesRepeatedMultiplication)
{
    for (unsigned a : {1u, 2u, 3u, 0x53u, 0xffu}) {
        std::uint8_t acc = 1;
        for (unsigned n = 0; n < 20; ++n) {
            EXPECT_EQ(gfPow(static_cast<std::uint8_t>(a), n), acc);
            acc = gfMul(acc, static_cast<std::uint8_t>(a));
        }
    }
}

TEST(Gf256, PowZeroExponentIsOne)
{
    EXPECT_EQ(gfPow(0, 0), 1);
    EXPECT_EQ(gfPow(7, 0), 1);
}

TEST(Gf256, MulAccumMatchesScalarLoop)
{
    std::vector<std::uint8_t> src(257), dst(257, 0), ref(257, 0);
    for (std::size_t i = 0; i < src.size(); ++i)
        src[i] = static_cast<std::uint8_t>(i * 31 + 5);
    const std::uint8_t c = 0x9d;
    for (std::size_t i = 0; i < src.size(); ++i)
        ref[i] = gfMul(src[i], c);
    gfMulAccum(dst.data(), src.data(), src.size(), c);
    EXPECT_EQ(dst, ref);
    // Accumulating again doubles -> cancels (characteristic 2).
    gfMulAccum(dst.data(), src.data(), src.size(), c);
    for (auto b : dst)
        EXPECT_EQ(b, 0);
}

TEST(Gf256, MulAccumSpecialConstants)
{
    std::vector<std::uint8_t> src{1, 2, 3}, dst{10, 20, 30};
    const auto orig = dst;
    gfMulAccum(dst.data(), src.data(), 3, 0); // c = 0: no-op
    EXPECT_EQ(dst, orig);
    gfMulAccum(dst.data(), src.data(), 3, 1); // c = 1: plain XOR
    EXPECT_EQ(dst, (std::vector<std::uint8_t>{11, 22, 29}));
}

TEST(Gf256, MulIntoMatchesScalar)
{
    std::vector<std::uint8_t> src{0, 1, 2, 0x80, 0xff}, dst(5);
    gfMulInto(dst.data(), src.data(), 5, 0x1b);
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_EQ(dst[i], gfMul(src[i], 0x1b));
    gfMulInto(dst.data(), src.data(), 5, 0);
    for (auto b : dst)
        EXPECT_EQ(b, 0);
}

} // namespace
} // namespace codes
} // namespace hyperplane
