/**
 * @file
 * Unit tests for the linear and log-scale histograms.
 */

#include <gtest/gtest.h>

#include "sim/rng.hh"
#include "stats/histogram.hh"

namespace hyperplane {
namespace stats {
namespace {

TEST(Histogram, EmptyReportsZeros)
{
    Histogram h(0, 100, 10);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.99), 0.0);
}

TEST(Histogram, MeanIsExactNotBinned)
{
    Histogram h(0, 100, 4); // very coarse bins
    h.record(1.5);
    h.record(2.5);
    EXPECT_DOUBLE_EQ(h.mean(), 2.0);
}

TEST(Histogram, MinMaxTracked)
{
    Histogram h(0, 100, 10);
    h.record(7);
    h.record(93);
    h.record(42);
    EXPECT_DOUBLE_EQ(h.min(), 7.0);
    EXPECT_DOUBLE_EQ(h.max(), 93.0);
}

TEST(Histogram, UnderOverflowCounted)
{
    Histogram h(10, 20, 10);
    h.record(5);
    h.record(15);
    h.record(25);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.count(), 3u);
}

TEST(Histogram, MedianOfUniformData)
{
    Histogram h(0, 1000, 1000);
    for (int i = 0; i < 1000; ++i)
        h.record(i);
    EXPECT_NEAR(h.quantile(0.5), 500.0, 2.0);
    EXPECT_NEAR(h.quantile(0.99), 990.0, 2.0);
}

TEST(Histogram, RecordNEquivalentToRepeats)
{
    Histogram a(0, 10, 10), b(0, 10, 10);
    a.recordN(5.0, 100);
    for (int i = 0; i < 100; ++i)
        b.record(5.0);
    EXPECT_EQ(a.count(), b.count());
    EXPECT_DOUBLE_EQ(a.quantile(0.5), b.quantile(0.5));
}

TEST(Histogram, ClearResets)
{
    Histogram h(0, 10, 10);
    h.record(5);
    h.clear();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.underflow(), 0u);
}

TEST(Histogram, CdfMonotoneAndEndsAtOne)
{
    Histogram h(0, 100, 50);
    Rng rng(1);
    for (int i = 0; i < 1000; ++i)
        h.record(rng.uniform(0, 100));
    const auto cdf = h.cdf();
    ASSERT_FALSE(cdf.empty());
    double prev = 0.0;
    for (const auto &[v, f] : cdf) {
        EXPECT_GE(f, prev);
        prev = f;
    }
    EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(LogHistogram, QuantileRelativeErrorBounded)
{
    LogHistogram h(0.01, 1.02, 2048);
    Rng rng(2);
    std::vector<double> samples;
    for (int i = 0; i < 50000; ++i) {
        const double v = rng.exponential(100.0);
        samples.push_back(v);
        h.record(v);
    }
    std::sort(samples.begin(), samples.end());
    for (double q : {0.5, 0.9, 0.99, 0.999}) {
        const double exact =
            samples[static_cast<std::size_t>(q * (samples.size() - 1))];
        const double approx = h.quantile(q);
        EXPECT_NEAR(approx / exact, 1.0, 0.04)
            << "quantile " << q;
    }
}

TEST(LogHistogram, MeanExact)
{
    LogHistogram h;
    h.record(10);
    h.record(30);
    EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(LogHistogram, CoversManyOrdersOfMagnitude)
{
    LogHistogram h(0.01, 1.02, 2048);
    h.record(0.05);
    h.recordN(5e6, 99);
    EXPECT_DOUBLE_EQ(h.min(), 0.05);
    EXPECT_DOUBLE_EQ(h.max(), 5e6);
    EXPECT_GT(h.quantile(0.99), 1e5);
}

TEST(LogHistogram, QuantileClampedToObservedRange)
{
    LogHistogram h;
    h.record(42.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 42.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 42.0);
}

TEST(LogHistogram, CdfMonotoneEndsAtOne)
{
    LogHistogram h(0.01, 1.02, 2048);
    Rng rng(3);
    for (int i = 0; i < 5000; ++i)
        h.record(rng.exponential(42.0));
    const auto cdf = h.cdf();
    ASSERT_FALSE(cdf.empty());
    double prevV = 0.0, prevF = 0.0;
    for (const auto &[v, f] : cdf) {
        EXPECT_GE(v, prevV);
        EXPECT_GE(f, prevF);
        prevV = v;
        prevF = f;
    }
    EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
    EXPECT_DOUBLE_EQ(cdf.back().first, h.max());
}

TEST(LogHistogram, ClearResets)
{
    LogHistogram h;
    h.record(1.0);
    h.clear();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(LogHistogramMerge, QuantilesMatchCombinedRecording)
{
    // Sharded recording + merge must be indistinguishable from
    // recording everything into one histogram: bin addition is exact.
    LogHistogram a(100.0, 1.05, 512);
    LogHistogram b(100.0, 1.05, 512);
    LogHistogram combined(100.0, 1.05, 512);
    Rng rng(17);
    for (int i = 0; i < 20000; ++i) {
        const double v = rng.exponential(5000.0) + 100.0;
        (i % 3 == 0 ? a : b).record(v);
        combined.record(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), combined.count());
    EXPECT_DOUBLE_EQ(a.sum(), combined.sum());
    EXPECT_DOUBLE_EQ(a.min(), combined.min());
    EXPECT_DOUBLE_EQ(a.max(), combined.max());
    for (double q : {0.5, 0.9, 0.99, 0.999}) {
        EXPECT_DOUBLE_EQ(a.quantile(q), combined.quantile(q))
            << "q=" << q;
    }
}

TEST(LogHistogramMerge, EmptyOperandsAreNeutral)
{
    LogHistogram a(100.0, 1.05, 64);
    LogHistogram empty(100.0, 1.05, 64);
    a.merge(empty); // empty into empty
    EXPECT_EQ(a.count(), 0u);

    a.record(250.0);
    a.merge(empty); // empty into populated: no-op
    EXPECT_EQ(a.count(), 1u);
    EXPECT_DOUBLE_EQ(a.min(), 250.0);
    EXPECT_DOUBLE_EQ(a.max(), 250.0);

    LogHistogram c(100.0, 1.05, 64);
    c.merge(a); // populated into empty: adopts min/max
    EXPECT_EQ(c.count(), 1u);
    EXPECT_DOUBLE_EQ(c.min(), 250.0);
    EXPECT_DOUBLE_EQ(c.max(), 250.0);
}

TEST(LogHistogramMerge, FromPartsRoundTripsThenMerges)
{
    LogHistogram src(200.0, 1.05, 128);
    std::vector<double> samples;
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        samples.push_back(rng.exponential(3000.0) + 200.0);
        src.record(samples.back());
    }

    LogHistogram copy = LogHistogram::fromParts(
        src.base(), src.growth(), src.bins(), src.sum(), src.min(),
        src.max());
    EXPECT_EQ(copy.count(), src.count());
    EXPECT_DOUBLE_EQ(copy.quantile(0.99), src.quantile(0.99));

    // The merge contract: bin-identical to one histogram that recorded
    // the stream twice (quantile rank rounding shifts with the count,
    // so self-merge is NOT expected to leave quantiles bit-identical).
    LogHistogram twice(200.0, 1.05, 128);
    for (const double v : samples) {
        twice.record(v);
        twice.record(v);
    }
    copy.merge(src);
    EXPECT_EQ(copy.count(), 2 * src.count());
    // Summation order differs (merge adds totals, `twice` accumulates
    // per sample), so the sums agree to rounding, bins exactly.
    EXPECT_NEAR(copy.sum(), twice.sum(), 1e-9 * twice.sum());
    for (double q : {0.5, 0.99, 0.999})
        EXPECT_DOUBLE_EQ(copy.quantile(q), twice.quantile(q));
}

} // namespace
} // namespace stats
} // namespace hyperplane
