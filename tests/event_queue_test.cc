/**
 * @file
 * Unit tests for the discrete-event simulation kernel.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <random>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"

namespace hyperplane {
namespace {

TEST(EventQueue, StartsAtTickZeroAndEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, DispatchesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickFiresInScheduleOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, NowAdvancesToEventTick)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(42, [&] { seen = eq.now(); });
    eq.run();
    EXPECT_EQ(seen, 42u);
}

TEST(EventQueue, RunUntilStopsAtBoundary)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.schedule(30, [&] { ++fired; });
    EXPECT_EQ(eq.run(20), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 20u);
    EXPECT_EQ(eq.pending(), 1u);
}

TEST(EventQueue, RunUntilAdvancesTimeEvenWithoutEvents)
{
    EventQueue eq;
    eq.run(100);
    EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueue, CancelPreventsDispatch)
{
    EventQueue eq;
    int fired = 0;
    const EventId id = eq.schedule(10, [&] { ++fired; });
    EXPECT_TRUE(eq.cancel(id));
    eq.run();
    EXPECT_EQ(fired, 0);
}

TEST(EventQueue, CancelTwiceFails)
{
    EventQueue eq;
    const EventId id = eq.schedule(10, [] {});
    EXPECT_TRUE(eq.cancel(id));
    EXPECT_FALSE(eq.cancel(id));
}

TEST(EventQueue, CancelAfterFireFails)
{
    EventQueue eq;
    const EventId id = eq.schedule(10, [] {});
    eq.run();
    EXPECT_FALSE(eq.cancel(id));
}

TEST(EventQueue, CancelInvalidIdFails)
{
    EventQueue eq;
    EXPECT_FALSE(eq.cancel(invalidEventId));
    EXPECT_FALSE(eq.cancel(9999));
}

TEST(EventQueue, PendingTracksCancellations)
{
    EventQueue eq;
    const EventId a = eq.schedule(10, [] {});
    eq.schedule(20, [] {});
    EXPECT_EQ(eq.pending(), 2u);
    eq.cancel(a);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 5)
            eq.scheduleIn(10, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(eq.now(), 40u);
}

TEST(EventQueue, NextEventTickSkipsCancelled)
{
    EventQueue eq;
    const EventId a = eq.schedule(10, [] {});
    eq.schedule(20, [] {});
    eq.cancel(a);
    EXPECT_EQ(eq.nextEventTick(), 20u);
}

TEST(EventQueue, AdvanceToMovesTime)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.advanceTo(50);
    EXPECT_EQ(eq.now(), 50u);
}

TEST(EventQueue, DispatchedCounterAccumulates)
{
    EventQueue eq;
    for (int i = 0; i < 10; ++i)
        eq.schedule(i, [] {});
    eq.run();
    EXPECT_EQ(eq.dispatched(), 10u);
}

TEST(EventQueue, StressManyEventsStayOrdered)
{
    EventQueue eq;
    Tick last = 0;
    bool ordered = true;
    for (int i = 0; i < 10000; ++i) {
        const Tick when = static_cast<Tick>((i * 7919) % 5000);
        eq.schedule(when, [&, when] {
            if (when < last)
                ordered = false;
            last = when;
        });
    }
    eq.run();
    EXPECT_TRUE(ordered);
}

TEST(EventQueue, SameTickFifoAcrossCalendarAndHeap)
{
    // Interleave events for one tick scheduled from far away (heap) and
    // from nearby (calendar bucket): dispatch must still follow global
    // schedule order, not per-front-end order.
    EventQueue eq;
    const Tick target = EventQueue::horizonTicks + 500;
    std::vector<int> order;
    eq.schedule(target, [&] { order.push_back(0); });       // heap
    eq.schedule(target - 100, [&eq, &order, target] {       // near past
        // Scheduled from inside the horizon: lands in a bucket.
        eq.schedule(target, [&order] { order.push_back(2); });
    });
    eq.schedule(target, [&] { order.push_back(1); });       // heap
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, HorizonBoundarySchedules)
{
    // Deltas straddling the calendar horizon must all dispatch in time
    // order regardless of which front end holds them.
    EventQueue eq;
    std::vector<Tick> fired;
    for (Tick d : {EventQueue::horizonTicks - 1, EventQueue::horizonTicks,
                   EventQueue::horizonTicks + 1, Tick{1},
                   2 * EventQueue::horizonTicks})
        eq.schedule(d, [&fired, &eq] { fired.push_back(eq.now()); });
    eq.run();
    ASSERT_EQ(fired.size(), 5u);
    EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
    EXPECT_EQ(fired.back(), 2 * EventQueue::horizonTicks);
}

TEST(EventQueue, CancelledStateStaysBounded)
{
    // Regression for unbounded cancel bookkeeping: schedule+cancel 1M
    // events.  Slots are recycled through the free list and tombstones
    // are purged, so neither the slot array nor the calendar/heap entry
    // count may scale with the number of cancellations.
    EventQueue eq;
    constexpr int n = 1'000'000;
    for (int i = 0; i < n; ++i) {
        const EventId id =
            eq.schedule(static_cast<Tick>(1 + i % 5000), [] {});
        ASSERT_TRUE(eq.cancel(id));
    }
    EXPECT_EQ(eq.pending(), 0u);
    // A purge triggers whenever stale entries outnumber live ones past
    // the 1024 floor, so the residue is a small constant, not O(n).
    EXPECT_LT(eq.debugScheduledEntries(), 4096u);
    EXPECT_LT(eq.debugSlotCapacity(), 64u);
    eq.run();
    EXPECT_EQ(eq.dispatched(), 0u);
}

TEST(EventQueue, MixedCancelChurnStaysBoundedAndOrdered)
{
    // Interleave live and cancelled events (3 cancels per live event);
    // live ones must all fire in order while the cancelled residue is
    // purged down to the live population, not the cancellation total.
    EventQueue eq;
    std::uint64_t fired = 0;
    Tick last = 0;
    bool ordered = true;
    constexpr int rounds = 100'000;
    for (int i = 0; i < rounds; ++i) {
        const Tick when = static_cast<Tick>(1 + (i * 13) % 20000);
        EventId doomed[3];
        for (auto &d : doomed)
            d = eq.schedule(when, [] {});
        eq.schedule(when, [&, when] {
            ++fired;
            if (when < last)
                ordered = false;
            last = when;
        });
        for (const auto d : doomed)
            ASSERT_TRUE(eq.cancel(d));
    }
    // Without purging this would sit at 4*rounds; the purge keeps
    // tombstones below the live count.
    EXPECT_LT(eq.debugScheduledEntries(),
              static_cast<std::size_t>(2.5 * rounds));
    eq.run();
    EXPECT_EQ(fired, static_cast<std::uint64_t>(rounds));
    EXPECT_TRUE(ordered);
}

TEST(EventQueue, SlotReuseInvalidatesOldIds)
{
    // After an event fires or is cancelled its slot is recycled with a
    // bumped generation: a stale EventId must never cancel the new
    // occupant.
    EventQueue eq;
    const EventId a = eq.schedule(10, [] {});
    ASSERT_TRUE(eq.cancel(a));
    int fired = 0;
    const EventId b = eq.schedule(20, [&] { ++fired; });
    EXPECT_NE(a, b);
    EXPECT_FALSE(eq.cancel(a)); // stale handle, same slot
    eq.run();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelFromInsideCallback)
{
    EventQueue eq;
    int fired = 0;
    EventId victim = invalidEventId;
    eq.schedule(5, [&] { EXPECT_TRUE(eq.cancel(victim)); });
    victim = eq.schedule(10, [&] { ++fired; });
    eq.schedule(10, [&] { ++fired; });
    eq.run();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, RandomizedAgainstReferenceModel)
{
    // Drive the kernel and a naive reference model with the same
    // randomized schedule/cancel/step workload; every dispatch must
    // match the reference's minimum (when, seq) entry.
    std::mt19937_64 rng(12345);
    EventQueue eq;

    struct RefEvent
    {
        Tick when;
        std::uint64_t seq;
        int tag;
    };
    std::vector<RefEvent> ref;                            // live events
    std::vector<std::pair<EventId, std::uint64_t>> handles;
    std::vector<int> fired;
    std::vector<int> expected;
    std::uint64_t seq = 0;

    const auto keyLess = [](const RefEvent &a, const RefEvent &b) {
        return a.when != b.when ? a.when < b.when : a.seq < b.seq;
    };
    const auto popRefMin = [&] {
        const auto it =
            std::min_element(ref.begin(), ref.end(), keyLess);
        const RefEvent e = *it;
        ref.erase(it);
        std::erase_if(handles, [&e](const auto &p) {
            return p.second == e.seq;
        });
        return e;
    };

    for (int i = 0; i < 20000; ++i) {
        const auto roll = rng() % 100;
        if (roll < 60 || handles.empty()) {
            // Mix of short (bucket) and long (heap) deltas.
            const Tick delta = (rng() % 10 == 0)
                ? 1 + rng() % (4 * EventQueue::horizonTicks)
                : rng() % 512;
            const Tick when = eq.now() + delta;
            const int tag = i;
            ++seq;
            const EventId id = eq.schedule(
                when, [&fired, tag] { fired.push_back(tag); });
            ref.push_back({when, seq, tag});
            handles.push_back({id, seq});
        } else if (roll < 80) {
            const std::size_t pick = rng() % handles.size();
            const std::uint64_t s = handles[pick].second;
            ASSERT_TRUE(eq.cancel(handles[pick].first));
            std::erase_if(
                ref, [s](const RefEvent &e) { return e.seq == s; });
            handles.erase(handles.begin() + pick);
        } else if (!ref.empty()) {
            // Advance time by one dispatch; the model predicts which.
            expected.push_back(popRefMin().tag);
            ASSERT_TRUE(eq.step());
        }
        ASSERT_EQ(eq.pending(), ref.size());
    }
    while (!ref.empty()) {
        expected.push_back(popRefMin().tag);
        ASSERT_TRUE(eq.step());
    }
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(fired, expected);
}

// --- EventCallback (small-buffer optimization) -----------------------

TEST(EventCallback, InlineCaptureDoesNotHeapAllocate)
{
    const std::uint64_t before = EventCallback::heapFallbackCount();
    int x = 0;
    struct
    {
        void *a, *b, *c;
        std::uint64_t d;
    } capture{&x, &x, &x, 42};
    EventCallback cb([capture, &x] { x += static_cast<int>(capture.d); });
    cb();
    EXPECT_EQ(x, 42);
    EXPECT_EQ(EventCallback::heapFallbackCount(), before);
}

TEST(EventCallback, OversizedCaptureFallsBackToHeap)
{
    const std::uint64_t before = EventCallback::heapFallbackCount();
    struct Big
    {
        unsigned char bytes[EventCallback::inlineCapacity + 16];
    } big{};
    big.bytes[0] = 7;
    int out = 0;
    EventCallback cb([big, &out] { out = big.bytes[0]; });
    cb();
    EXPECT_EQ(out, 7);
    EXPECT_EQ(EventCallback::heapFallbackCount(), before + 1);
}

TEST(EventCallback, MoveTransfersOwnership)
{
    int calls = 0;
    EventCallback a([&calls] { ++calls; });
    EventCallback b(std::move(a));
    EXPECT_FALSE(static_cast<bool>(a));
    ASSERT_TRUE(static_cast<bool>(b));
    b();
    EventCallback c;
    c = std::move(b);
    c();
    EXPECT_EQ(calls, 2);
}

TEST(EventCallback, DestructionReleasesCapturedResources)
{
    auto counter = std::make_shared<int>(0);
    {
        EventCallback cb([counter] { (void)counter; });
        EXPECT_EQ(counter.use_count(), 2);
    }
    EXPECT_EQ(counter.use_count(), 1);

    // cancel() must release captures immediately, too.
    EventQueue eq;
    const EventId id = eq.schedule(10, [counter] { (void)counter; });
    EXPECT_EQ(counter.use_count(), 2);
    eq.cancel(id);
    EXPECT_EQ(counter.use_count(), 1);
}

} // namespace
} // namespace hyperplane
