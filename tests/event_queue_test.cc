/**
 * @file
 * Unit tests for the discrete-event simulation kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace hyperplane {
namespace {

TEST(EventQueue, StartsAtTickZeroAndEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, DispatchesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickFiresInScheduleOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, NowAdvancesToEventTick)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(42, [&] { seen = eq.now(); });
    eq.run();
    EXPECT_EQ(seen, 42u);
}

TEST(EventQueue, RunUntilStopsAtBoundary)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.schedule(30, [&] { ++fired; });
    EXPECT_EQ(eq.run(20), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 20u);
    EXPECT_EQ(eq.pending(), 1u);
}

TEST(EventQueue, RunUntilAdvancesTimeEvenWithoutEvents)
{
    EventQueue eq;
    eq.run(100);
    EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueue, CancelPreventsDispatch)
{
    EventQueue eq;
    int fired = 0;
    const EventId id = eq.schedule(10, [&] { ++fired; });
    EXPECT_TRUE(eq.cancel(id));
    eq.run();
    EXPECT_EQ(fired, 0);
}

TEST(EventQueue, CancelTwiceFails)
{
    EventQueue eq;
    const EventId id = eq.schedule(10, [] {});
    EXPECT_TRUE(eq.cancel(id));
    EXPECT_FALSE(eq.cancel(id));
}

TEST(EventQueue, CancelAfterFireFails)
{
    EventQueue eq;
    const EventId id = eq.schedule(10, [] {});
    eq.run();
    EXPECT_FALSE(eq.cancel(id));
}

TEST(EventQueue, CancelInvalidIdFails)
{
    EventQueue eq;
    EXPECT_FALSE(eq.cancel(invalidEventId));
    EXPECT_FALSE(eq.cancel(9999));
}

TEST(EventQueue, PendingTracksCancellations)
{
    EventQueue eq;
    const EventId a = eq.schedule(10, [] {});
    eq.schedule(20, [] {});
    EXPECT_EQ(eq.pending(), 2u);
    eq.cancel(a);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 5)
            eq.scheduleIn(10, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(eq.now(), 40u);
}

TEST(EventQueue, NextEventTickSkipsCancelled)
{
    EventQueue eq;
    const EventId a = eq.schedule(10, [] {});
    eq.schedule(20, [] {});
    eq.cancel(a);
    EXPECT_EQ(eq.nextEventTick(), 20u);
}

TEST(EventQueue, AdvanceToMovesTime)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.advanceTo(50);
    EXPECT_EQ(eq.now(), 50u);
}

TEST(EventQueue, DispatchedCounterAccumulates)
{
    EventQueue eq;
    for (int i = 0; i < 10; ++i)
        eq.schedule(i, [] {});
    eq.run();
    EXPECT_EQ(eq.dispatched(), 10u);
}

TEST(EventQueue, StressManyEventsStayOrdered)
{
    EventQueue eq;
    Tick last = 0;
    bool ordered = true;
    for (int i = 0; i < 10000; ++i) {
        const Tick when = static_cast<Tick>((i * 7919) % 5000);
        eq.schedule(when, [&, when] {
            if (when < last)
                ordered = false;
            last = when;
        });
    }
    eq.run();
    EXPECT_TRUE(ordered);
}

} // namespace
} // namespace hyperplane
