/**
 * @file
 * Unit tests for the statistics registry and SdpSystem::dumpStats.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "dp/sdp_system.hh"
#include "stats/registry.hh"

namespace hyperplane {
namespace stats {
namespace {

TEST(Registry, CountersReadAtReportTime)
{
    Registry reg;
    Counter c("hits");
    reg.add("cache.hits", c);
    c.inc(5);
    EXPECT_EQ(reg.value("cache.hits"), 5.0);
    c.inc(2);
    EXPECT_EQ(reg.value("cache.hits"), 7.0);
}

TEST(Registry, ScalarsEvaluateLazily)
{
    Registry reg;
    double x = 1.0;
    reg.addScalar("derived.x", [&x] { return x * 2; });
    x = 21.0;
    EXPECT_DOUBLE_EQ(reg.value("derived.x"), 42.0);
}

TEST(Registry, ReportSortedByPath)
{
    Registry reg;
    Counter a("z"), b("a");
    reg.add("z.last", a);
    reg.add("a.first", b);
    const std::string out = reg.report();
    EXPECT_LT(out.find("a.first"), out.find("z.last"));
}

TEST(Registry, ReportFormatsIntegersWithoutFraction)
{
    Registry reg;
    Counter c("n");
    c.inc(123);
    reg.add("n", c);
    reg.addScalar("pi", [] { return 3.25; });
    const std::string out = reg.report();
    EXPECT_NE(out.find("n = 123\n"), std::string::npos);
    EXPECT_NE(out.find("pi = 3.25\n"), std::string::npos);
}

TEST(Registry, AddGroupUsesCounterNames)
{
    Registry reg;
    Counter a("alpha"), b("beta");
    a.inc(1);
    b.inc(2);
    reg.addGroup("grp", {a, b});
    EXPECT_EQ(reg.value("grp.alpha"), 1.0);
    EXPECT_EQ(reg.value("grp.beta"), 2.0);
}

TEST(Registry, UnknownPathIsNaN)
{
    Registry reg;
    EXPECT_TRUE(std::isnan(reg.value("nope")));
}

TEST(Registry, SdpSystemDumpContainsComponentStats)
{
    dp::SdpConfig cfg;
    cfg.plane = dp::PlaneKind::HyperPlane;
    cfg.numCores = 1;
    cfg.numQueues = 16;
    cfg.offeredRatePerSec = 5e4;
    cfg.warmupUs = 200.0;
    cfg.measureUs = 2000.0;
    cfg.seed = 5;
    dp::SdpSystem sys(cfg);
    sys.run();
    std::ostringstream os;
    sys.dumpStats(os);
    const std::string out = os.str();
    for (const char *key :
         {"mem.l1_hits", "source.arrivals_generated",
          "hyperplane0.qwait_calls", "hyperplane0.monitoring.inserts",
          "hyperplane0.ready.grants", "core0.tasks",
          "core0.halt_ticks"}) {
        EXPECT_NE(out.find(key), std::string::npos) << key;
    }
    // The monitoring set still holds all 16 doorbells.
    EXPECT_NE(out.find("hyperplane0.monitoring.occupancy = 16"),
              std::string::npos);
}

} // namespace
} // namespace stats
} // namespace hyperplane
