/**
 * @file
 * Unit tests for the statistics registry and SdpSystem::dumpStats.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <sstream>
#include <vector>

#include "dp/sdp_system.hh"
#include "json_check.hh"
#include "sim/logging.hh"
#include "stats/registry.hh"

namespace hyperplane {
namespace stats {
namespace {

TEST(Registry, CountersReadAtReportTime)
{
    Registry reg;
    Counter c("hits");
    reg.add("cache.hits", c);
    c.inc(5);
    EXPECT_EQ(reg.value("cache.hits"), 5.0);
    c.inc(2);
    EXPECT_EQ(reg.value("cache.hits"), 7.0);
}

TEST(Registry, ScalarsEvaluateLazily)
{
    Registry reg;
    double x = 1.0;
    reg.addScalar("derived.x", [&x] { return x * 2; });
    x = 21.0;
    EXPECT_DOUBLE_EQ(reg.value("derived.x"), 42.0);
}

TEST(Registry, ReportSortedByPath)
{
    Registry reg;
    Counter a("z"), b("a");
    reg.add("z.last", a);
    reg.add("a.first", b);
    const std::string out = reg.report();
    EXPECT_LT(out.find("a.first"), out.find("z.last"));
}

TEST(Registry, ReportFormatsIntegersWithoutFraction)
{
    Registry reg;
    Counter c("n");
    c.inc(123);
    reg.add("n", c);
    reg.addScalar("pi", [] { return 3.25; });
    const std::string out = reg.report();
    EXPECT_NE(out.find("n = 123\n"), std::string::npos);
    EXPECT_NE(out.find("pi = 3.25\n"), std::string::npos);
}

TEST(Registry, AddGroupUsesCounterNames)
{
    Registry reg;
    Counter a("alpha"), b("beta");
    a.inc(1);
    b.inc(2);
    reg.addGroup("grp", {a, b});
    EXPECT_EQ(reg.value("grp.alpha"), 1.0);
    EXPECT_EQ(reg.value("grp.beta"), 2.0);
}

TEST(Registry, UnknownPathIsNaN)
{
    Registry reg;
    EXPECT_TRUE(std::isnan(reg.value("nope")));
}

TEST(Registry, DuplicatePathWarnsAndFirstWins)
{
    Registry reg;
    Counter a("x"), b("x");
    a.inc(1);
    b.inc(2);
    reg.add("dup.x", a);
    const unsigned long warnsBefore = warnCount();
    reg.add("dup.x", b);
    EXPECT_EQ(warnCount(), warnsBefore + 1);
    EXPECT_EQ(reg.size(), 1u);
    EXPECT_EQ(reg.value("dup.x"), 1.0);
}

TEST(Registry, HasAndPathsReflectEntries)
{
    Registry reg;
    reg.addScalar("b.two", [] { return 2.0; });
    reg.addScalar("a.one", [] { return 1.0; });
    reg.addScalar("c.three", [] { return 3.0; });
    EXPECT_TRUE(reg.has("a.one"));
    EXPECT_FALSE(reg.has("a.on"));
    EXPECT_FALSE(reg.has("a.one "));
    const auto paths = reg.paths();
    ASSERT_EQ(paths.size(), 3u);
    EXPECT_EQ(paths[0], "a.one");
    EXPECT_EQ(paths[1], "b.two");
    EXPECT_EQ(paths[2], "c.three");
}

TEST(Registry, ValueLookupWorksAcrossManySortedEntries)
{
    // Exercises the binary search over the sorted entry vector.
    Registry reg;
    std::vector<double> vals(100);
    for (int i = 0; i < 100; ++i) {
        vals[i] = i * 1.5;
        char path[32];
        std::snprintf(path, sizeof(path), "grp%02d.v", i);
        reg.addScalar(path, [&vals, i] { return vals[i]; });
    }
    for (int i = 0; i < 100; ++i) {
        char path[32];
        std::snprintf(path, sizeof(path), "grp%02d.v", i);
        EXPECT_DOUBLE_EQ(reg.value(path), i * 1.5);
    }
    EXPECT_TRUE(std::isnan(reg.value("grp50")));   // prefix only
    EXPECT_TRUE(std::isnan(reg.value("grp50.vv"))); // longer
}

TEST(Registry, ReportJsonIsWellFormed)
{
    Registry reg;
    Counter c("hits");
    c.inc(42);
    reg.add("cache.hits", c);
    reg.addScalar("frac", [] { return 0.5; });
    reg.addScalar("bad", [] { return std::nan(""); });
    const std::string json = reg.reportJson();
    EXPECT_TRUE(hyperplane::testing::jsonWellFormed(json)) << json;
    EXPECT_NE(json.find("\"cache.hits\":42"), std::string::npos);
    EXPECT_NE(json.find("\"frac\":0.5"), std::string::npos);
    // Non-finite values serialize as null, keeping the document valid.
    EXPECT_NE(json.find("\"bad\":null"), std::string::npos);
}

TEST(Registry, SdpSystemReportJsonParses)
{
    dp::SdpConfig cfg;
    cfg.plane = dp::PlaneKind::HyperPlane;
    cfg.numCores = 1;
    cfg.numQueues = 16;
    cfg.offeredRatePerSec = 5e4;
    cfg.warmupUs = 200.0;
    cfg.measureUs = 1000.0;
    cfg.seed = 5;
    dp::SdpSystem sys(cfg);
    sys.run();
    const std::string json = sys.registry().reportJson();
    EXPECT_TRUE(hyperplane::testing::jsonWellFormed(json));
    EXPECT_NE(json.find("\"core0.tasks\""), std::string::npos);
}

TEST(Registry, SdpSystemDumpContainsComponentStats)
{
    dp::SdpConfig cfg;
    cfg.plane = dp::PlaneKind::HyperPlane;
    cfg.numCores = 1;
    cfg.numQueues = 16;
    cfg.offeredRatePerSec = 5e4;
    cfg.warmupUs = 200.0;
    cfg.measureUs = 2000.0;
    cfg.seed = 5;
    dp::SdpSystem sys(cfg);
    sys.run();
    std::ostringstream os;
    sys.dumpStats(os);
    const std::string out = os.str();
    for (const char *key :
         {"mem.l1_hits", "source.arrivals_generated",
          "hyperplane0.qwait_calls", "hyperplane0.monitoring.inserts",
          "hyperplane0.ready.grants", "core0.tasks",
          "core0.halt_ticks"}) {
        EXPECT_NE(out.find(key), std::string::npos) << key;
    }
    // The monitoring set still holds all 16 doorbells.
    EXPECT_NE(out.find("hyperplane0.monitoring.occupancy = 16"),
              std::string::npos);
}

} // namespace
} // namespace stats
} // namespace hyperplane
