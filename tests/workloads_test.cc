/**
 * @file
 * Unit tests for the six data-plane workloads: the real computations
 * must be correct and the timing/footprint models sane.
 */

#include <gtest/gtest.h>

#include "codes/gf256.hh"
#include "net/headers.hh"
#include "workloads/crypto_forwarding.hh"
#include "workloads/erasure_coding.hh"
#include "workloads/packet_encapsulation.hh"
#include "workloads/packet_steering.hh"
#include "workloads/raid_protection.hh"
#include "workloads/request_dispatching.hh"

namespace hyperplane {
namespace workloads {
namespace {

queueing::WorkItem
item(std::uint64_t seq = 1, std::uint32_t payload = 1024,
     std::uint32_t flow = 7)
{
    queueing::WorkItem it;
    it.seq = seq;
    it.payloadBytes = payload;
    it.flowId = flow;
    return it;
}

TEST(WorkloadFactory, CreatesAllSixKinds)
{
    EXPECT_EQ(allKinds().size(), 6u);
    for (Kind k : allKinds()) {
        const auto wl = makeWorkload(k);
        ASSERT_NE(wl, nullptr);
        EXPECT_EQ(wl->kind(), k);
        EXPECT_FALSE(wl->name().empty());
        EXPECT_GT(wl->defaultPayloadBytes(), 0u);
    }
}

TEST(WorkloadFactory, ServiceTimesAreMicrosecondScale)
{
    // Section V-A: every task takes "a few microseconds".
    for (Kind k : allKinds()) {
        const auto wl = makeWorkload(k);
        queueing::WorkItem it = item();
        it.payloadBytes = wl->defaultPayloadBytes();
        const double us = ticksToUs(wl->serviceCycles(it));
        EXPECT_GE(us, 0.5) << wl->name();
        EXPECT_LE(us, 15.0) << wl->name();
    }
}

TEST(WorkloadFactory, ServiceCyclesMonotoneInPayload)
{
    for (Kind k : allKinds()) {
        const auto wl = makeWorkload(k);
        EXPECT_LE(wl->serviceCycles(item(1, 256)),
                  wl->serviceCycles(item(1, 4096)))
            << wl->name();
    }
}

TEST(WorkloadFactory, DataLinesPositiveAndBounded)
{
    for (Kind k : allKinds()) {
        const auto wl = makeWorkload(k);
        const unsigned lines = wl->dataLines(item());
        EXPECT_GE(lines, 1u) << wl->name();
        EXPECT_LE(lines, 200u) << wl->name();
    }
}

TEST(PacketEncapsulationTest, ProducesValidGrePacket)
{
    PacketEncapsulation wl(42);
    net::PacketBuffer pkt = wl.encapsulate(item(3, 512));
    // Outer header is IPv6 carrying GRE with the flow id as key.
    auto key = net::greDecapsulate(pkt);
    ASSERT_TRUE(key.has_value());
    EXPECT_EQ(*key, 7u);
    // Inner packet is valid IPv4 of the right size.
    const auto inner = net::Ipv4Header::parse(pkt.data());
    ASSERT_TRUE(inner.has_value());
    EXPECT_EQ(inner->totalLength, net::Ipv4Header::wireSize + 512);
}

TEST(PacketEncapsulationTest, DeterministicAcrossInstances)
{
    PacketEncapsulation a(42), b(42);
    EXPECT_TRUE(a.encapsulate(item(9)) == b.encapsulate(item(9)));
}

TEST(PacketEncapsulationTest, ExecuteCountsItems)
{
    PacketEncapsulation wl(1);
    wl.execute(item(1));
    wl.execute(item(2));
    EXPECT_EQ(wl.processed(), 2u);
}

TEST(CryptoForwardingTest, CiphertextDecryptsBack)
{
    CryptoForwarding wl(42);
    const auto ct = wl.encrypt(item(5, 100));
    EXPECT_EQ(ct.size() % 16, 0u);
    EXPECT_GT(ct.size(), 100u);
}

TEST(CryptoForwardingTest, DistinctItemsDistinctCiphertext)
{
    CryptoForwarding wl(42);
    EXPECT_NE(wl.encrypt(item(1)), wl.encrypt(item(2)));
}

TEST(CryptoForwardingTest, CryptoIsTheSlowestPerByte)
{
    CryptoForwarding crypto(1);
    PacketEncapsulation encap(1);
    EXPECT_GT(crypto.serviceCycles(item()),
              3 * encap.serviceCycles(item()));
}

TEST(PacketSteeringTest, SameFlowSameDestination)
{
    PacketSteering wl(42);
    const unsigned d1 = wl.steer(item(1, 1024, 100));
    const unsigned d2 = wl.steer(item(2, 1024, 100));
    EXPECT_EQ(d1, d2);
    EXPECT_EQ(wl.sessionCount(), 1u);
}

TEST(PacketSteeringTest, ManyFlowsSpreadAcrossDestinations)
{
    PacketSteering wl(42);
    std::vector<int> hits(PacketSteering::numDestinations, 0);
    for (std::uint32_t f = 0; f < 2000; ++f)
        ++hits[wl.steer(item(f, 64, f))];
    unsigned used = 0;
    for (int h : hits)
        used += h > 0 ? 1 : 0;
    EXPECT_GT(used, PacketSteering::numDestinations / 2);
}

TEST(ErasureCodingTest, ParityEnablesReconstruction)
{
    ErasureCoding wl(42);
    const auto it = item(11, 600);
    const auto data = wl.makeShards(it);
    const auto parity = wl.encode(it);
    ASSERT_EQ(parity.size(), ErasureCoding::parityShards);

    std::vector<codes::Shard> shards = data;
    shards.insert(shards.end(), parity.begin(), parity.end());
    shards[0].clear();
    shards[3].clear();
    shards[5].clear(); // lose 3 of 6 data shards
    const auto decoded = wl.coder().decode(shards);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, data);
}

TEST(RaidProtectionTest, ParityVerifiesAndRecovers)
{
    RaidProtection wl(42);
    const auto it = item(13, 800);
    const auto stripe = wl.makeStripe(it);
    const auto [p, q] = wl.computeParity(it);
    EXPECT_TRUE(wl.raid().verify(stripe, p, q));

    auto damaged = stripe;
    damaged[2].clear();
    damaged[6].clear();
    const auto [r2, r6] = wl.raid().recoverTwoData(damaged, p, q, 2, 6);
    EXPECT_EQ(r2, stripe[2]);
    EXPECT_EQ(r6, stripe[6]);
}

TEST(RequestDispatchingTest, DescriptorFieldsConsistent)
{
    RequestDispatching wl(42);
    const auto rpc = wl.dispatch(item(17));
    EXPECT_LT(rpc.requestType, RequestDispatching::numRequestTypes);
    EXPECT_EQ(rpc.targetServer / RequestDispatching::serversPerType,
              rpc.requestType);
    ASSERT_EQ(rpc.header.size(), 20u);
    EXPECT_EQ(net::getBe32(rpc.header.data()), rpc.requestType);
    EXPECT_EQ(net::getBe32(rpc.header.data() + 8), rpc.targetServer);
}

TEST(RequestDispatchingTest, DispatchDeterministicPerItem)
{
    RequestDispatching a(42), b(42);
    const auto r1 = a.dispatch(item(21));
    const auto r2 = b.dispatch(item(21));
    EXPECT_EQ(r1.requestType, r2.requestType);
    EXPECT_EQ(r1.targetServer, r2.targetServer);
    EXPECT_EQ(r1.payloadChecksum, r2.payloadChecksum);
}

TEST(RequestDispatchingTest, TypesCoverTheSpace)
{
    RequestDispatching wl(42);
    for (std::uint64_t s = 0; s < 600; ++s)
        wl.execute(item(s));
    unsigned nonEmpty = 0;
    for (auto c : wl.typeCounts())
        nonEmpty += c > 0 ? 1 : 0;
    EXPECT_GT(nonEmpty, RequestDispatching::numRequestTypes / 2);
}

/** Parameterized: execute() runs cleanly at many payload sizes. */
class WorkloadExecuteSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint32_t>>
{
};

TEST_P(WorkloadExecuteSweep, ExecutesWithoutError)
{
    const Kind kind = allKinds()[std::get<0>(GetParam())];
    const std::uint32_t payload = std::get<1>(GetParam());
    const auto wl = makeWorkload(kind, 7);
    for (std::uint64_t s = 0; s < 3; ++s)
        wl->execute(item(s, payload, static_cast<std::uint32_t>(s)));
    SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(
    AllKindsAndSizes, WorkloadExecuteSweep,
    ::testing::Combine(::testing::Range(0, 6),
                       ::testing::Values(64u, 256u, 1024u, 1500u)));

} // namespace
} // namespace workloads
} // namespace hyperplane
