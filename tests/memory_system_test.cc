/**
 * @file
 * Unit tests for the MESI directory memory-system model.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "mem/memory_system.hh"

namespace hyperplane {
namespace mem {
namespace {

MemorySystem
makeSystem(unsigned cores = 4)
{
    return MemorySystem(cores, CacheGeometry{32 * 1024, 4, 64},
                        CacheGeometry{1024 * 1024, 16, 64});
}

TEST(MemorySystem, ColdReadMissesToMemory)
{
    auto m = makeSystem();
    const auto r = m.read(0, 0x10000);
    EXPECT_EQ(r.servedBy, AccessLevel::Memory);
    EXPECT_EQ(r.latency, m.latencies().memAccess);
}

TEST(MemorySystem, SecondReadHitsL1)
{
    auto m = makeSystem();
    m.read(0, 0x10000);
    const auto r = m.read(0, 0x10000);
    EXPECT_EQ(r.servedBy, AccessLevel::L1);
    EXPECT_EQ(r.latency, m.latencies().l1Hit);
}

TEST(MemorySystem, OtherCoreReadHitsLlcAndShares)
{
    auto m = makeSystem();
    m.read(0, 0x10000); // core 0 E
    m.read(0, 0x10000);
    const auto r = m.read(1, 0x10000);
    // Core 0 held E: serviced by cache-to-cache forward.
    EXPECT_EQ(r.servedBy, AccessLevel::RemoteL1);
    EXPECT_EQ(m.l1(0).state(0x10000), LineState::Shared);
    EXPECT_EQ(m.l1(1).state(0x10000), LineState::Shared);
}

TEST(MemorySystem, ReadAfterSharersHitsLlc)
{
    auto m = makeSystem();
    m.read(0, 0x10000);
    m.read(1, 0x10000); // both Shared, line in LLC
    const auto r = m.read(2, 0x10000);
    EXPECT_EQ(r.servedBy, AccessLevel::LLC);
    EXPECT_EQ(m.l1(2).state(0x10000), LineState::Shared);
}

TEST(MemorySystem, WriteObtainsModified)
{
    auto m = makeSystem();
    m.write(0, 0x10000);
    EXPECT_EQ(m.l1(0).state(0x10000), LineState::Modified);
}

TEST(MemorySystem, SilentExclusiveToModifiedUpgrade)
{
    auto m = makeSystem();
    m.read(0, 0x10000); // E
    const std::uint64_t getmBefore = m.writeTransactions.value();
    const auto r = m.write(0, 0x10000);
    EXPECT_EQ(r.servedBy, AccessLevel::L1);
    EXPECT_EQ(m.l1(0).state(0x10000), LineState::Modified);
    // E->M is silent: no bus transaction (nothing to snoop).
    EXPECT_EQ(m.writeTransactions.value(), getmBefore);
}

TEST(MemorySystem, WriteInvalidatesSharers)
{
    auto m = makeSystem();
    m.read(0, 0x10000);
    m.read(1, 0x10000);
    m.read(2, 0x10000);
    m.write(3, 0x10000);
    EXPECT_EQ(m.l1(0).state(0x10000), LineState::Invalid);
    EXPECT_EQ(m.l1(1).state(0x10000), LineState::Invalid);
    EXPECT_EQ(m.l1(2).state(0x10000), LineState::Invalid);
    EXPECT_EQ(m.l1(3).state(0x10000), LineState::Modified);
}

TEST(MemorySystem, PingPongBetweenWriters)
{
    auto m = makeSystem();
    m.write(0, 0x10000);
    const auto r1 = m.write(1, 0x10000);
    EXPECT_EQ(r1.servedBy, AccessLevel::RemoteL1);
    EXPECT_TRUE(r1.coherence);
    const auto r0 = m.write(0, 0x10000);
    EXPECT_EQ(r0.servedBy, AccessLevel::RemoteL1);
    EXPECT_GE(m.remoteForwards.value(), 2u);
}

TEST(MemorySystem, SharedWriteUpgradePaysDirectoryLatency)
{
    auto m = makeSystem();
    m.read(0, 0x10000);
    m.read(1, 0x10000); // both S
    const auto r = m.write(0, 0x10000);
    EXPECT_EQ(r.latency, m.latencies().llcHit);
    EXPECT_TRUE(r.coherence);
    EXPECT_EQ(m.l1(1).state(0x10000), LineState::Invalid);
}

TEST(MemorySystem, AtomicRmwAddsExtraLatency)
{
    auto m = makeSystem();
    m.write(0, 0x10000);
    const auto w = m.write(0, 0x10000);
    const auto a = m.atomicRmw(0, 0x10000);
    EXPECT_EQ(a.latency, w.latency + m.latencies().atomicExtra);
}

TEST(MemorySystem, DeviceWriteInvalidatesAllAndFillsLlc)
{
    auto m = makeSystem();
    m.read(0, 0x10000);
    m.read(1, 0x10000);
    m.deviceWrite(0x10000);
    EXPECT_EQ(m.l1(0).state(0x10000), LineState::Invalid);
    EXPECT_EQ(m.l1(1).state(0x10000), LineState::Invalid);
    EXPECT_TRUE(m.llc().contains(0x10000));
    const auto r = m.read(0, 0x10000);
    EXPECT_EQ(r.servedBy, AccessLevel::LLC);
}

class RecordingSnooper : public Snooper
{
  public:
    void
    onWriteTransaction(Addr line, CoreId writer) override
    {
        events.emplace_back(line, writer);
    }
    std::vector<std::pair<Addr, CoreId>> events;
};

TEST(MemorySystem, SnooperSeesWritesInRange)
{
    auto m = makeSystem();
    RecordingSnooper snoop;
    m.watchRange(0x1000, 0x2000, &snoop);
    m.write(2, 0x1800);
    ASSERT_EQ(snoop.events.size(), 1u);
    EXPECT_EQ(snoop.events[0].first, lineBase(0x1800));
    EXPECT_EQ(snoop.events[0].second, 2u);
}

TEST(MemorySystem, SnooperIgnoresWritesOutsideRange)
{
    auto m = makeSystem();
    RecordingSnooper snoop;
    m.watchRange(0x1000, 0x2000, &snoop);
    m.write(0, 0x3000);
    m.read(0, 0x1800); // reads never fire the snoop
    EXPECT_TRUE(snoop.events.empty());
}

TEST(MemorySystem, SnooperSeesDeviceWrites)
{
    auto m = makeSystem();
    RecordingSnooper snoop;
    m.watchRange(0x1000, 0x2000, &snoop);
    m.deviceWrite(0x1040);
    ASSERT_EQ(snoop.events.size(), 1u);
    EXPECT_EQ(snoop.events[0].second, deviceWriter);
}

TEST(MemorySystem, SnooperNotFiredByLocalModifiedWrites)
{
    auto m = makeSystem();
    RecordingSnooper snoop;
    m.watchRange(0x1000, 0x2000, &snoop);
    m.write(0, 0x1000); // GetM: fires
    m.write(0, 0x1000); // M hit: silent
    m.write(0, 0x1000);
    EXPECT_EQ(snoop.events.size(), 1u);
}

TEST(MemorySystem, UnwatchStopsNotifications)
{
    auto m = makeSystem();
    RecordingSnooper snoop;
    m.watchRange(0x1000, 0x2000, &snoop);
    m.unwatch(&snoop);
    m.write(0, 0x1000);
    EXPECT_TRUE(snoop.events.empty());
}

TEST(MemorySystem, LlcEvictionBackInvalidatesL1)
{
    // Tiny LLC: 2 sets x 2 ways.
    MemorySystem m(2, CacheGeometry{32 * 1024, 4, 64},
                   CacheGeometry{256, 2, 64});
    const Addr a = 0x0000;
    m.read(0, a);
    // Fill the LLC set until `a` is evicted (stride = 2 sets x 64 B).
    for (int i = 1; i <= 2; ++i)
        m.read(1, a + i * 128);
    EXPECT_FALSE(m.llc().contains(a));
    // Inclusive hierarchy: the L1 copy must be gone too.
    EXPECT_FALSE(m.l1(0).contains(a));
}

TEST(MemorySystem, FlushAllEmptiesCaches)
{
    auto m = makeSystem();
    m.read(0, 0x10000);
    m.write(1, 0x20000);
    m.flushAll();
    EXPECT_FALSE(m.l1(0).contains(0x10000));
    EXPECT_FALSE(m.l1(1).contains(0x20000));
    EXPECT_FALSE(m.llc().contains(0x10000));
}

TEST(MemorySystem, StatsCountersAdvance)
{
    auto m = makeSystem();
    m.read(0, 0x10000);
    m.read(0, 0x10000);
    m.read(1, 0x50000);
    EXPECT_GE(m.l1Hits.value(), 1u);
    EXPECT_GE(m.memAccesses.value(), 2u);
}

TEST(MemorySystem, DirectoryStaysConsistent)
{
    auto m = makeSystem();
    m.read(0, 0x10000);
    m.write(1, 0x10000);
    m.read(2, 0x10000);
    m.deviceWrite(0x10000);
    m.checkDirectoryConsistency();
    m.flushAll();
    EXPECT_EQ(m.directoryLines(), 0u);
    m.checkDirectoryConsistency();
}

TEST(MemorySystem, OverlappingWatchRangesFireInRegistrationOrder)
{
    auto m = makeSystem();
    RecordingSnooper first, second;
    m.watchRange(0x1000, 0x3000, &first);
    m.watchRange(0x2000, 0x4000, &second); // overlaps the first
    m.write(0, 0x2800);                    // inside both
    ASSERT_EQ(first.events.size(), 1u);
    ASSERT_EQ(second.events.size(), 1u);
    m.write(1, 0x1100); // first only
    m.write(2, 0x3800); // second only
    EXPECT_EQ(first.events.size(), 2u);
    EXPECT_EQ(second.events.size(), 2u);
    EXPECT_EQ(m.snoopHits.value(), 4u);
}

TEST(MemorySystem, ManyDisjointWatchRangesDispatchExactly)
{
    auto m = makeSystem();
    std::vector<std::unique_ptr<RecordingSnooper>> snoops;
    for (unsigned i = 0; i < 16; ++i) {
        snoops.push_back(std::make_unique<RecordingSnooper>());
        const Addr lo = 0x10000 + i * 0x1000;
        m.watchRange(lo, lo + 0x1000, snoops.back().get());
    }
    m.write(0, 0x10000 + 5 * 0x1000 + 0x40); // range 5 only
    m.write(1, 0x0fff);                      // below every range
    m.write(2, 0x10000 + 16 * 0x1000);       // above every range
    for (unsigned i = 0; i < 16; ++i)
        EXPECT_EQ(snoops[i]->events.size(), i == 5 ? 1u : 0u);
}

// ---------------------------------------------------------------------
// Randomized differential test: the directory-backed MemorySystem vs a
// reference model replicating the pre-directory O(cores) tag-array
// scans.  The directory is a redundant index, so every AccessResult,
// every counter, every snoop delivery, and the final tag-array state
// must be identical.
// ---------------------------------------------------------------------

/** The scan-based coherence model this repo used before the directory. */
class RefMemorySystem
{
  public:
    RefMemorySystem(unsigned numCores, const CacheGeometry &l1Geom,
                    const CacheGeometry &llcGeom)
        : llc_(llcGeom)
    {
        for (unsigned i = 0; i < numCores; ++i)
            l1s_.emplace_back(l1Geom);
    }

    std::uint64_t l1Hits = 0;
    std::uint64_t llcHits = 0;
    std::uint64_t remoteForwards = 0;
    std::uint64_t memAccesses = 0;
    std::uint64_t invalidations = 0;
    std::uint64_t writeTransactions = 0;
    std::uint64_t snoopHits = 0;

    std::vector<CacheArray> l1s_;
    CacheArray llc_;
    MemLatencies lat_{};

    void
    watchRange(Addr lo, Addr hi, Snooper *snooper)
    {
        watches_.push_back({lo, hi, snooper});
    }

    AccessResult
    read(CoreId core, Addr addr)
    {
        const Addr line = lineBase(addr);
        CacheArray &l1c = l1s_[core];
        if (l1c.contains(line)) {
            l1c.touch(line);
            l1c.hits.inc();
            ++l1Hits;
            return {lat_.l1Hit, AccessLevel::L1, false};
        }
        l1c.misses.inc();
        const int owner = findOwner(line, core);
        if (owner >= 0) {
            l1s_[owner].setState(line, LineState::Shared);
            insertLlc(line);
            insertL1(core, line, LineState::Shared);
            ++remoteForwards;
            return {lat_.remoteL1Forward, AccessLevel::RemoteL1, true};
        }
        if (llc_.contains(line)) {
            llc_.touch(line);
            llc_.hits.inc();
            ++llcHits;
            const bool shared = anyOtherSharer(line, core);
            insertL1(core, line,
                     shared ? LineState::Shared : LineState::Exclusive);
            return {lat_.llcHit, AccessLevel::LLC, false};
        }
        llc_.misses.inc();
        ++memAccesses;
        insertLlc(line);
        insertL1(core, line, LineState::Exclusive);
        return {lat_.memAccess, AccessLevel::Memory, false};
    }

    AccessResult
    write(CoreId core, Addr addr)
    {
        const Addr line = lineBase(addr);
        CacheArray &l1c = l1s_[core];
        const LineState myState = l1c.state(line);
        if (myState == LineState::Modified) {
            l1c.touch(line);
            l1c.hits.inc();
            ++l1Hits;
            return {lat_.l1Hit, AccessLevel::L1, false};
        }
        if (myState == LineState::Exclusive) {
            l1c.setState(line, LineState::Modified);
            l1c.touch(line);
            l1c.hits.inc();
            ++l1Hits;
            return {lat_.l1Hit, AccessLevel::L1, false};
        }
        ++writeTransactions;
        notifySnoopers(line, core);
        if (myState == LineState::Shared) {
            invalidateOthers(line, core);
            l1c.setState(line, LineState::Modified);
            l1c.touch(line);
            return {lat_.llcHit, AccessLevel::LLC, true};
        }
        l1c.misses.inc();
        const int owner = findOwner(line, core);
        if (owner >= 0) {
            l1s_[owner].invalidate(line);
            ++invalidations;
            insertLlc(line);
            insertL1(core, line, LineState::Modified);
            ++remoteForwards;
            return {lat_.remoteL1Forward, AccessLevel::RemoteL1, true};
        }
        if (llc_.contains(line)) {
            llc_.touch(line);
            llc_.hits.inc();
            ++llcHits;
            const bool hadSharers = invalidateOthers(line, core) > 0;
            insertL1(core, line, LineState::Modified);
            return {lat_.llcHit, AccessLevel::LLC, hadSharers};
        }
        llc_.misses.inc();
        ++memAccesses;
        insertLlc(line);
        insertL1(core, line, LineState::Modified);
        return {lat_.memAccess, AccessLevel::Memory, false};
    }

    AccessResult
    atomicRmw(CoreId core, Addr addr)
    {
        AccessResult r = write(core, addr);
        r.latency += lat_.atomicExtra;
        return r;
    }

    void
    deviceWrite(Addr addr)
    {
        const Addr line = lineBase(addr);
        ++writeTransactions;
        notifySnoopers(line, deviceWriter);
        invalidateOthers(line, deviceWriter);
        insertLlc(line);
        llc_.touch(line);
    }

  private:
    struct WatchedRange
    {
        Addr lo;
        Addr hi;
        Snooper *snooper;
    };

    int
    findOwner(Addr line, CoreId except) const
    {
        for (unsigned c = 0; c < l1s_.size(); ++c) {
            if (c == except)
                continue;
            const LineState st = l1s_[c].state(line);
            if (st == LineState::Modified || st == LineState::Exclusive)
                return static_cast<int>(c);
        }
        return -1;
    }

    bool
    anyOtherSharer(Addr line, CoreId except) const
    {
        for (unsigned c = 0; c < l1s_.size(); ++c) {
            if (c != except && l1s_[c].contains(line))
                return true;
        }
        return false;
    }

    unsigned
    invalidateOthers(Addr line, CoreId except)
    {
        unsigned n = 0;
        for (unsigned c = 0; c < l1s_.size(); ++c) {
            if (c == except)
                continue;
            if (l1s_[c].invalidate(line) != LineState::Invalid)
                ++n;
        }
        invalidations += n;
        return n;
    }

    void
    insertLlc(Addr line)
    {
        if (auto victim = llc_.insert(line, LineState::Shared))
            invalidateOthers(victim->first, deviceWriter);
    }

    void
    insertL1(CoreId core, Addr line, LineState st)
    {
        (void)l1s_[core].insert(line, st);
    }

    void
    notifySnoopers(Addr line, CoreId writer)
    {
        for (const auto &w : watches_) {
            if (line >= w.lo && line < w.hi) {
                ++snoopHits;
                w.snooper->onWriteTransaction(line, writer);
            }
        }
    }

    std::vector<WatchedRange> watches_;
};

void
runDifferential(unsigned numCores, std::uint64_t seed, unsigned ops)
{
    SCOPED_TRACE("numCores=" + std::to_string(numCores));
    // Tiny caches so evictions, LLC back-invalidation, and set-conflict
    // aliasing all fire constantly.
    const CacheGeometry l1Geom{4 * 1024, 4, 64};   // 16 sets
    const CacheGeometry llcGeom{64 * 1024, 8, 64}; // 128 sets
    MemorySystem dut(numCores, l1Geom, llcGeom);
    RefMemorySystem ref(numCores, l1Geom, llcGeom);

    RecordingSnooper dutSnoop, refSnoop;
    // Two disjoint doorbell-style ranges (the sorted-index dispatch
    // path) covering part of the line pool.
    dut.watchRange(0x0000, 0x4000, &dutSnoop);
    dut.watchRange(0x8000, 0xc000, &dutSnoop);
    ref.watchRange(0x0000, 0x4000, &refSnoop);
    ref.watchRange(0x8000, 0xc000, &refSnoop);

    std::mt19937_64 rng(seed);
    const unsigned numLines = 1024;
    for (unsigned i = 0; i < ops; ++i) {
        const Addr addr = (rng() % numLines) * cacheLineBytes +
                          (rng() % cacheLineBytes);
        const auto core = static_cast<CoreId>(rng() % numCores);
        const unsigned op = rng() % 10;
        AccessResult a{}, b{};
        if (op < 4) {
            a = dut.read(core, addr);
            b = ref.read(core, addr);
        } else if (op < 7) {
            a = dut.write(core, addr);
            b = ref.write(core, addr);
        } else if (op < 8) {
            a = dut.atomicRmw(core, addr);
            b = ref.atomicRmw(core, addr);
        } else {
            dut.deviceWrite(addr);
            ref.deviceWrite(addr);
        }
        ASSERT_EQ(a.latency, b.latency) << "op " << i;
        ASSERT_EQ(a.servedBy, b.servedBy) << "op " << i;
        ASSERT_EQ(a.coherence, b.coherence) << "op " << i;
        if (i % 8192 == 0)
            dut.checkDirectoryConsistency();
    }
    dut.checkDirectoryConsistency();

    // Counters.
    EXPECT_EQ(dut.l1Hits.value(), ref.l1Hits);
    EXPECT_EQ(dut.llcHits.value(), ref.llcHits);
    EXPECT_EQ(dut.remoteForwards.value(), ref.remoteForwards);
    EXPECT_EQ(dut.memAccesses.value(), ref.memAccesses);
    EXPECT_EQ(dut.invalidations.value(), ref.invalidations);
    EXPECT_EQ(dut.writeTransactions.value(), ref.writeTransactions);
    EXPECT_EQ(dut.snoopHits.value(), ref.snoopHits);

    // Per-array counters and residency.
    for (unsigned c = 0; c < numCores; ++c) {
        EXPECT_EQ(dut.l1(c).hits.value(), ref.l1s_[c].hits.value());
        EXPECT_EQ(dut.l1(c).misses.value(), ref.l1s_[c].misses.value());
        EXPECT_EQ(dut.l1(c).evictions.value(),
                  ref.l1s_[c].evictions.value());
        EXPECT_EQ(dut.l1(c).residentLines(),
                  ref.l1s_[c].residentLines());
    }
    EXPECT_EQ(dut.llc().hits.value(), ref.llc_.hits.value());
    EXPECT_EQ(dut.llc().misses.value(), ref.llc_.misses.value());
    EXPECT_EQ(dut.llc().evictions.value(), ref.llc_.evictions.value());
    EXPECT_EQ(dut.llc().residentLines(), ref.llc_.residentLines());

    // Final tag-array state, line by line.
    for (unsigned l = 0; l < numLines; ++l) {
        const Addr line = l * cacheLineBytes;
        for (unsigned c = 0; c < numCores; ++c) {
            ASSERT_EQ(dut.l1(c).state(line), ref.l1s_[c].state(line))
                << "line " << l << " core " << c;
        }
        ASSERT_EQ(dut.llc().state(line), ref.llc_.state(line))
            << "line " << l;
    }

    // Snoop deliveries: same lines, same writers, same order.
    ASSERT_EQ(dutSnoop.events.size(), refSnoop.events.size());
    for (std::size_t i = 0; i < dutSnoop.events.size(); ++i) {
        ASSERT_EQ(dutSnoop.events[i], refSnoop.events[i])
            << "snoop " << i;
    }
}

TEST(MemorySystemDifferential, OneCore)
{
    runDifferential(1, 0x1001, 100000);
}

TEST(MemorySystemDifferential, TwoCores)
{
    runDifferential(2, 0x1002, 100000);
}

TEST(MemorySystemDifferential, SixteenCores)
{
    runDifferential(16, 0x1016, 100000);
}

TEST(MemorySystemDifferential, SixtyFourCores)
{
    runDifferential(64, 0x1064, 100000);
}

// Max supported core count: sharer ids land in the directory's second
// mask word and the packed-slot id field uses its full range.
TEST(MemorySystemDifferential, HundredTwentyEightCores)
{
    runDifferential(128, 0x1128, 100000);
}

} // namespace
} // namespace mem
} // namespace hyperplane
