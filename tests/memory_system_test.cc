/**
 * @file
 * Unit tests for the MESI directory memory-system model.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/memory_system.hh"

namespace hyperplane {
namespace mem {
namespace {

MemorySystem
makeSystem(unsigned cores = 4)
{
    return MemorySystem(cores, CacheGeometry{32 * 1024, 4, 64},
                        CacheGeometry{1024 * 1024, 16, 64});
}

TEST(MemorySystem, ColdReadMissesToMemory)
{
    auto m = makeSystem();
    const auto r = m.read(0, 0x10000);
    EXPECT_EQ(r.servedBy, AccessLevel::Memory);
    EXPECT_EQ(r.latency, m.latencies().memAccess);
}

TEST(MemorySystem, SecondReadHitsL1)
{
    auto m = makeSystem();
    m.read(0, 0x10000);
    const auto r = m.read(0, 0x10000);
    EXPECT_EQ(r.servedBy, AccessLevel::L1);
    EXPECT_EQ(r.latency, m.latencies().l1Hit);
}

TEST(MemorySystem, OtherCoreReadHitsLlcAndShares)
{
    auto m = makeSystem();
    m.read(0, 0x10000); // core 0 E
    m.read(0, 0x10000);
    const auto r = m.read(1, 0x10000);
    // Core 0 held E: serviced by cache-to-cache forward.
    EXPECT_EQ(r.servedBy, AccessLevel::RemoteL1);
    EXPECT_EQ(m.l1(0).state(0x10000), LineState::Shared);
    EXPECT_EQ(m.l1(1).state(0x10000), LineState::Shared);
}

TEST(MemorySystem, ReadAfterSharersHitsLlc)
{
    auto m = makeSystem();
    m.read(0, 0x10000);
    m.read(1, 0x10000); // both Shared, line in LLC
    const auto r = m.read(2, 0x10000);
    EXPECT_EQ(r.servedBy, AccessLevel::LLC);
    EXPECT_EQ(m.l1(2).state(0x10000), LineState::Shared);
}

TEST(MemorySystem, WriteObtainsModified)
{
    auto m = makeSystem();
    m.write(0, 0x10000);
    EXPECT_EQ(m.l1(0).state(0x10000), LineState::Modified);
}

TEST(MemorySystem, SilentExclusiveToModifiedUpgrade)
{
    auto m = makeSystem();
    m.read(0, 0x10000); // E
    const std::uint64_t getmBefore = m.writeTransactions.value();
    const auto r = m.write(0, 0x10000);
    EXPECT_EQ(r.servedBy, AccessLevel::L1);
    EXPECT_EQ(m.l1(0).state(0x10000), LineState::Modified);
    // E->M is silent: no bus transaction (nothing to snoop).
    EXPECT_EQ(m.writeTransactions.value(), getmBefore);
}

TEST(MemorySystem, WriteInvalidatesSharers)
{
    auto m = makeSystem();
    m.read(0, 0x10000);
    m.read(1, 0x10000);
    m.read(2, 0x10000);
    m.write(3, 0x10000);
    EXPECT_EQ(m.l1(0).state(0x10000), LineState::Invalid);
    EXPECT_EQ(m.l1(1).state(0x10000), LineState::Invalid);
    EXPECT_EQ(m.l1(2).state(0x10000), LineState::Invalid);
    EXPECT_EQ(m.l1(3).state(0x10000), LineState::Modified);
}

TEST(MemorySystem, PingPongBetweenWriters)
{
    auto m = makeSystem();
    m.write(0, 0x10000);
    const auto r1 = m.write(1, 0x10000);
    EXPECT_EQ(r1.servedBy, AccessLevel::RemoteL1);
    EXPECT_TRUE(r1.coherence);
    const auto r0 = m.write(0, 0x10000);
    EXPECT_EQ(r0.servedBy, AccessLevel::RemoteL1);
    EXPECT_GE(m.remoteForwards.value(), 2u);
}

TEST(MemorySystem, SharedWriteUpgradePaysDirectoryLatency)
{
    auto m = makeSystem();
    m.read(0, 0x10000);
    m.read(1, 0x10000); // both S
    const auto r = m.write(0, 0x10000);
    EXPECT_EQ(r.latency, m.latencies().llcHit);
    EXPECT_TRUE(r.coherence);
    EXPECT_EQ(m.l1(1).state(0x10000), LineState::Invalid);
}

TEST(MemorySystem, AtomicRmwAddsExtraLatency)
{
    auto m = makeSystem();
    m.write(0, 0x10000);
    const auto w = m.write(0, 0x10000);
    const auto a = m.atomicRmw(0, 0x10000);
    EXPECT_EQ(a.latency, w.latency + m.latencies().atomicExtra);
}

TEST(MemorySystem, DeviceWriteInvalidatesAllAndFillsLlc)
{
    auto m = makeSystem();
    m.read(0, 0x10000);
    m.read(1, 0x10000);
    m.deviceWrite(0x10000);
    EXPECT_EQ(m.l1(0).state(0x10000), LineState::Invalid);
    EXPECT_EQ(m.l1(1).state(0x10000), LineState::Invalid);
    EXPECT_TRUE(m.llc().contains(0x10000));
    const auto r = m.read(0, 0x10000);
    EXPECT_EQ(r.servedBy, AccessLevel::LLC);
}

class RecordingSnooper : public Snooper
{
  public:
    void
    onWriteTransaction(Addr line, CoreId writer) override
    {
        events.emplace_back(line, writer);
    }
    std::vector<std::pair<Addr, CoreId>> events;
};

TEST(MemorySystem, SnooperSeesWritesInRange)
{
    auto m = makeSystem();
    RecordingSnooper snoop;
    m.watchRange(0x1000, 0x2000, &snoop);
    m.write(2, 0x1800);
    ASSERT_EQ(snoop.events.size(), 1u);
    EXPECT_EQ(snoop.events[0].first, lineBase(0x1800));
    EXPECT_EQ(snoop.events[0].second, 2u);
}

TEST(MemorySystem, SnooperIgnoresWritesOutsideRange)
{
    auto m = makeSystem();
    RecordingSnooper snoop;
    m.watchRange(0x1000, 0x2000, &snoop);
    m.write(0, 0x3000);
    m.read(0, 0x1800); // reads never fire the snoop
    EXPECT_TRUE(snoop.events.empty());
}

TEST(MemorySystem, SnooperSeesDeviceWrites)
{
    auto m = makeSystem();
    RecordingSnooper snoop;
    m.watchRange(0x1000, 0x2000, &snoop);
    m.deviceWrite(0x1040);
    ASSERT_EQ(snoop.events.size(), 1u);
    EXPECT_EQ(snoop.events[0].second, deviceWriter);
}

TEST(MemorySystem, SnooperNotFiredByLocalModifiedWrites)
{
    auto m = makeSystem();
    RecordingSnooper snoop;
    m.watchRange(0x1000, 0x2000, &snoop);
    m.write(0, 0x1000); // GetM: fires
    m.write(0, 0x1000); // M hit: silent
    m.write(0, 0x1000);
    EXPECT_EQ(snoop.events.size(), 1u);
}

TEST(MemorySystem, UnwatchStopsNotifications)
{
    auto m = makeSystem();
    RecordingSnooper snoop;
    m.watchRange(0x1000, 0x2000, &snoop);
    m.unwatch(&snoop);
    m.write(0, 0x1000);
    EXPECT_TRUE(snoop.events.empty());
}

TEST(MemorySystem, LlcEvictionBackInvalidatesL1)
{
    // Tiny LLC: 2 sets x 2 ways.
    MemorySystem m(2, CacheGeometry{32 * 1024, 4, 64},
                   CacheGeometry{256, 2, 64});
    const Addr a = 0x0000;
    m.read(0, a);
    // Fill the LLC set until `a` is evicted (stride = 2 sets x 64 B).
    for (int i = 1; i <= 2; ++i)
        m.read(1, a + i * 128);
    EXPECT_FALSE(m.llc().contains(a));
    // Inclusive hierarchy: the L1 copy must be gone too.
    EXPECT_FALSE(m.l1(0).contains(a));
}

TEST(MemorySystem, FlushAllEmptiesCaches)
{
    auto m = makeSystem();
    m.read(0, 0x10000);
    m.write(1, 0x20000);
    m.flushAll();
    EXPECT_FALSE(m.l1(0).contains(0x10000));
    EXPECT_FALSE(m.l1(1).contains(0x20000));
    EXPECT_FALSE(m.llc().contains(0x10000));
}

TEST(MemorySystem, StatsCountersAdvance)
{
    auto m = makeSystem();
    m.read(0, 0x10000);
    m.read(0, 0x10000);
    m.read(1, 0x50000);
    EXPECT_GE(m.l1Hits.value(), 1u);
    EXPECT_GE(m.memAccesses.value(), 2u);
}

} // namespace
} // namespace mem
} // namespace hyperplane
