/**
 * @file
 * End-to-end loopback tests: the real UDP server + load generator over
 * 127.0.0.1.  Each test skips (with an annotation) when the sandbox
 * forbids sockets, so restricted CI environments stay green without
 * silently losing coverage elsewhere.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "server/loadgen.hh"
#include "server/server.hh"
#include "trace/chrome_trace.hh"
#include "trace/trace.hh"

namespace hyperplane {
namespace server {
namespace {

using namespace std::chrono_literals;

/** Start a server or skip the test when sockets are unavailable. */
#define START_OR_SKIP(srv)                                             \
    do {                                                               \
        if (!(srv).start())                                            \
            GTEST_SKIP()                                               \
                << "UDP loopback sockets unavailable in this sandbox"; \
    } while (0)

LoadGenConfig
loadgenFor(const UdpServer &srv, double rate, double seconds)
{
    LoadGenConfig lg;
    lg.serverPort = srv.port();
    lg.ratePerSec = rate;
    lg.durationSec = seconds;
    lg.numFlows = 64;
    lg.seed = 7;
    return lg;
}

TEST(ServerLoopback, EchoAnswersNearlyEverything)
{
    ServerConfig cfg;
    cfg.rxThreads = 2;
    cfg.workers = 2;
    cfg.txThreads = 1;
    cfg.numQueues = 16;
    UdpServer srv(cfg);
    START_OR_SKIP(srv);

    LoadGenConfig lg = loadgenFor(srv, 20000.0, 0.5);
    auto report = UdpLoadGen(lg).run();
    ASSERT_TRUE(report.has_value());
    EXPECT_TRUE(srv.stop());

    ASSERT_GT(report->sent, 0u);
    // The acceptance bar: >= 99.9% of requests answered.
    EXPECT_GE(report->completionRatio, 0.999);
    EXPECT_GT(report->latencySamples, 0u);
    EXPECT_GT(report->p99Us, 0.0);
    EXPECT_EQ(report->parseErrors, 0u);
    EXPECT_EQ(report->badStatus, 0u);
    EXPECT_EQ(srv.counterSnapshot().parseErrors, 0u);
    EXPECT_GE(srv.counterSnapshot().served, report->received);
}

TEST(ServerLoopback, AllOpcodesServeAndSteerSpreadsQueues)
{
    ServerConfig cfg;
    cfg.workers = 2;
    cfg.numQueues = 8;
    UdpServer srv(cfg);
    START_OR_SKIP(srv);

    LoadGenConfig lg = loadgenFor(srv, 10000.0, 0.4);
    lg.opcodeWeights = {0.4, 0.3, 0.3}; // echo / encap / steer mix
    lg.payloadBytes = 128;
    auto report = UdpLoadGen(lg).run();
    ASSERT_TRUE(report.has_value());
    EXPECT_TRUE(srv.stop());

    EXPECT_GE(report->completionRatio, 0.999);
    // Encap requests carry a valid IPv4 payload, so no bad statuses.
    EXPECT_EQ(report->badStatus, 0u);
    EXPECT_EQ(report->parseErrors, 0u);
}

TEST(ServerLoopback, ClosedLoopAlsoCompletes)
{
    ServerConfig cfg;
    UdpServer srv(cfg);
    START_OR_SKIP(srv);

    LoadGenConfig lg = loadgenFor(srv, 5000.0, 0.3);
    lg.openLoop = false;
    lg.window = 32;
    auto report = UdpLoadGen(lg).run();
    ASSERT_TRUE(report.has_value());
    EXPECT_TRUE(srv.stop());

    ASSERT_GT(report->sent, 0u);
    EXPECT_GE(report->completionRatio, 0.999);
}

TEST(ServerLoopback, StopDrainsAndNoHandlerRunsAfter)
{
    ServerConfig cfg;
    cfg.workers = 2;
    UdpServer srv(cfg);
    START_OR_SKIP(srv);

    LoadGenConfig lg = loadgenFor(srv, 15000.0, 0.3);
    auto report = UdpLoadGen(lg).run();
    ASSERT_TRUE(report.has_value());

    EXPECT_TRUE(srv.stop(2s));
    const std::uint64_t served = srv.counterSnapshot().served;
    EXPECT_EQ(srv.backlog(), 0u);
    // Idempotent, and nothing is served after stop() returned.
    EXPECT_TRUE(srv.stop());
    std::this_thread::sleep_for(50ms);
    EXPECT_EQ(srv.counterSnapshot().served, served);
}

TEST(ServerLoopback, WatchdogRecoversDroppedRings)
{
    // Drop EVERY RX->doorbell ring: without the watchdog nothing would
    // ever be served.  The watchdog's depth-vs-doorbell audit must
    // replay the lost notifications and, at this drop rate, demote the
    // afflicted queues to the polled fallback path.
    ServerConfig cfg;
    cfg.workers = 2;
    cfg.numQueues = 4;
    cfg.fault.dropRingProbability = 1.0;
    cfg.fault.watchdogPeriodUs = 500.0;
    cfg.fault.demoteThreshold = 2;
    UdpServer srv(cfg);
    START_OR_SKIP(srv);

    LoadGenConfig lg = loadgenFor(srv, 4000.0, 0.5);
    lg.lingerSec = 1.0; // recovery adds up to two sweep periods
    auto report = UdpLoadGen(lg).run();
    ASSERT_TRUE(report.has_value());
    EXPECT_TRUE(srv.stop());

    ASSERT_GT(report->sent, 0u);
    EXPECT_GT(srv.counters().ringsDropped.load(), 0u);
    EXPECT_GT(srv.counters().watchdogRecoveries.load(), 0u);
    // Everything was still answered, through recovery + fallback.
    EXPECT_GE(report->completionRatio, 0.999);
    EXPECT_GT(srv.counters().demotions.load(), 0u);
    EXPECT_GT(srv.counters().fallbackServes.load(), 0u);
}

TEST(ServerLoopback, HealthyTrafficTriggersNoRecoveries)
{
    // The two-sweep deficit confirmation must not misfire on the
    // ordinary push->ring race window of healthy RX threads.
    ServerConfig cfg;
    cfg.rxThreads = 2;
    cfg.workers = 2;
    cfg.fault.watchdogPeriodUs = 300.0;
    UdpServer srv(cfg);
    START_OR_SKIP(srv);

    LoadGenConfig lg = loadgenFor(srv, 20000.0, 0.4);
    auto report = UdpLoadGen(lg).run();
    ASSERT_TRUE(report.has_value());
    EXPECT_TRUE(srv.stop());

    EXPECT_GT(srv.counters().watchdogSweeps.load(), 10u);
    EXPECT_EQ(srv.counters().watchdogRecoveries.load(), 0u);
    EXPECT_EQ(srv.counters().demotions.load(), 0u);
}

TEST(ServerLoopback, TraceStampsExportToChromeJson)
{
    if (!trace::kCompiledIn)
        GTEST_SKIP() << "built with HYPERPLANE_TRACE=0";
    trace::Tracer tracer(1 << 18);
    tracer.setEnabled(true);

    ServerConfig cfg;
    cfg.workers = 2;
    cfg.tracer = &tracer;
    UdpServer srv(cfg);
    START_OR_SKIP(srv);

    LoadGenConfig lg = loadgenFor(srv, 2000.0, 0.2);
    auto report = UdpLoadGen(lg).run();
    ASSERT_TRUE(report.has_value());
    EXPECT_TRUE(srv.stop());

    const auto events = tracer.snapshot();
    ASSERT_FALSE(events.empty());

    // Every pipeline stage must have stamped something.
    bool sawDoorbell = false, sawGrant = false, sawService = false,
         sawCompletion = false;
    for (const auto &e : events) {
        sawDoorbell |= e.stage == trace::Stage::DoorbellWrite;
        sawGrant |= e.stage == trace::Stage::QwaitReturn;
        sawService |= e.stage == trace::Stage::Service;
        sawCompletion |= e.stage == trace::Stage::Completion;
    }
    EXPECT_TRUE(sawDoorbell);
    EXPECT_TRUE(sawGrant);
    EXPECT_TRUE(sawService);
    EXPECT_TRUE(sawCompletion);

    // Service begin/end spans must pair per worker track.
    if (tracer.dropped() == 0) {
        const auto check = trace::checkSpanPairing(events);
        EXPECT_TRUE(check.ok) << check.error;
    }

    // And the existing exporter must consume them as-is.
    const std::string json = trace::chromeTraceJson(events);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("doorbell_write"), std::string::npos);
    EXPECT_NE(json.find("completion"), std::string::npos);
}

TEST(ServerLoopback, RegistryExposesServerAndDeviceCounters)
{
    ServerConfig cfg;
    UdpServer srv(cfg);
    START_OR_SKIP(srv);

    LoadGenConfig lg = loadgenFor(srv, 2000.0, 0.2);
    auto report = UdpLoadGen(lg).run();
    ASSERT_TRUE(report.has_value());
    EXPECT_TRUE(srv.stop());

    stats::Registry reg;
    srv.registerStats(reg);
    EXPECT_TRUE(reg.has("server.rx_packets"));
    EXPECT_TRUE(reg.has("server.requests_served"));
    EXPECT_TRUE(reg.has("server.tx_packets"));
    EXPECT_TRUE(reg.has("server.dev.grants"));
    EXPECT_TRUE(reg.has("server.dev.wakeups"));
    EXPECT_GT(reg.value("server.rx_packets"), 0.0);
    EXPECT_GT(reg.value("server.dev.grants"), 0.0);
}

TEST(ServerLoopback, EchoPathIsZeroCopy)
{
    // The zero-copy acceptance gate: an echo-only run must perform
    // exactly zero payload copies between RX and TX — the response is
    // built in the request's own frame.
    ServerConfig cfg;
    cfg.rxThreads = 2;
    cfg.workers = 2;
    UdpServer srv(cfg);
    START_OR_SKIP(srv);

    LoadGenConfig lg = loadgenFor(srv, 8000.0, 0.4);
    lg.payloadBytes = 256; // real payload bytes that must not move
    auto report = UdpLoadGen(lg).run();
    ASSERT_TRUE(report.has_value());
    EXPECT_TRUE(srv.stop());

    const ServerCounterSnapshot s = srv.counterSnapshot();
    ASSERT_GT(s.served, 0u);
    EXPECT_EQ(s.payloadCopies, 0u)
        << "echo responses must reuse the RX frame";
    EXPECT_EQ(s.poolDrops, 0u);
    EXPECT_GE(report->completionRatio, 0.999);
}

TEST(ServerLoopback, EncapCountsItsOneTransformCopy)
{
    // GRE encap legitimately rewrites the payload: the tripwire must
    // count those (and only those) copies, proving it is live.
    ServerConfig cfg;
    UdpServer srv(cfg);
    START_OR_SKIP(srv);

    LoadGenConfig lg = loadgenFor(srv, 5000.0, 0.3);
    lg.opcodeWeights = {0.0, 1.0, 0.0}; // encap only
    lg.payloadBytes = 128;
    auto report = UdpLoadGen(lg).run();
    ASSERT_TRUE(report.has_value());
    EXPECT_TRUE(srv.stop());

    const ServerCounterSnapshot s = srv.counterSnapshot();
    ASSERT_GT(s.served, 0u);
    EXPECT_EQ(report->badStatus, 0u);
    EXPECT_EQ(s.payloadCopies, s.served)
        << "exactly one counted copy per encap response";
}

TEST(ServerLoopback, TinyFramePoolStaysGracefulUnderLoad)
{
    // Starve the RX pools (the floor is one rxBatch per shard) and
    // push hard: every arrival must still be answered or shed typed —
    // never crashed, never silently dropped past the reserve.
    ServerConfig cfg;
    cfg.rxThreads = 1;
    cfg.workers = 1;
    cfg.rxBatch = 8;
    cfg.framesPerRxShard = 8;
    cfg.rejectReserveFrames = 256;
    UdpServer srv(cfg);
    START_OR_SKIP(srv);

    LoadGenConfig lg = loadgenFor(srv, 30000.0, 0.4);
    auto report = UdpLoadGen(lg).run();
    ASSERT_TRUE(report.has_value());
    EXPECT_TRUE(srv.stop());

    ASSERT_GT(report->sent, 0u);
    const ServerCounterSnapshot s = srv.counterSnapshot();
    // Conservation: everything received parsed into an answer path.
    EXPECT_GT(s.served + s.shedQueueFull + s.shedRateLimited +
                  s.shedWatermark,
              0u);
    // The registry exposes the pool health counters.
    stats::Registry reg;
    srv.registerStats(reg);
    EXPECT_TRUE(reg.has("server.pool.frames_total"));
    EXPECT_TRUE(reg.has("server.pool.frames_free"));
    EXPECT_TRUE(reg.has("server.pool.exhausted"));
    EXPECT_TRUE(reg.has("server.pool.reject_reserve_free"));
    EXPECT_TRUE(reg.has("server.payload_copies"));
    EXPECT_TRUE(reg.has("server.simd.checksum_level"));
    EXPECT_TRUE(reg.has("server.simd.force_scalar"));
    EXPECT_EQ(reg.value("server.pool.frames_total"), 8.0);
}

TEST(ServerLoopback, StatefulAppsServeFlowCoherentTraffic)
{
    // The three stateful apps behind real wire opcodes 3..5, driven by
    // the flow-coherent generator: every flow sticks to one app, so
    // conntrack sees whole open->data->close cycles and spin-rtt sees
    // a coherent spin signal the client flips on each reflection.
    ServerConfig cfg;
    cfg.rxThreads = 2;
    cfg.workers = 2;
    cfg.numQueues = 8;
    UdpServer srv(cfg);
    START_OR_SKIP(srv);

    LoadGenConfig lg = loadgenFor(srv, 12000.0, 0.5);
    lg.opcodeWeights = {0.0, 0.0, 0.0, 0.34, 0.33, 0.33};
    auto report = UdpLoadGen(lg).run();
    ASSERT_TRUE(report.has_value());
    EXPECT_TRUE(srv.stop());

    ASSERT_GT(report->sent, 0u);
    EXPECT_GE(report->completionRatio, 0.999);
    // Synthesized payloads always decode: no bad statuses, and the
    // handlers' own parsers never fired their fail-closed path.
    EXPECT_EQ(report->badStatus, 0u);
    EXPECT_EQ(report->parseErrors, 0u);

    const ServerCounterSnapshot s = srv.counterSnapshot();
    ASSERT_GT(s.served, 0u);
    // App responses are built over the request frame in place.
    EXPECT_EQ(s.payloadCopies, 0u);

    stats::Registry reg;
    srv.registerStats(reg);
    EXPECT_GT(reg.value("server.app.heavy_hitter.updates"), 0.0);
    EXPECT_GT(reg.value("server.app.conntrack.opens"), 0.0);
    // ~60 packets per flow: the spin flows observed many reflected
    // flips, so edges and at least one RTT sample must exist.
    EXPECT_GT(reg.value("server.app.spin_rtt.edges"), 0.0);
    EXPECT_GT(reg.value("server.app.spin_rtt.samples"), 0.0);
    EXPECT_EQ(reg.value("server.app.heavy_hitter.decode_errors"), 0.0);
    EXPECT_EQ(reg.value("server.app.conntrack.decode_errors"), 0.0);
    EXPECT_EQ(reg.value("server.app.spin_rtt.decode_errors"), 0.0);
}

TEST(ServerLoopback, MalformedDatagramsAreCountedNotServed)
{
    ServerConfig cfg;
    UdpServer srv(cfg);
    START_OR_SKIP(srv);

    auto sockOpt = UdpSocket::open();
    ASSERT_TRUE(sockOpt.has_value());
    sockaddr_in peer{};
    peer.sin_family = AF_INET;
    peer.sin_addr.s_addr = htonl(0x7f000001);
    peer.sin_port = htons(srv.port());

    const std::uint8_t junk[64] = {0x42};
    for (int i = 0; i < 32; ++i)
        ASSERT_TRUE(sockOpt->sendTo(peer, junk, sizeof(junk)));

    const auto deadline = std::chrono::steady_clock::now() + 2s;
    while (srv.counterSnapshot().parseErrors < 32 &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(1ms);
    }
    EXPECT_TRUE(srv.stop());
    EXPECT_EQ(srv.counterSnapshot().parseErrors, 32u);
    EXPECT_EQ(srv.counterSnapshot().served, 0u);
}

} // namespace
} // namespace server
} // namespace hyperplane
