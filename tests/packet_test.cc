/**
 * @file
 * Unit tests for the packet buffer.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "net/packet.hh"

namespace hyperplane {
namespace net {
namespace {

TEST(PacketBuffer, ZeroedConstruction)
{
    PacketBuffer p(64);
    EXPECT_EQ(p.size(), 64u);
    for (std::size_t i = 0; i < p.size(); ++i)
        EXPECT_EQ(p[i], 0);
}

TEST(PacketBuffer, CopyConstructionFromBytes)
{
    const std::uint8_t src[] = {1, 2, 3, 4, 5};
    PacketBuffer p(src, sizeof(src));
    ASSERT_EQ(p.size(), 5u);
    EXPECT_EQ(std::memcmp(p.data(), src, 5), 0);
}

TEST(PacketBuffer, PrependUsesHeadroom)
{
    PacketBuffer p(10);
    const std::size_t before = p.headroom();
    std::uint8_t *hdr = p.prepend(4);
    EXPECT_EQ(p.headroom(), before - 4);
    EXPECT_EQ(p.size(), 14u);
    EXPECT_EQ(hdr, p.data());
}

TEST(PacketBuffer, PrependPreservesPayload)
{
    const std::uint8_t src[] = {9, 8, 7};
    PacketBuffer p(src, sizeof(src));
    p.prepend(2);
    EXPECT_EQ(p[2], 9);
    EXPECT_EQ(p[3], 8);
    EXPECT_EQ(p[4], 7);
}

TEST(PacketBuffer, PrependBeyondHeadroomReallocates)
{
    const std::uint8_t src[] = {42, 43};
    PacketBuffer p(src, sizeof(src), /*headroom=*/4);
    p.prepend(100); // > headroom
    EXPECT_EQ(p.size(), 102u);
    EXPECT_EQ(p[100], 42);
    EXPECT_EQ(p[101], 43);
}

TEST(PacketBuffer, PrependedBytesAreZeroed)
{
    PacketBuffer p(2);
    std::uint8_t *hdr = p.prepend(8);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(hdr[i], 0);
}

TEST(PacketBuffer, StripFrontRemovesHeader)
{
    const std::uint8_t src[] = {1, 2, 3, 4};
    PacketBuffer p(src, sizeof(src));
    p.stripFront(2);
    ASSERT_EQ(p.size(), 2u);
    EXPECT_EQ(p[0], 3);
    EXPECT_EQ(p[1], 4);
}

TEST(PacketBuffer, PrependThenStripRoundTrips)
{
    const std::uint8_t src[] = {5, 6, 7};
    PacketBuffer p(src, sizeof(src));
    PacketBuffer orig = p;
    p.prepend(40);
    p.stripFront(40);
    EXPECT_TRUE(p == orig);
}

TEST(PacketBuffer, AppendGrowsTail)
{
    PacketBuffer p(4);
    std::uint8_t *tail = p.append(4);
    tail[0] = 0xaa;
    EXPECT_EQ(p.size(), 8u);
    EXPECT_EQ(p[4], 0xaa);
}

TEST(PacketBuffer, TruncateShortens)
{
    PacketBuffer p(10);
    p.truncate(3);
    EXPECT_EQ(p.size(), 3u);
}

TEST(PacketBuffer, EqualityComparesContents)
{
    const std::uint8_t a[] = {1, 2, 3};
    const std::uint8_t b[] = {1, 2, 4};
    EXPECT_TRUE(PacketBuffer(a, 3) == PacketBuffer(a, 3));
    EXPECT_FALSE(PacketBuffer(a, 3) == PacketBuffer(b, 3));
    EXPECT_FALSE(PacketBuffer(a, 3) == PacketBuffer(a, 2));
}

TEST(PacketBuffer, EqualityIgnoresHeadroomDifferences)
{
    const std::uint8_t a[] = {1, 2, 3};
    PacketBuffer p(a, 3, 16), q(a, 3, 128);
    EXPECT_TRUE(p == q);
}

} // namespace
} // namespace net
} // namespace hyperplane
