/**
 * @file
 * Unit tests for AES and CBC mode against FIPS-197 / NIST SP 800-38A
 * vectors, plus round-trip property tests.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "crypto/aes.hh"
#include "crypto/cbc.hh"
#include "sim/rng.hh"

namespace hyperplane {
namespace crypto {
namespace {

std::vector<std::uint8_t>
fromHex(const char *hex)
{
    std::vector<std::uint8_t> out;
    for (std::size_t i = 0; hex[i] != '\0'; i += 2) {
        auto nib = [](char c) -> unsigned {
            if (c >= '0' && c <= '9')
                return c - '0';
            return 10 + (c - 'a');
        };
        out.push_back(
            static_cast<std::uint8_t>(nib(hex[i]) << 4 | nib(hex[i + 1])));
    }
    return out;
}

TEST(Aes, Fips197Aes128Example)
{
    // FIPS-197 Appendix C.1.
    const auto key = fromHex("000102030405060708090a0b0c0d0e0f");
    const auto pt = fromHex("00112233445566778899aabbccddeeff");
    const auto expect = fromHex("69c4e0d86a7b0430d8cdb78070b4c55a");
    Aes aes(key.data(), key.size());
    EXPECT_EQ(aes.rounds(), 10u);
    std::uint8_t ct[16];
    aes.encryptBlock(pt.data(), ct);
    EXPECT_EQ(std::memcmp(ct, expect.data(), 16), 0);
    std::uint8_t back[16];
    aes.decryptBlock(ct, back);
    EXPECT_EQ(std::memcmp(back, pt.data(), 16), 0);
}

TEST(Aes, Fips197Aes192Example)
{
    // FIPS-197 Appendix C.2.
    const auto key =
        fromHex("000102030405060708090a0b0c0d0e0f1011121314151617");
    const auto pt = fromHex("00112233445566778899aabbccddeeff");
    const auto expect = fromHex("dda97ca4864cdfe06eaf70a0ec0d7191");
    Aes aes(key.data(), key.size());
    EXPECT_EQ(aes.rounds(), 12u);
    std::uint8_t ct[16];
    aes.encryptBlock(pt.data(), ct);
    EXPECT_EQ(std::memcmp(ct, expect.data(), 16), 0);
}

TEST(Aes, Fips197Aes256Example)
{
    // FIPS-197 Appendix C.3.
    const auto key = fromHex("000102030405060708090a0b0c0d0e0f"
                             "101112131415161718191a1b1c1d1e1f");
    const auto pt = fromHex("00112233445566778899aabbccddeeff");
    const auto expect = fromHex("8ea2b7ca516745bfeafc49904b496089");
    Aes aes(key.data(), key.size());
    EXPECT_EQ(aes.rounds(), 14u);
    std::uint8_t ct[16];
    aes.encryptBlock(pt.data(), ct);
    EXPECT_EQ(std::memcmp(ct, expect.data(), 16), 0);
    std::uint8_t back[16];
    aes.decryptBlock(ct, back);
    EXPECT_EQ(std::memcmp(back, pt.data(), 16), 0);
}

TEST(Aes, Sp80038aAes128EcbVector)
{
    // NIST SP 800-38A F.1.1, block #1.
    const auto key = fromHex("2b7e151628aed2a6abf7158809cf4f3c");
    const auto pt = fromHex("6bc1bee22e409f96e93d7e117393172a");
    const auto expect = fromHex("3ad77bb40d7a3660a89ecaf32466ef97");
    Aes aes(key.data(), key.size());
    std::uint8_t ct[16];
    aes.encryptBlock(pt.data(), ct);
    EXPECT_EQ(std::memcmp(ct, expect.data(), 16), 0);
}

TEST(Aes, InPlaceEncryptionAllowed)
{
    const auto key = fromHex("000102030405060708090a0b0c0d0e0f");
    Aes aes(key.data(), key.size());
    std::uint8_t buf[16], ref[16];
    for (int i = 0; i < 16; ++i)
        buf[i] = static_cast<std::uint8_t>(i * 11);
    aes.encryptBlock(buf, ref);
    aes.encryptBlock(buf, buf);
    EXPECT_EQ(std::memcmp(buf, ref, 16), 0);
}

TEST(Aes, EncryptDecryptRoundTripRandomKeys)
{
    Rng rng(99);
    for (std::size_t keyBytes : {16u, 24u, 32u}) {
        for (int trial = 0; trial < 20; ++trial) {
            std::vector<std::uint8_t> key(keyBytes);
            std::uint8_t pt[16], ct[16], back[16];
            for (auto &b : key)
                b = static_cast<std::uint8_t>(rng.next());
            for (auto &b : pt)
                b = static_cast<std::uint8_t>(rng.next());
            Aes aes(key.data(), key.size());
            aes.encryptBlock(pt, ct);
            aes.decryptBlock(ct, back);
            EXPECT_EQ(std::memcmp(back, pt, 16), 0);
            EXPECT_NE(std::memcmp(ct, pt, 16), 0);
        }
    }
}

TEST(Cbc, Sp80038aAes256CbcVector)
{
    // NIST SP 800-38A F.2.5 (CBC-AES256.Encrypt), first two blocks.
    const auto key = fromHex("603deb1015ca71be2b73aef0857d7781"
                             "1f352c073b6108d72d9810a30914dff4");
    const auto ivv = fromHex("000102030405060708090a0b0c0d0e0f");
    const auto pt = fromHex("6bc1bee22e409f96e93d7e117393172a"
                            "ae2d8a571e03ac9c9eb76fac45af8e51");
    const auto expect = fromHex("f58c4c04d6e5f1ba779eabfb5f7bfbd6"
                                "9cfc4e967edb808d679f777bc6702c7d");
    Aes aes(key.data(), key.size());
    Iv iv;
    std::memcpy(iv.data(), ivv.data(), 16);
    std::vector<std::uint8_t> buf = pt;
    cbcEncryptAligned(aes, iv, buf.data(), buf.size());
    EXPECT_EQ(buf, expect);
    cbcDecryptAligned(aes, iv, buf.data(), buf.size());
    EXPECT_EQ(buf, pt);
}

TEST(Cbc, PaddedRoundTripAllLengths)
{
    const auto key = fromHex("603deb1015ca71be2b73aef0857d7781"
                             "1f352c073b6108d72d9810a30914dff4");
    Aes aes(key.data(), key.size());
    Iv iv{};
    Rng rng(5);
    for (std::size_t len = 0; len <= 48; ++len) {
        std::vector<std::uint8_t> pt(len);
        for (auto &b : pt)
            b = static_cast<std::uint8_t>(rng.next());
        const auto ct = cbcEncrypt(aes, iv, pt.data(), pt.size());
        EXPECT_EQ(ct.size() % aesBlockBytes, 0u);
        EXPECT_GT(ct.size(), len); // padding always added
        const auto back = cbcDecrypt(aes, iv, ct.data(), ct.size());
        ASSERT_TRUE(back.has_value()) << "len " << len;
        EXPECT_EQ(*back, pt);
    }
}

TEST(Cbc, DecryptRejectsUnalignedLength)
{
    const auto key = fromHex("000102030405060708090a0b0c0d0e0f");
    Aes aes(key.data(), key.size());
    Iv iv{};
    std::uint8_t junk[17] = {};
    EXPECT_FALSE(cbcDecrypt(aes, iv, junk, 17).has_value());
    EXPECT_FALSE(cbcDecrypt(aes, iv, junk, 0).has_value());
}

TEST(Cbc, DecryptRejectsCorruptPadding)
{
    const auto key = fromHex("000102030405060708090a0b0c0d0e0f");
    Aes aes(key.data(), key.size());
    Iv iv{};
    std::uint8_t pt[10] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    auto ct = cbcEncrypt(aes, iv, pt, sizeof(pt));
    ct.back() ^= 0x55; // corrupt the last ciphertext byte
    // Either the padding check fails or (rarely) it decodes to garbage
    // of a different length; the padding check must fire for nearly all
    // corruptions. With this fixed input it fails deterministically.
    const auto back = cbcDecrypt(aes, iv, ct.data(), ct.size());
    if (back.has_value()) {
        EXPECT_NE(std::memcmp(back->data(), pt,
                              std::min(back->size(), sizeof(pt))),
                  0);
    }
}

TEST(Cbc, IdenticalPlaintextBlocksEncryptDifferently)
{
    const auto key = fromHex("000102030405060708090a0b0c0d0e0f");
    Aes aes(key.data(), key.size());
    Iv iv{};
    std::vector<std::uint8_t> pt(32, 0xab); // two identical blocks
    cbcEncryptAligned(aes, iv, pt.data(), pt.size());
    EXPECT_NE(std::memcmp(pt.data(), pt.data() + 16, 16), 0);
}

} // namespace
} // namespace crypto
} // namespace hyperplane
