/**
 * @file
 * Unit tests for GF(2^8) matrices.
 */

#include <gtest/gtest.h>

#include "codes/gf256.hh"
#include "codes/matrix.hh"

namespace hyperplane {
namespace codes {
namespace {

TEST(GfMatrix, IdentityMultiplicationIsNeutral)
{
    GfMatrix m(3, 3);
    std::uint8_t v = 1;
    for (unsigned r = 0; r < 3; ++r)
        for (unsigned c = 0; c < 3; ++c)
            m.at(r, c) = v++;
    EXPECT_TRUE(m.multiply(GfMatrix::identity(3)) == m);
    EXPECT_TRUE(GfMatrix::identity(3).multiply(m) == m);
}

TEST(GfMatrix, InverseOfIdentityIsIdentity)
{
    const auto inv = GfMatrix::identity(4).inverted();
    ASSERT_TRUE(inv.has_value());
    EXPECT_TRUE(*inv == GfMatrix::identity(4));
}

TEST(GfMatrix, InverseTimesSelfIsIdentity)
{
    const GfMatrix c = GfMatrix::cauchy(5, 5);
    const auto inv = c.inverted();
    ASSERT_TRUE(inv.has_value());
    EXPECT_TRUE(c.multiply(*inv) == GfMatrix::identity(5));
    EXPECT_TRUE(inv->multiply(c) == GfMatrix::identity(5));
}

TEST(GfMatrix, SingularMatrixNotInvertible)
{
    GfMatrix m(2, 2);
    m.at(0, 0) = 1;
    m.at(0, 1) = 2;
    m.at(1, 0) = 1;
    m.at(1, 1) = 2; // duplicate row
    EXPECT_FALSE(m.inverted().has_value());
}

TEST(GfMatrix, ZeroMatrixNotInvertible)
{
    EXPECT_FALSE(GfMatrix(3, 3).inverted().has_value());
}

TEST(GfMatrix, CauchyElementsMatchDefinition)
{
    const unsigned m = 3, k = 4;
    const GfMatrix c = GfMatrix::cauchy(m, k);
    for (unsigned i = 0; i < m; ++i) {
        for (unsigned j = 0; j < k; ++j) {
            const auto xi = static_cast<std::uint8_t>(i + k);
            const auto yj = static_cast<std::uint8_t>(j);
            EXPECT_EQ(c.at(i, j), gfInv(gfAdd(xi, yj)));
        }
    }
}

TEST(GfMatrix, CauchyHasNoZeroEntries)
{
    const GfMatrix c = GfMatrix::cauchy(8, 16);
    for (unsigned i = 0; i < 8; ++i)
        for (unsigned j = 0; j < 16; ++j)
            EXPECT_NE(c.at(i, j), 0);
}

/**
 * The property that makes Cauchy matrices MDS generators: every square
 * submatrix is invertible.  Exhaustively check all 2x2 submatrices of a
 * small instance.
 */
TEST(GfMatrix, AllCauchy2x2SubmatricesInvertible)
{
    const unsigned m = 4, k = 6;
    const GfMatrix c = GfMatrix::cauchy(m, k);
    for (unsigned r1 = 0; r1 < m; ++r1) {
        for (unsigned r2 = r1 + 1; r2 < m; ++r2) {
            for (unsigned c1 = 0; c1 < k; ++c1) {
                for (unsigned c2 = c1 + 1; c2 < k; ++c2) {
                    GfMatrix sub(2, 2);
                    sub.at(0, 0) = c.at(r1, c1);
                    sub.at(0, 1) = c.at(r1, c2);
                    sub.at(1, 0) = c.at(r2, c1);
                    sub.at(1, 1) = c.at(r2, c2);
                    EXPECT_TRUE(sub.inverted().has_value());
                }
            }
        }
    }
}

TEST(GfMatrix, VandermondeFirstRowAllOnes)
{
    const GfMatrix v = GfMatrix::vandermonde(4, 5);
    for (unsigned j = 0; j < 5; ++j)
        EXPECT_EQ(v.at(0, j), 1);
    // Second row: alpha^(1*j) = 2^j.
    EXPECT_EQ(v.at(1, 0), 1);
    EXPECT_EQ(v.at(1, 1), 2);
    EXPECT_EQ(v.at(1, 2), 4);
}

TEST(GfMatrix, SelectRowsExtracts)
{
    GfMatrix m(3, 2);
    for (unsigned r = 0; r < 3; ++r)
        for (unsigned c = 0; c < 2; ++c)
            m.at(r, c) = static_cast<std::uint8_t>(10 * r + c);
    const GfMatrix sel = m.selectRows({2, 0});
    EXPECT_EQ(sel.rows(), 2u);
    EXPECT_EQ(sel.at(0, 0), 20);
    EXPECT_EQ(sel.at(1, 1), 1);
}

TEST(GfMatrix, MultiplyShapes)
{
    GfMatrix a(2, 3), b(3, 4);
    const GfMatrix p = a.multiply(b);
    EXPECT_EQ(p.rows(), 2u);
    EXPECT_EQ(p.cols(), 4u);
}

class CauchyInvertSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(CauchyInvertSweep, SquareCauchyInvertsCleanly)
{
    const unsigned n = GetParam();
    const GfMatrix c = GfMatrix::cauchy(n, n);
    const auto inv = c.inverted();
    ASSERT_TRUE(inv.has_value());
    EXPECT_TRUE(c.multiply(*inv) == GfMatrix::identity(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, CauchyInvertSweep,
                         ::testing::Values(1, 2, 3, 6, 10, 17, 32));

} // namespace
} // namespace codes
} // namespace hyperplane
