/**
 * @file
 * Tests for the features beyond the paper's core evaluation: the
 * interrupt-driven baseline, NUMA-style work stealing (the paper's
 * stated future work), in-order queue mode, and the non-blocking-QWAIT
 * background-task mode.
 */

#include <gtest/gtest.h>

#include "dp/sdp_system.hh"
#include "harness/runner.hh"

namespace hyperplane {
namespace dp {
namespace {

SdpConfig
baseConfig(PlaneKind plane)
{
    SdpConfig cfg;
    cfg.plane = plane;
    cfg.numCores = 1;
    cfg.numQueues = 64;
    cfg.workload = workloads::Kind::PacketEncapsulation;
    cfg.shape = traffic::Shape::PC;
    cfg.offeredRatePerSec = 1e5;
    cfg.warmupUs = 500.0;
    cfg.measureUs = 5000.0;
    cfg.seed = 7;
    return cfg;
}

TEST(InterruptPlane, CompletesWorkAndCountsInterrupts)
{
    const auto r = runSdp(baseConfig(PlaneKind::InterruptDriven));
    EXPECT_GT(r.completions, 100u);
    EXPECT_GT(r.interrupts, 0u);
    // NAPI-style masking: at this load several items coalesce per IRQ
    // sometimes, so interrupts <= completions.
    EXPECT_LE(r.interrupts, r.completions);
}

TEST(InterruptPlane, LatencyFlatInQueueCountUnlikeSpinning)
{
    auto mk = [](PlaneKind plane, unsigned queues) {
        auto cfg = harness::zeroLoadConfig(baseConfig(plane), 300);
        cfg.numQueues = queues;
        cfg.shape = traffic::Shape::SQ;
        cfg.jitter = ServiceJitter::None;
        return runSdp(cfg);
    };
    const auto irq64 = mk(PlaneKind::InterruptDriven, 64);
    const auto irq1000 = mk(PlaneKind::InterruptDriven, 1000);
    // Interrupt latency has no polling sweep: flat in queue count.
    EXPECT_NEAR(irq1000.avgLatencyUs / irq64.avgLatencyUs, 1.0, 0.1);
    const auto spin1000 = mk(PlaneKind::Spinning, 1000);
    EXPECT_GT(spin1000.avgLatencyUs, 2.0 * irq1000.avgLatencyUs);
}

TEST(InterruptPlane, SlowerThanHyperPlaneAtZeroLoad)
{
    auto mk = [](PlaneKind plane) {
        auto cfg = harness::zeroLoadConfig(baseConfig(plane), 300);
        cfg.shape = traffic::Shape::SQ;
        cfg.jitter = ServiceJitter::None;
        return runSdp(cfg);
    };
    const auto irq = mk(PlaneKind::InterruptDriven);
    const auto hp = mk(PlaneKind::HyperPlane);
    // The ~1.5 us kernel path dwarfs the 50-cycle QWAIT.
    EXPECT_GT(irq.avgLatencyUs, hp.avgLatencyUs + 1.0);
}

TEST(InterruptPlane, WorkProportionalLikeHyperPlane)
{
    const auto r = runSdp(baseConfig(PlaneKind::InterruptDriven));
    EXPECT_LT(r.activeFraction, 0.6);
    EXPECT_LT(r.avgCorePowerW,
              0.7 * runSdp(baseConfig(PlaneKind::Spinning))
                        .avgCorePowerW);
}

SdpConfig
stealingConfig(bool stealing)
{
    SdpConfig cfg = baseConfig(PlaneKind::HyperPlane);
    cfg.numCores = 4;
    cfg.numQueues = 64;
    cfg.org = QueueOrg::ScaleOut;
    cfg.shape = traffic::Shape::PC;
    cfg.imbalance = 0.5; // heavy static skew across partitions
    cfg.workStealing = stealing;
    cfg.measureUs = 8000.0;
    return cfg;
}

TEST(WorkStealing, RemoteGrantsHappenUnderImbalance)
{
    auto cfg = stealingConfig(true);
    cfg.offeredRatePerSec = 1.5e6;
    const auto r = runSdp(cfg);
    EXPECT_GT(r.stolenGrants, 0u);
    EXPECT_GT(r.completions, 1000u);
}

TEST(WorkStealing, ImprovesTailUnderImbalancedHighLoad)
{
    auto cfg = stealingConfig(false);
    const double cap = harness::calibrateCapacity(cfg);
    const auto without = harness::runAtLoad(cfg, cap, 0.85);
    cfg.workStealing = true;
    const auto with = harness::runAtLoad(cfg, cap, 0.85);
    EXPECT_LT(with.p99LatencyUs, without.p99LatencyUs);
}

TEST(WorkStealing, NoStealingWhenSingleCluster)
{
    auto cfg = stealingConfig(true);
    cfg.org = QueueOrg::ScaleUpAll;
    const auto r = runSdp(cfg);
    EXPECT_EQ(r.stolenGrants, 0u);
}

TEST(InOrderQueues, StillCompletesAllWork)
{
    auto cfg = baseConfig(PlaneKind::HyperPlane);
    cfg.inOrderQueues = true;
    const auto r = runSdp(cfg);
    EXPECT_NEAR(r.throughputMtps, 0.1, 0.02);
}

TEST(InOrderQueues, PreventsIntraQueueConcurrency)
{
    // Single queue, multiple cores: with in-order reconsider the queue
    // is never granted while an item from it is in flight, so exactly
    // one core ever serves it; the default mode spreads it across
    // cores (intra-queue concurrency).
    auto mk = [](bool inOrder) {
        SdpConfig cfg;
        cfg.plane = PlaneKind::HyperPlane;
        cfg.numCores = 4;
        cfg.numQueues = 4;
        cfg.org = QueueOrg::ScaleUpAll;
        cfg.shape = traffic::Shape::SQ;
        cfg.inOrderQueues = inOrder;
        cfg.offeredRatePerSec = 1.5e6; // ~2 cores worth of work
        cfg.warmupUs = 500.0;
        cfg.measureUs = 5000.0;
        cfg.seed = 9;
        SdpSystem sys(cfg);
        auto r = sys.run();
        unsigned activeCores = 0;
        for (unsigned i = 0; i < 4; ++i)
            activeCores += sys.core(i).activity().tasks > 0 ? 1 : 0;
        return std::make_pair(r, activeCores);
    };
    const auto [inOrderRes, inOrderCores] = mk(true);
    const auto [concRes, concCores] = mk(false);
    (void)inOrderCores;
    EXPECT_GT(concCores, 1u);
    // In-order serializes the queue: throughput caps near a single
    // item in flight (1 / mean service), well below the concurrent
    // mode, which serves the offered 1.5 Mtps with four cores.
    EXPECT_LT(inOrderRes.throughputMtps,
              0.75 * concRes.throughputMtps);
    EXPECT_GT(concRes.throughputMtps, 1.3);
}

TEST(BackgroundTask, RunsBackgroundWorkWhenIdle)
{
    auto cfg = baseConfig(PlaneKind::HyperPlane);
    cfg.backgroundQuantum = usToTicks(1.0);
    const auto r = runSdp(cfg);
    // Light data-plane load leaves most of the core to the background
    // task, and foreground work still completes.
    EXPECT_GT(r.backgroundIpc, 0.5);
    EXPECT_NEAR(r.throughputMtps, 0.1, 0.02);
}

TEST(BackgroundTask, TradesLatencyForBackgroundThroughput)
{
    auto cfg = harness::zeroLoadConfig(
        baseConfig(PlaneKind::HyperPlane), 300);
    cfg.jitter = ServiceJitter::None;
    const auto halting = runSdp(cfg);
    cfg.backgroundQuantum = usToTicks(2.0);
    const auto background = runSdp(cfg);
    // Arrivals now wait out the remainder of a quantum.
    EXPECT_GT(background.avgLatencyUs, halting.avgLatencyUs);
    EXPECT_LT(background.avgLatencyUs,
              halting.avgLatencyUs + 2.5); // bounded by the quantum
    EXPECT_GT(background.backgroundIpc, 1.0);
}

TEST(BackgroundTask, ShrinksWithForegroundLoad)
{
    auto cfg = baseConfig(PlaneKind::HyperPlane);
    cfg.backgroundQuantum = usToTicks(1.0);
    const double cap = harness::calibrateCapacity(cfg);
    const auto light = harness::runAtLoad(cfg, cap, 0.1);
    const auto heavy = harness::runAtLoad(cfg, cap, 0.9);
    EXPECT_GT(light.backgroundIpc, 2.0 * heavy.backgroundIpc);
}

} // namespace
} // namespace dp
} // namespace hyperplane
