/**
 * @file
 * Unit tests for the Section IV-C hardware cost model: the model must
 * reproduce the paper's published constants at the paper's
 * configuration and scale sensibly away from it.
 */

#include <gtest/gtest.h>

#include "core/hw_cost.hh"

namespace hyperplane {
namespace core {
namespace {

TEST(HwCost, PaperAreaNumbers)
{
    HwCostModel m;
    EXPECT_NEAR(m.readySetAreaMm2(), 0.13, 0.005);
    EXPECT_NEAR(m.monitoringSetAreaMm2(), 0.21, 0.005);
}

TEST(HwCost, PaperAreaOverheadFraction)
{
    // "within 0.26% of the total core area, for a 16-core chip"
    HwCostModel m;
    EXPECT_NEAR(m.areaOverheadFraction(), 0.0026, 0.0003);
}

TEST(HwCost, PaperPowerFractions)
{
    // "within 6.2% of a single core; 2.1% ready + 4.1% monitoring"
    HwCostModel m;
    EXPECT_NEAR(m.readySetPowerFraction(), 0.021, 0.001);
    EXPECT_NEAR(m.monitoringSetPowerFraction(), 0.041, 0.001);
    EXPECT_NEAR(m.readySetPowerFraction() +
                    m.monitoringSetPowerFraction(),
                0.062, 0.001);
    // Spread over 16 cores: well below 0.4% of total core power.
    EXPECT_LT(m.powerOverheadFraction(), 0.004);
}

TEST(HwCost, PaperReadySetLatency)
{
    // RTL model: 12.25 ns for the 1024-entry ready set.
    HwCostModel m;
    EXPECT_NEAR(m.readySetLatencyNs(), 12.25, 0.1);
}

TEST(HwCost, QwaitLatencyCoversComponentsAndFloorsAt50)
{
    HwCostModel m;
    EXPECT_EQ(m.qwaitLatencyCycles(), 50u);
    EXPECT_EQ(m.monitoringLookupCycles(), 5u);
    // The 50-cycle envelope exceeds ready-set latency in cycles.
    EXPECT_GT(static_cast<double>(m.qwaitLatencyCycles()),
              m.readySetLatencyNs() * cyclesPerNs);
}

TEST(HwCost, AreaScalesLinearlyWithEntries)
{
    HwCostConfig cfg;
    cfg.readyEntries = 2048;
    cfg.monitoringEntries = 2048;
    HwCostModel big(cfg);
    HwCostModel base;
    EXPECT_NEAR(big.readySetAreaMm2() / base.readySetAreaMm2(), 2.0,
                1e-9);
    EXPECT_NEAR(big.monitoringSetAreaMm2() /
                    base.monitoringSetAreaMm2(),
                2.0, 1e-9);
}

TEST(HwCost, LatencyGrowsSubLinearlyWithEntries)
{
    HwCostConfig big;
    big.readyEntries = 4096;
    EXPECT_LT(HwCostModel(big).readySetLatencyNs(),
              2.0 * HwCostModel().readySetLatencyNs());
}

TEST(HwCost, QwaitLatencyScalesUpForHugeReadySets)
{
    HwCostConfig cfg;
    cfg.readyEntries = 1 << 16;
    HwCostModel m(cfg);
    EXPECT_GE(m.qwaitLatencyCycles(), 50u);
}

TEST(HwCost, FewerCoresMeanLargerRelativeOverhead)
{
    HwCostConfig cfg;
    cfg.cores = 4;
    EXPECT_GT(HwCostModel(cfg).areaOverheadFraction(),
              HwCostModel().areaOverheadFraction());
}

} // namespace
} // namespace core
} // namespace hyperplane
