/**
 * @file
 * Unit tests for the Poisson traffic source and the load controller.
 */

#include <gtest/gtest.h>

#include "sim/event_queue.hh"
#include "traffic/load_controller.hh"
#include "traffic/poisson_source.hh"

namespace hyperplane {
namespace traffic {
namespace {

TEST(PoissonSource, GeneratesApproximatelyTheOfferedRate)
{
    EventQueue eq;
    queueing::QueueSet queues(10);
    SourceConfig cfg;
    cfg.totalRatePerSec = 1e6;
    std::vector<double> weights(10, 0.1);
    PoissonSource src(eq, queues, nullptr, cfg, weights);
    src.start();
    eq.run(usToTicks(20000.0)); // 20 ms
    const double expect = 1e6 * 0.020;
    EXPECT_NEAR(static_cast<double>(src.generated()), expect,
                expect * 0.1);
}

TEST(PoissonSource, RespectsWeights)
{
    EventQueue eq;
    queueing::QueueSet queues(2);
    SourceConfig cfg;
    cfg.totalRatePerSec = 1e6;
    cfg.maxQueueDepth = 1u << 20;
    std::vector<double> weights{0.8, 0.2};
    PoissonSource src(eq, queues, nullptr, cfg, weights);
    src.start();
    eq.run(usToTicks(20000.0));
    const double ratio =
        static_cast<double>(queues[0].totalEnqueued()) /
        static_cast<double>(queues[1].totalEnqueued());
    EXPECT_NEAR(ratio, 4.0, 0.6);
}

TEST(PoissonSource, InactiveQueuesGetNothing)
{
    EventQueue eq;
    queueing::QueueSet queues(4);
    SourceConfig cfg;
    cfg.totalRatePerSec = 1e5;
    std::vector<double> weights{1.0, 0.0, 0.0, 0.0};
    PoissonSource src(eq, queues, nullptr, cfg, weights);
    src.start();
    eq.run(usToTicks(10000.0));
    EXPECT_GT(queues[0].totalEnqueued(), 0u);
    EXPECT_EQ(queues[1].totalEnqueued(), 0u);
    EXPECT_EQ(queues[2].totalEnqueued(), 0u);
}

TEST(PoissonSource, DropsWhenQueueFull)
{
    EventQueue eq;
    queueing::QueueSet queues(1);
    SourceConfig cfg;
    cfg.totalRatePerSec = 1e6;
    cfg.maxQueueDepth = 4; // nobody consumes
    PoissonSource src(eq, queues, nullptr, cfg, {1.0});
    src.start();
    eq.run(usToTicks(1000.0));
    EXPECT_EQ(queues[0].depth(), 4u);
    EXPECT_GT(src.dropped(), 0u);
}

TEST(PoissonSource, ArrivalHookSeesEveryAcceptedItem)
{
    EventQueue eq;
    queueing::QueueSet queues(2);
    SourceConfig cfg;
    cfg.totalRatePerSec = 1e5;
    PoissonSource src(eq, queues, nullptr, cfg, {0.5, 0.5});
    std::uint64_t hooked = 0;
    src.setArrivalHook([&](QueueId, const queueing::WorkItem &item) {
        EXPECT_EQ(item.payloadBytes, cfg.payloadBytes);
        ++hooked;
    });
    src.start();
    eq.run(usToTicks(5000.0));
    EXPECT_EQ(hooked, src.generated());
}

TEST(PoissonSource, ItemsCarryMonotonicSeqAndArrivalTick)
{
    EventQueue eq;
    queueing::QueueSet queues(1);
    SourceConfig cfg;
    cfg.totalRatePerSec = 1e5;
    PoissonSource src(eq, queues, nullptr, cfg, {1.0});
    std::uint64_t lastSeq = 0;
    Tick lastTick = 0;
    bool monotone = true;
    src.setArrivalHook([&](QueueId, const queueing::WorkItem &item) {
        if (item.seq < lastSeq || item.arrivalTick < lastTick)
            monotone = false;
        lastSeq = item.seq;
        lastTick = item.arrivalTick;
    });
    src.start();
    eq.run(usToTicks(5000.0));
    EXPECT_TRUE(monotone);
}

TEST(PoissonSource, StopCancelsFutureArrivals)
{
    EventQueue eq;
    queueing::QueueSet queues(1);
    SourceConfig cfg;
    cfg.totalRatePerSec = 1e5;
    PoissonSource src(eq, queues, nullptr, cfg, {1.0});
    src.start();
    eq.run(usToTicks(1000.0));
    const auto before = src.generated();
    src.stop();
    eq.run(usToTicks(5000.0));
    EXPECT_EQ(src.generated(), before);
    EXPECT_TRUE(eq.empty());
}

TEST(PoissonSource, DeviceWritesReachMemorySystem)
{
    EventQueue eq;
    queueing::QueueSet queues(1);
    mem::MemorySystem mem(1, mem::CacheGeometry{32 * 1024, 4, 64},
                          mem::CacheGeometry{1024 * 1024, 16, 64});
    SourceConfig cfg;
    cfg.totalRatePerSec = 1e5;
    PoissonSource src(eq, queues, &mem, cfg, {1.0});
    src.start();
    eq.run(usToTicks(2000.0));
    EXPECT_EQ(mem.writeTransactions.value(), src.generated());
}

TEST(LoadController, MapsLoadFractionToRate)
{
    LoadController lc(2e6);
    EXPECT_DOUBLE_EQ(lc.rateForLoad(0.5), 1e6);
    EXPECT_DOUBLE_EQ(lc.rateForLoad(1.0), 2e6);
}

TEST(LoadController, ZeroLoadFlooredAboveZero)
{
    LoadController lc(1e6);
    EXPECT_GT(lc.rateForLoad(0.0), 0.0);
}

TEST(LoadController, AnalyticCapacityScalesWithCores)
{
    const double one = LoadController::analyticCapacity(1, 3000.0);
    const double four = LoadController::analyticCapacity(4, 3000.0);
    EXPECT_DOUBLE_EQ(four, 4.0 * one);
    EXPECT_NEAR(one, 1e6, 1.0); // 3 GHz / 3000 cycles
}

} // namespace
} // namespace traffic
} // namespace hyperplane
