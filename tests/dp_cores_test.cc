/**
 * @file
 * Focused tests of the data-plane core models' accounting: idle-spin
 * bookkeeping of the spinning core, halt/wake accounting of the
 * HyperPlane core, and conservation invariants that the digest step
 * relies on.
 */

#include <gtest/gtest.h>

#include "dp/sdp_system.hh"
#include "dp/spinning_core.hh"
#include "harness/runner.hh"

namespace hyperplane {
namespace dp {
namespace {

SdpConfig
tinyConfig(PlaneKind plane)
{
    SdpConfig cfg;
    cfg.plane = plane;
    cfg.numCores = 1;
    cfg.numQueues = 32;
    cfg.workload = workloads::Kind::RequestDispatching;
    cfg.shape = traffic::Shape::PC;
    cfg.offeredRatePerSec = 5e4;
    cfg.warmupUs = 500.0;
    cfg.measureUs = 4000.0;
    cfg.seed = 17;
    return cfg;
}

TEST(SpinningAccounting, ActiveTimeCoversTheWholeWindow)
{
    // A spinning core never halts: active + idle-spin accounting must
    // cover the full measurement window.
    auto cfg = tinyConfig(PlaneKind::Spinning);
    SdpSystem sys(cfg);
    sys.run();
    const auto &a = sys.core(0).activity();
    const auto window = usToTicks(cfg.measureUs);
    EXPECT_NEAR(static_cast<double>(a.activeTicks),
                static_cast<double>(window),
                0.02 * static_cast<double>(window));
    EXPECT_EQ(a.c0HaltTicks, 0u);
    EXPECT_EQ(a.c1HaltTicks, 0u);
}

TEST(SpinningAccounting, PollsDwarfTasksAtLightLoad)
{
    auto cfg = tinyConfig(PlaneKind::Spinning);
    SdpSystem sys(cfg);
    const auto r = sys.run();
    const auto &a = sys.core(0).activity();
    EXPECT_GT(a.polls, 50 * a.tasks);
    EXPECT_GT(a.emptyPolls, a.polls / 2);
    EXPECT_GT(r.avgPollsPerTask, 50.0);
}

TEST(SpinningAccounting, UselessInstructionsDominateAtLightLoad)
{
    auto cfg = tinyConfig(PlaneKind::Spinning);
    SdpSystem sys(cfg);
    sys.run();
    const auto &a = sys.core(0).activity();
    EXPECT_GT(a.uselessInstr, 5 * a.usefulInstr);
}

TEST(HyperPlaneAccounting, HaltPlusActiveCoversWindow)
{
    auto cfg = tinyConfig(PlaneKind::HyperPlane);
    SdpSystem sys(cfg);
    sys.run();
    const auto &a = sys.core(0).activity();
    const auto window = usToTicks(cfg.measureUs);
    const auto accounted =
        a.activeTicks + a.c0HaltTicks + a.c1HaltTicks;
    EXPECT_NEAR(static_cast<double>(accounted),
                static_cast<double>(window),
                0.02 * static_cast<double>(window));
    EXPECT_GT(a.c0HaltTicks, a.activeTicks); // light load: mostly idle
}

TEST(HyperPlaneAccounting, PowerOptimizedHaltsInC1)
{
    auto cfg = tinyConfig(PlaneKind::HyperPlane);
    cfg.powerOptimized = true;
    SdpSystem sys(cfg);
    sys.run();
    const auto &a = sys.core(0).activity();
    EXPECT_GT(a.c1HaltTicks, 0u);
    EXPECT_EQ(a.c0HaltTicks, 0u);
}

TEST(HyperPlaneAccounting, WakeupsTrackArrivalBursts)
{
    auto cfg = tinyConfig(PlaneKind::HyperPlane);
    SdpSystem sys(cfg);
    const auto r = sys.run();
    const auto &a = sys.core(0).activity();
    // One wakeup per idle-to-busy transition; at light load nearly
    // every completion required one.
    EXPECT_GT(a.wakeups, r.completions / 2);
    EXPECT_LE(a.wakeups, r.completions + 2);
}

TEST(Conservation, CompletionsPlusBacklogMatchArrivals)
{
    for (auto plane : {PlaneKind::Spinning, PlaneKind::HyperPlane,
                       PlaneKind::InterruptDriven}) {
        auto cfg = tinyConfig(plane);
        SdpSystem sys(cfg);
        const auto r = sys.run();
        // Nothing is lost: everything enqueued is either dequeued or
        // still queued (queue-level counters span the whole run).
        std::uint64_t dequeued = 0;
        for (QueueId q = 0; q < sys.queues().size(); ++q)
            dequeued += sys.queues()[q].totalDequeued();
        EXPECT_EQ(sys.queues().totalEnqueued(),
                  dequeued + sys.queues().totalBacklog())
            << toString(plane);
        EXPECT_EQ(r.dropped, 0u) << toString(plane);
    }
}

TEST(Conservation, DoorbellsMatchQueueDepths)
{
    auto cfg = tinyConfig(PlaneKind::HyperPlane);
    SdpSystem sys(cfg);
    sys.run();
    for (QueueId q = 0; q < sys.queues().size(); ++q) {
        EXPECT_EQ(sys.queues()[q].doorbell().count(),
                  sys.queues()[q].depth());
    }
}

TEST(Conservation, LatencyStatsOrdered)
{
    for (auto plane : {PlaneKind::Spinning, PlaneKind::HyperPlane}) {
        const auto r = runSdp(tinyConfig(plane));
        EXPECT_LE(r.p50LatencyUs, r.p99LatencyUs);
        EXPECT_LE(r.p99LatencyUs, r.p999LatencyUs);
        EXPECT_LE(r.p999LatencyUs, r.maxLatencyUs * 1.05);
        EXPECT_GT(r.avgLatencyUs, 0.0);
    }
}

TEST(Conservation, IpcComponentsSum)
{
    const auto r = runSdp(tinyConfig(PlaneKind::Spinning));
    EXPECT_NEAR(r.usefulIpc + r.uselessIpc, r.ipc, 1e-9);
}

} // namespace
} // namespace dp
} // namespace hyperplane
