/**
 * @file
 * Calibration regression tests: the end-to-end simulation must keep
 * producing numbers in the bands the reproduction is calibrated to
 * (DESIGN.md Section 8).  These tests are the guard rail against
 * timing-model drift: if a refactor silently changes a cost model,
 * they fail before the figure benches quietly go off-shape.
 */

#include <gtest/gtest.h>

#include "dp/sdp_system.hh"
#include "harness/runner.hh"

namespace hyperplane {
namespace dp {
namespace {

/** Figure 8 single-core peak-throughput targets, million tasks/s. */
struct PeakBand
{
    workloads::Kind kind;
    double lo;
    double hi;
};

class PeakCalibration : public ::testing::TestWithParam<PeakBand>
{
};

TEST_P(PeakCalibration, HyperPlanePeakInPaperBand)
{
    const PeakBand band = GetParam();
    SdpConfig cfg;
    cfg.plane = PlaneKind::HyperPlane;
    cfg.numCores = 1;
    cfg.numQueues = 100;
    cfg.workload = band.kind;
    cfg.shape = traffic::Shape::SQ;
    cfg.seed = 201;
    cfg.warmupUs = 500.0;
    cfg.measureUs = 4000.0;
    const auto r = harness::measureAtSaturation(cfg);
    EXPECT_GE(r.throughputMtps, band.lo)
        << workloads::toString(band.kind);
    EXPECT_LE(r.throughputMtps, band.hi)
        << workloads::toString(band.kind);
}

INSTANTIATE_TEST_SUITE_P(
    Fig8Axes, PeakCalibration,
    ::testing::Values(
        PeakBand{workloads::Kind::PacketEncapsulation, 0.45, 0.95},
        PeakBand{workloads::Kind::CryptoForwarding, 0.09, 0.20},
        PeakBand{workloads::Kind::PacketSteering, 0.25, 0.52},
        PeakBand{workloads::Kind::ErasureCoding, 0.07, 0.16},
        PeakBand{workloads::Kind::RaidProtection, 0.15, 0.33},
        PeakBand{workloads::Kind::RequestDispatching, 0.42, 0.90}));

TEST(Calibration, SpinningZeroLoadSlopeMatchesFig9Anchor)
{
    // The Figure 9(a) anchor: ~60 us average / ~160 us p99 at 1000
    // queues for a light workload (we accept a generous band).
    SdpConfig cfg;
    cfg.plane = PlaneKind::Spinning;
    cfg.numCores = 1;
    cfg.numQueues = 1000;
    cfg.workload = workloads::Kind::PacketEncapsulation;
    cfg.shape = traffic::Shape::SQ;
    cfg.jitter = ServiceJitter::None;
    cfg.seed = 202;
    cfg = harness::zeroLoadConfig(cfg, 600);
    const auto r = runSdp(cfg);
    EXPECT_GT(r.avgLatencyUs, 40.0);
    EXPECT_LT(r.avgLatencyUs, 100.0);
    EXPECT_GT(r.p99LatencyUs, 90.0);
    EXPECT_LT(r.p99LatencyUs, 220.0);
}

TEST(Calibration, HyperPlaneZeroLoadLatencyUnderTenMicroseconds)
{
    // Figure 9(b): HyperPlane stays below 10 us at 1000 queues for
    // every workload.
    for (auto kind : workloads::allKinds()) {
        SdpConfig cfg;
        cfg.plane = PlaneKind::HyperPlane;
        cfg.numCores = 1;
        cfg.numQueues = 1000;
        cfg.workload = kind;
        cfg.shape = traffic::Shape::SQ;
        cfg.jitter = ServiceJitter::None;
        cfg.seed = 203;
        cfg = harness::zeroLoadConfig(cfg, 300);
        const auto r = runSdp(cfg);
        EXPECT_LT(r.avgLatencyUs, 10.0) << workloads::toString(kind);
    }
}

TEST(Calibration, SpinningIdleIpcNearPaperFigure11)
{
    SdpConfig cfg;
    cfg.plane = PlaneKind::Spinning;
    cfg.numCores = 1;
    cfg.numQueues = 100;
    cfg.workload = workloads::Kind::PacketEncapsulation;
    cfg.shape = traffic::Shape::PC;
    cfg.offeredRatePerSec = 2000.0; // ~0 load
    cfg.warmupUs = 500.0;
    cfg.measureUs = 4000.0;
    cfg.seed = 204;
    const auto r = runSdp(cfg);
    EXPECT_GT(r.ipc, 1.3);
    EXPECT_LT(r.ipc, 2.8);
}

TEST(Calibration, PowerOptimizedIdleNearSixteenPercent)
{
    // Figure 12(a): power-optimized HyperPlane idles at ~16% of the
    // spinning plane's saturation power.
    SdpConfig cfg;
    cfg.plane = PlaneKind::Spinning;
    cfg.numCores = 1;
    cfg.numQueues = 100;
    cfg.workload = workloads::Kind::PacketEncapsulation;
    cfg.shape = traffic::Shape::PC;
    cfg.seed = 205;
    cfg.warmupUs = 500.0;
    cfg.measureUs = 4000.0;
    const auto sat = harness::measureAtSaturation(cfg);

    cfg.plane = PlaneKind::HyperPlane;
    cfg.powerOptimized = true;
    cfg.offeredRatePerSec = 2000.0;
    const auto idle = runSdp(cfg);
    const double frac = idle.avgCorePowerW / sat.avgCorePowerW;
    EXPECT_GT(frac, 0.12);
    EXPECT_LT(frac, 0.22);
}

} // namespace
} // namespace dp
} // namespace hyperplane
