/**
 * @file
 * Integration tests: full SdpSystem runs reproducing the paper's
 * qualitative claims on small, fast configurations.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "dp/sdp_system.hh"
#include "harness/runner.hh"

namespace hyperplane {
namespace dp {
namespace {

SdpConfig
baseConfig(PlaneKind plane)
{
    SdpConfig cfg;
    cfg.plane = plane;
    cfg.numCores = 1;
    cfg.numQueues = 64;
    cfg.workload = workloads::Kind::PacketEncapsulation;
    cfg.shape = traffic::Shape::PC;
    cfg.offeredRatePerSec = 1e5;
    cfg.warmupUs = 500.0;
    cfg.measureUs = 5000.0;
    cfg.seed = 7;
    return cfg;
}

TEST(SdpSystem, CompletesWorkAtModerateLoad)
{
    const auto r = runSdp(baseConfig(PlaneKind::HyperPlane));
    EXPECT_GT(r.completions, 100u);
    EXPECT_GT(r.avgLatencyUs, 0.0);
    EXPECT_GE(r.p99LatencyUs, r.p50LatencyUs);
    EXPECT_EQ(r.dropped, 0u);
}

TEST(SdpSystem, SpinningPlaneAlsoCompletesWork)
{
    const auto r = runSdp(baseConfig(PlaneKind::Spinning));
    EXPECT_GT(r.completions, 100u);
    // Spinning cores never halt.
    EXPECT_NEAR(r.activeFraction, 1.0, 0.01);
    EXPECT_GT(r.uselessIpc, 0.0);
}

TEST(SdpSystem, ThroughputMatchesOfferedLoadBelowSaturation)
{
    for (PlaneKind plane :
         {PlaneKind::Spinning, PlaneKind::HyperPlane}) {
        const auto r = runSdp(baseConfig(plane));
        // Offered 0.1 Mtps at ~15% utilization: completions must track
        // arrivals closely.
        EXPECT_NEAR(r.throughputMtps, 0.1, 0.02)
            << toString(plane);
    }
}

TEST(SdpSystem, HyperPlaneIsWorkProportional)
{
    // Paper Figure 11: HyperPlane's core activity scales with load;
    // spinning is pegged at 100% with high useless IPC.
    auto cfg = baseConfig(PlaneKind::HyperPlane);
    const auto light = runSdp(cfg);
    EXPECT_LT(light.activeFraction, 0.5);
    EXPECT_LT(light.uselessIpc, 0.05);

    const auto spin = runSdp(baseConfig(PlaneKind::Spinning));
    EXPECT_GT(spin.uselessIpc, 0.5);
    EXPECT_GT(spin.ipc, light.ipc);
}

TEST(SdpSystem, HyperPlaneUsesLessPowerAtLightLoad)
{
    const auto hp = runSdp(baseConfig(PlaneKind::HyperPlane));
    const auto spin = runSdp(baseConfig(PlaneKind::Spinning));
    EXPECT_LT(hp.avgCorePowerW, 0.6 * spin.avgCorePowerW);
}

TEST(SdpSystem, PowerOptimizedModeSavesMorePower)
{
    auto cfg = baseConfig(PlaneKind::HyperPlane);
    const auto regular = runSdp(cfg);
    cfg.powerOptimized = true;
    const auto optimized = runSdp(cfg);
    EXPECT_LT(optimized.avgCorePowerW, regular.avgCorePowerW);
    // ...at some latency cost from the C1 wake-up.
    EXPECT_GT(optimized.avgLatencyUs, regular.avgLatencyUs);
}

TEST(SdpSystem, HyperPlaneLatencyBeatsSpinningAtManyQueues)
{
    // Figure 9: with hundreds of mostly-empty queues the spinning sweep
    // dominates latency; HyperPlane stays flat.
    auto spinCfg = harness::zeroLoadConfig(
        baseConfig(PlaneKind::Spinning), 400);
    spinCfg.numQueues = 256;
    spinCfg.jitter = ServiceJitter::None;
    auto hpCfg = spinCfg;
    hpCfg.plane = PlaneKind::HyperPlane;
    const auto spin = runSdp(spinCfg);
    const auto hp = runSdp(hpCfg);
    EXPECT_GT(spin.avgLatencyUs, 2.0 * hp.avgLatencyUs);
    EXPECT_GT(spin.p99LatencyUs, 3.0 * hp.p99LatencyUs);
}

TEST(SdpSystem, SpinningWinsSlightlyWithOneQueue)
{
    // Figure 9 text: at a single queue the spinning plane reacts faster
    // (QWAIT costs ~50 cycles); HyperPlane loses by at most ~3%.
    auto spinCfg =
        harness::zeroLoadConfig(baseConfig(PlaneKind::Spinning), 400);
    spinCfg.numQueues = 1;
    spinCfg.shape = traffic::Shape::SQ;
    spinCfg.jitter = ServiceJitter::None;
    auto hpCfg = spinCfg;
    hpCfg.plane = PlaneKind::HyperPlane;
    const auto spin = runSdp(spinCfg);
    const auto hp = runSdp(hpCfg);
    EXPECT_LT(spin.avgLatencyUs, hp.avgLatencyUs);
    EXPECT_LT(hp.avgLatencyUs / spin.avgLatencyUs, 1.06);
}

TEST(SdpSystem, HyperPlanePeakThroughputAtLeastSpinnings)
{
    auto cfg = baseConfig(PlaneKind::Spinning);
    cfg.numQueues = 128;
    cfg.shape = traffic::Shape::SQ;
    const auto spin = harness::measureAtSaturation(cfg);
    cfg.plane = PlaneKind::HyperPlane;
    const auto hp = harness::measureAtSaturation(cfg);
    // SQ with many empty queues: HyperPlane wins clearly (Figure 8).
    EXPECT_GT(hp.throughputMtps, 1.2 * spin.throughputMtps);
}

TEST(SdpSystem, MulticoreScaleUpScalesThroughput)
{
    auto cfg = baseConfig(PlaneKind::HyperPlane);
    cfg.shape = traffic::Shape::FB;
    cfg.numQueues = 64;
    const auto one = harness::measureAtSaturation(cfg);
    cfg.numCores = 4;
    cfg.org = QueueOrg::ScaleUpAll;
    const auto four = harness::measureAtSaturation(cfg);
    EXPECT_GT(four.throughputMtps, 3.0 * one.throughputMtps);
}

TEST(SdpSystem, ScaleUpSpinningSuffersFromSynchronization)
{
    // Figure 10(a): scale-up spinning pays sync + ping-pong costs that
    // scale-out avoids.
    auto cfg = baseConfig(PlaneKind::Spinning);
    cfg.numCores = 4;
    cfg.numQueues = 64;
    cfg.shape = traffic::Shape::FB;
    cfg.org = QueueOrg::ScaleOut;
    const auto scaleOut = harness::measureAtSaturation(cfg);
    cfg.org = QueueOrg::ScaleUpAll;
    const auto scaleUp = harness::measureAtSaturation(cfg);
    EXPECT_LT(scaleUp.throughputMtps, scaleOut.throughputMtps);
}

TEST(SdpSystem, SoftwareReadySetSlowerUnderBalancedTraffic)
{
    // Figure 13: the software iterator pays per-ready-entry costs.
    auto cfg = baseConfig(PlaneKind::HyperPlane);
    cfg.shape = traffic::Shape::FB;
    cfg.numQueues = 256;
    const auto hw = harness::measureAtSaturation(cfg);
    cfg.plane = PlaneKind::HyperPlaneSwReady;
    const auto sw = harness::measureAtSaturation(cfg);
    EXPECT_LT(sw.throughputMtps, 0.95 * hw.throughputMtps);
}

TEST(SdpSystem, SpuriousWakeupsAreRare)
{
    const auto r = runSdp(baseConfig(PlaneKind::HyperPlane));
    EXPECT_LT(static_cast<double>(r.spuriousWakeups),
              0.05 * static_cast<double>(r.completions + 1));
}

TEST(SdpSystem, DeterministicForFixedSeed)
{
    const auto a = runSdp(baseConfig(PlaneKind::HyperPlane));
    const auto b = runSdp(baseConfig(PlaneKind::HyperPlane));
    EXPECT_EQ(a.completions, b.completions);
    EXPECT_DOUBLE_EQ(a.avgLatencyUs, b.avgLatencyUs);
    EXPECT_DOUBLE_EQ(a.ipc, b.ipc);
}

TEST(SdpSystem, SeedChangesResults)
{
    auto cfg = baseConfig(PlaneKind::HyperPlane);
    const auto a = runSdp(cfg);
    cfg.seed = 1234;
    const auto b = runSdp(cfg);
    EXPECT_NE(a.completions, b.completions);
}

TEST(SdpSystem, ServicePolicyConfigurable)
{
    for (auto policy : {core::ServicePolicy::RoundRobin,
                        core::ServicePolicy::WeightedRoundRobin,
                        core::ServicePolicy::StrictPriority}) {
        auto cfg = baseConfig(PlaneKind::HyperPlane);
        cfg.policy = policy;
        const auto r = runSdp(cfg);
        EXPECT_GT(r.completions, 100u);
    }
}

TEST(SdpSystem, BatchedDequeueStillCompletesEverything)
{
    auto cfg = baseConfig(PlaneKind::HyperPlane);
    cfg.batchSize = 8;
    const auto r = runSdp(cfg);
    EXPECT_NEAR(r.throughputMtps, 0.1, 0.02);
}

TEST(SdpSystem, ClusteredOrganizationsPartitionQueues)
{
    auto cfg = baseConfig(PlaneKind::HyperPlane);
    cfg.numCores = 4;
    cfg.numQueues = 64;
    cfg.org = QueueOrg::ScaleUp2;
    SdpSystem sys(cfg);
    EXPECT_EQ(sys.numClusters(), 2u);
    ASSERT_NE(sys.qwaitUnit(0), nullptr);
    ASSERT_NE(sys.qwaitUnit(1), nullptr);
    EXPECT_EQ(sys.qwaitUnit(2), nullptr);
    // Cores 0,1 serve queues 0..31; cores 2,3 serve 32..63.
    EXPECT_EQ(sys.core(0).assignedQueues().front(), 0u);
    EXPECT_EQ(sys.core(2).assignedQueues().front(), 32u);
    EXPECT_TRUE(sys.qwaitUnit(0)->doorbellOf(0).has_value());
    EXPECT_FALSE(sys.qwaitUnit(0)->doorbellOf(32).has_value());
}

TEST(SdpConfigValidate, RejectsDegenerateConfigs)
{
    auto expectRejected = [](auto mutate) {
        SdpConfig cfg = baseConfig(PlaneKind::HyperPlane);
        mutate(cfg);
        EXPECT_THROW(cfg.validate(), std::invalid_argument);
        EXPECT_THROW(SdpSystem sys(cfg), std::invalid_argument);
    };
    expectRejected([](SdpConfig &c) { c.numCores = 0; });
    expectRejected([](SdpConfig &c) { c.numQueues = 0; });
    expectRejected([](SdpConfig &c) { c.monitoringWays = 0; });
    expectRejected([](SdpConfig &c) { c.monitoringWays = 1; });
    expectRejected([](SdpConfig &c) { c.monitoringWays = 9; });
    expectRejected([](SdpConfig &c) { c.monitoringBanks = 0; });
    expectRejected([](SdpConfig &c) { c.monitoringMaxWalkSteps = 0; });
    expectRejected([](SdpConfig &c) { c.monitoringCapacity = 3; });
    expectRejected([](SdpConfig &c) { c.batchSize = 0; });
    expectRejected([](SdpConfig &c) { c.offeredRatePerSec = 0.0; });
    expectRejected([](SdpConfig &c) { c.measureUs = 0.0; });
    expectRejected([](SdpConfig &c) { c.maxQueueDepth = 0; });
    expectRejected([](SdpConfig &c) { c.fault.dropSnoopRate = 1.5; });
    expectRejected([](SdpConfig &c) { c.fault.suppressWakeRate = -0.1; });
    expectRejected([](SdpConfig &c) {
        c.fault.delaySnoopRate = 0.1;
        c.fault.delayMeanUs = 0.0;
    });
    expectRejected([](SdpConfig &c) {
        c.fault.stormRatePerSec = 1e3;
        c.fault.stormBurst = 0;
    });
    expectRejected([](SdpConfig &c) {
        c.fault.stormRatePerSec = 1e3;
        c.fault.stormQueue = c.numQueues;
    });
    expectRejected([](SdpConfig &c) {
        c.recovery.watchdog = true;
        c.recovery.watchdogPeriodUs = 0.0;
    });
    expectRejected([](SdpConfig &c) {
        c.recovery.gracefulDegradation = true;
        c.recovery.addMaxTries = 0;
    });
    expectRejected([](SdpConfig &c) {
        c.numCores = 4;
        c.numQueues = 2;
        c.org = QueueOrg::ScaleOut; // fewer queues than clusters
    });
}

TEST(SdpConfigValidate, AcceptsEveryDefaultPlane)
{
    for (PlaneKind k :
         {PlaneKind::Spinning, PlaneKind::HyperPlane,
          PlaneKind::HyperPlaneSwReady, PlaneKind::InterruptDriven}) {
        EXPECT_NO_THROW(baseConfig(k).validate());
    }
}

} // namespace
} // namespace dp
} // namespace hyperplane
