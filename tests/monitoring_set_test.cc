/**
 * @file
 * Unit tests for the Cuckoo-hashed monitoring set.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/monitoring_set.hh"
#include "queueing/doorbell.hh"

namespace hyperplane {
namespace core {
namespace {

Addr
db(unsigned i)
{
    return queueing::AddressMap::doorbellAddr(i);
}

TEST(MonitoringSet, InsertThenFind)
{
    MonitoringSet ms;
    EXPECT_EQ(ms.insert(db(0), 0), MonitoringSet::InsertResult::Ok);
    const MonitorEntry *e = ms.find(db(0));
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->qid, 0u);
    EXPECT_TRUE(e->armed);
    EXPECT_TRUE(e->valid);
    EXPECT_EQ(ms.occupancy(), 1u);
}

TEST(MonitoringSet, DuplicateInsertRejected)
{
    MonitoringSet ms;
    EXPECT_EQ(ms.insert(db(0), 0), MonitoringSet::InsertResult::Ok);
    EXPECT_EQ(ms.insert(db(0), 1),
              MonitoringSet::InsertResult::Duplicate);
    EXPECT_EQ(ms.duplicateInserts.value(), 1u);
    EXPECT_EQ(ms.occupancy(), 1u);
}

TEST(MonitoringSet, SubLineAddressesShareEntry)
{
    MonitoringSet ms;
    EXPECT_EQ(ms.insert(db(3) + 8, 3), MonitoringSet::InsertResult::Ok);
    EXPECT_NE(ms.find(db(3)), nullptr);
    EXPECT_NE(ms.find(db(3) + 63), nullptr);
}

TEST(MonitoringSet, RemoveFreesEntry)
{
    MonitoringSet ms;
    ms.insert(db(0), 0);
    EXPECT_TRUE(ms.remove(db(0)));
    EXPECT_EQ(ms.find(db(0)), nullptr);
    EXPECT_EQ(ms.occupancy(), 0u);
    EXPECT_FALSE(ms.remove(db(0)));
    // The slot is reusable.
    EXPECT_EQ(ms.insert(db(0), 7), MonitoringSet::InsertResult::Ok);
}

TEST(MonitoringSet, SnoopOnArmedEntryDisarmsAndReturnsQid)
{
    MonitoringSet ms;
    ms.insert(db(5), 5);
    const auto qid = ms.onWriteTransaction(db(5));
    ASSERT_TRUE(qid.has_value());
    EXPECT_EQ(*qid, 5u);
    EXPECT_FALSE(ms.isArmed(db(5)));
}

TEST(MonitoringSet, SecondSnoopWhileDisarmedIsSilent)
{
    MonitoringSet ms;
    ms.insert(db(5), 5);
    ms.onWriteTransaction(db(5));
    // Further arrivals have no effect until re-armed (Section III-B).
    EXPECT_FALSE(ms.onWriteTransaction(db(5)).has_value());
}

TEST(MonitoringSet, RearmRestoresSnooping)
{
    MonitoringSet ms;
    ms.insert(db(5), 5);
    ms.onWriteTransaction(db(5));
    EXPECT_TRUE(ms.arm(db(5)));
    const auto qid = ms.onWriteTransaction(db(5));
    ASSERT_TRUE(qid.has_value());
    EXPECT_EQ(*qid, 5u);
}

TEST(MonitoringSet, DisarmSuppressesSnoopUntilRearm)
{
    MonitoringSet ms;
    ms.insert(db(2), 2);
    EXPECT_TRUE(ms.disarm(db(2)));
    EXPECT_FALSE(ms.disarm(db(2))); // already disarmed
    EXPECT_FALSE(ms.disarm(db(9))); // not registered
    EXPECT_FALSE(ms.onWriteTransaction(db(2)).has_value());
    EXPECT_TRUE(ms.arm(db(2)));
    EXPECT_EQ(*ms.onWriteTransaction(db(2)), 2u);
}

TEST(MonitoringSet, SnoopOnUnknownLineIsSilent)
{
    MonitoringSet ms;
    ms.insert(db(1), 1);
    EXPECT_FALSE(ms.onWriteTransaction(db(999)).has_value());
    EXPECT_FALSE(ms.arm(db(999)));
}

TEST(MonitoringSet, PaperConfigurationHoldsAThousandDoorbells)
{
    // The paper's 1024-entry monitoring set tracking 1000 queues: the
    // cuckoo walk must absorb a 97.7% load factor without conflicts.
    MonitoringSetConfig cfg;
    cfg.capacity = 1024;
    cfg.maxWalkSteps = 500;
    MonitoringSet ms(cfg);
    unsigned inserted = 0;
    for (unsigned i = 0; i < 1000; ++i)
        inserted +=
            ms.insert(db(i), i) == MonitoringSet::InsertResult::Ok;
    EXPECT_EQ(inserted, 1000u);
    EXPECT_NEAR(ms.loadFactor(), 1000.0 / 1024.0, 1e-9);
    // Every doorbell must still resolve to its QID.
    for (unsigned i = 0; i < 1000; ++i) {
        const MonitorEntry *e = ms.find(db(i));
        ASSERT_NE(e, nullptr) << "qid " << i;
        EXPECT_EQ(e->qid, i);
    }
}

TEST(MonitoringSet, FailedInsertLeavesTableIntact)
{
    // Overfill a tiny table; the losing insert must not destroy any
    // registered entry (the unwind invariant).
    MonitoringSetConfig cfg;
    cfg.capacity = 16;
    cfg.maxWalkSteps = 32;
    MonitoringSet ms(cfg);
    std::vector<unsigned> present;
    for (unsigned i = 0; i < 32; ++i) {
        if (ms.insert(db(i), i) == MonitoringSet::InsertResult::Ok)
            present.push_back(i);
    }
    EXPECT_LE(present.size(), 16u);
    EXPECT_GT(ms.insertConflicts.value(), 0u);
    for (unsigned i : present) {
        const MonitorEntry *e = ms.find(db(i));
        ASSERT_NE(e, nullptr) << "qid " << i << " vanished";
        EXPECT_EQ(e->qid, i);
    }
    EXPECT_EQ(ms.occupancy(), present.size());
}

TEST(MonitoringSet, BankedConfigurationStillResolves)
{
    MonitoringSetConfig cfg;
    cfg.capacity = 1024;
    cfg.banks = 4;
    MonitoringSet ms(cfg);
    for (unsigned i = 0; i < 600; ++i)
        ASSERT_EQ(ms.insert(db(i), i), MonitoringSet::InsertResult::Ok)
            << i;
    for (unsigned i = 0; i < 600; ++i) {
        const auto qid = ms.onWriteTransaction(db(i));
        ASSERT_TRUE(qid.has_value());
        EXPECT_EQ(*qid, i);
    }
}

TEST(MonitoringSet, StatsCountersTrackActivity)
{
    MonitoringSet ms;
    ms.insert(db(0), 0);
    ms.onWriteTransaction(db(0));
    ms.onWriteTransaction(db(1)); // miss
    EXPECT_EQ(ms.inserts.value(), 1u);
    EXPECT_EQ(ms.snoops.value(), 2u);
    EXPECT_EQ(ms.snoopMatches.value(), 1u);
}

/** Occupancy sweep: conflict-free insertion up to 85% load at 4 ways. */
class MonitoringLoadSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(MonitoringLoadSweep, InsertsWithoutConflict)
{
    MonitoringSetConfig cfg;
    cfg.capacity = 2048;
    MonitoringSet ms(cfg);
    const auto n =
        static_cast<unsigned>(GetParam() * cfg.capacity);
    for (unsigned i = 0; i < n; ++i)
        ASSERT_EQ(ms.insert(db(i), i), MonitoringSet::InsertResult::Ok)
            << "at load " << GetParam();
    EXPECT_EQ(ms.insertConflicts.value(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Loads, MonitoringLoadSweep,
                         ::testing::Values(0.25, 0.5, 0.75, 0.85));

} // namespace
} // namespace core
} // namespace hyperplane
