/**
 * @file
 * Unit tests for BitVec.
 */

#include <gtest/gtest.h>

#include "core/bitvec.hh"
#include "sim/rng.hh"

namespace hyperplane {
namespace core {
namespace {

TEST(BitVec, StartsAllZero)
{
    BitVec v(130);
    EXPECT_EQ(v.size(), 130u);
    EXPECT_TRUE(v.none());
    EXPECT_EQ(v.count(), 0u);
}

TEST(BitVec, SetClearTest)
{
    BitVec v(100);
    v.set(0);
    v.set(63);
    v.set(64);
    v.set(99);
    EXPECT_TRUE(v.test(0));
    EXPECT_TRUE(v.test(63));
    EXPECT_TRUE(v.test(64));
    EXPECT_TRUE(v.test(99));
    EXPECT_FALSE(v.test(1));
    EXPECT_EQ(v.count(), 4u);
    v.clear(63);
    EXPECT_FALSE(v.test(63));
    EXPECT_EQ(v.count(), 3u);
}

TEST(BitVec, AssignSelectsSetOrClear)
{
    BitVec v(8);
    v.assign(3, true);
    EXPECT_TRUE(v.test(3));
    v.assign(3, false);
    EXPECT_FALSE(v.test(3));
}

TEST(BitVec, SetAllRespectsSize)
{
    BitVec v(70);
    v.setAll();
    EXPECT_EQ(v.count(), 70u);
    v.reset();
    EXPECT_TRUE(v.none());
}

TEST(BitVec, FindFirstFromScansForward)
{
    BitVec v(200);
    v.set(5);
    v.set(130);
    EXPECT_EQ(v.findFirstFrom(0), 5u);
    EXPECT_EQ(v.findFirstFrom(5), 5u);
    EXPECT_EQ(v.findFirstFrom(6), 130u);
    EXPECT_EQ(v.findFirstFrom(131), 200u); // none
}

TEST(BitVec, FindFirstCircularWraps)
{
    BitVec v(100);
    v.set(10);
    EXPECT_EQ(v.findFirstCircular(50), 10u);
    EXPECT_EQ(v.findFirstCircular(10), 10u);
    EXPECT_EQ(v.findFirstCircular(11), 10u);
}

TEST(BitVec, FindFirstCircularEmptyReturnsSize)
{
    BitVec v(64);
    EXPECT_EQ(v.findFirstCircular(0), 64u);
    EXPECT_EQ(v.findFirstCircular(33), 64u);
}

TEST(BitVec, AndOrOperations)
{
    BitVec a(70), b(70);
    a.set(1);
    a.set(65);
    b.set(65);
    b.set(2);
    const BitVec o = a | b;
    const BitVec n = a & b;
    EXPECT_EQ(o.count(), 3u);
    EXPECT_EQ(n.count(), 1u);
    EXPECT_TRUE(n.test(65));
}

TEST(BitVec, EqualityComparesBitsAndSize)
{
    BitVec a(10), b(10), c(11);
    a.set(3);
    b.set(3);
    EXPECT_TRUE(a == b);
    b.set(4);
    EXPECT_FALSE(a == b);
    EXPECT_FALSE(a == c);
}

TEST(BitVec, RandomizedFindMatchesLinearScan)
{
    Rng rng(77);
    for (int trial = 0; trial < 50; ++trial) {
        const unsigned n = 1 + static_cast<unsigned>(rng.uniformInt(300));
        BitVec v(n);
        std::vector<bool> ref(n, false);
        const unsigned sets = static_cast<unsigned>(rng.uniformInt(n));
        for (unsigned i = 0; i < sets; ++i) {
            const unsigned bit =
                static_cast<unsigned>(rng.uniformInt(n));
            v.set(bit);
            ref[bit] = true;
        }
        const unsigned from = static_cast<unsigned>(rng.uniformInt(n));
        // Reference circular scan.
        unsigned expect = n;
        for (unsigned k = 0; k < n; ++k) {
            const unsigned pos = (from + k) % n;
            if (ref[pos]) {
                expect = pos;
                break;
            }
        }
        EXPECT_EQ(v.findFirstCircular(from), expect)
            << "n=" << n << " from=" << from;
    }
}

} // namespace
} // namespace core
} // namespace hyperplane
