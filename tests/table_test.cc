/**
 * @file
 * Unit tests for table formatting.
 */

#include <gtest/gtest.h>

#include "stats/table.hh"

namespace hyperplane {
namespace stats {
namespace {

TEST(Table, RendersTitleHeaderAndRows)
{
    Table t("My Table");
    t.header({"a", "bb"});
    t.row({"1", "2"});
    const std::string s = t.str();
    EXPECT_NE(s.find("My Table"), std::string::npos);
    EXPECT_NE(s.find("a"), std::string::npos);
    EXPECT_NE(s.find("bb"), std::string::npos);
    EXPECT_NE(s.find("1"), std::string::npos);
}

TEST(Table, ColumnsAlignAcrossRows)
{
    Table t("t");
    t.header({"col", "x"});
    t.row({"longvalue", "1"});
    t.row({"s", "2"});
    const std::string s = t.str();
    // Both data rows should place their second column at the same
    // offset within the line.
    const auto lineAt = [&](int n) {
        std::size_t pos = 0;
        for (int i = 0; i < n; ++i)
            pos = s.find('\n', pos) + 1;
        return s.substr(pos, s.find('\n', pos) - pos);
    };
    const std::string r1 = lineAt(3);
    const std::string r2 = lineAt(4);
    EXPECT_EQ(r1.find('1'), r2.find('2'));
}

TEST(Table, RowValuesFormatsWithPrecision)
{
    Table t("t");
    t.rowValues({1.23456, 2.0}, 2);
    const std::string s = t.str();
    EXPECT_NE(s.find("1.23"), std::string::npos);
    EXPECT_NE(s.find("2.00"), std::string::npos);
}

TEST(Table, RowCount)
{
    Table t("t");
    EXPECT_EQ(t.rows(), 0u);
    t.row({"x"});
    t.row({"y"});
    EXPECT_EQ(t.rows(), 2u);
}

TEST(TableFmt, FixedPrecision)
{
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmt(2.0, 0), "2");
}

TEST(TableFmt, RatioSuffix)
{
    EXPECT_EQ(fmtRatio(4.12), "4.1x");
    EXPECT_EQ(fmtRatio(16.44, 1), "16.4x");
}

} // namespace
} // namespace stats
} // namespace hyperplane
