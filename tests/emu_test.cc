/**
 * @file
 * Unit and threading tests for the software QWAIT emulation.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "emu/emu_hyperplane.hh"
#include "stats/registry.hh"

namespace hyperplane {
namespace emu {
namespace {

using namespace std::chrono_literals;

TEST(EmuHyperPlane, AddAssignsDistinctQids)
{
    EmuHyperPlane hp(8);
    const auto a = hp.addQueue();
    const auto b = hp.addQueue();
    ASSERT_TRUE(a.has_value() && b.has_value());
    EXPECT_NE(*a, *b);
}

TEST(EmuHyperPlane, CapacityExhaustionReported)
{
    EmuHyperPlane hp(2);
    EXPECT_TRUE(hp.addQueue().has_value());
    EXPECT_TRUE(hp.addQueue().has_value());
    EXPECT_FALSE(hp.addQueue().has_value());
}

TEST(EmuHyperPlane, RemoveRecyclesQid)
{
    EmuHyperPlane hp(2);
    const auto a = hp.addQueue();
    hp.addQueue();
    hp.removeQueue(*a);
    const auto c = hp.addQueue();
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(*c, *a);
}

TEST(EmuHyperPlane, QwaitTimesOutWhenIdle)
{
    EmuHyperPlane hp(4);
    hp.addQueue();
    EXPECT_FALSE(hp.qwait(10ms).has_value());
}

TEST(EmuHyperPlane, RingMakesQueueReady)
{
    EmuHyperPlane hp(4);
    const auto q = hp.addQueue();
    hp.ring(*q);
    const auto got = hp.qwait(100ms);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, *q);
    EXPECT_EQ(hp.pendingItems(*q), 1u);
}

TEST(EmuHyperPlane, TakeClaimsUpToAvailable)
{
    EmuHyperPlane hp(4);
    const auto q = hp.addQueue();
    hp.ring(*q, 5);
    EXPECT_EQ(hp.take(*q, 3), 3u);
    EXPECT_EQ(hp.pendingItems(*q), 2u);
    EXPECT_EQ(hp.take(*q, 10), 2u);
    EXPECT_EQ(hp.take(*q, 1), 0u); // spurious grant claims nothing
}

TEST(EmuHyperPlane, TakeReactivatesWhenItemsRemain)
{
    EmuHyperPlane hp(4);
    const auto q = hp.addQueue();
    hp.ring(*q, 3);
    ASSERT_TRUE(hp.qwait(100ms).has_value());
    hp.take(*q, 1);
    // Two remain: the QID must be grantable again without a new ring.
    const auto again = hp.qwaitNonBlocking();
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(*again, *q);
}

TEST(EmuHyperPlane, NonBlockingVariantNeverWaits)
{
    EmuHyperPlane hp(4);
    hp.addQueue();
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_FALSE(hp.qwaitNonBlocking().has_value());
    EXPECT_LT(std::chrono::steady_clock::now() - t0, 50ms);
}

TEST(EmuHyperPlane, DisableInhibitsGrants)
{
    EmuHyperPlane hp(4);
    const auto q = hp.addQueue();
    hp.ring(*q);
    hp.disable(*q);
    EXPECT_FALSE(hp.qwaitNonBlocking().has_value());
    hp.enable(*q);
    EXPECT_TRUE(hp.qwaitNonBlocking().has_value());
}

TEST(EmuHyperPlane, RoundRobinAcrossQueues)
{
    EmuHyperPlane hp(4);
    const auto a = hp.addQueue();
    const auto b = hp.addQueue();
    hp.ring(*a);
    hp.ring(*b);
    const auto g1 = hp.qwaitNonBlocking();
    const auto g2 = hp.qwaitNonBlocking();
    ASSERT_TRUE(g1.has_value() && g2.has_value());
    EXPECT_NE(*g1, *g2);
}

TEST(EmuHyperPlane, BlockedConsumerWokenByProducerThread)
{
    EmuHyperPlane hp(4);
    const auto q = hp.addQueue();
    std::atomic<bool> got{false};

    std::thread consumer([&] {
        const auto qid = hp.qwait(2s);
        if (qid && *qid == *q && hp.take(*qid) == 1)
            got = true;
    });
    std::this_thread::sleep_for(20ms);
    hp.ring(*q);
    consumer.join();
    EXPECT_TRUE(got);
}

TEST(EmuHyperPlane, ProducerConsumerThroughputStress)
{
    EmuHyperPlane hp(16);
    std::vector<QueueId> qids;
    for (int i = 0; i < 8; ++i)
        qids.push_back(*hp.addQueue());
    constexpr std::uint64_t itemsPerQueue = 2000;
    std::atomic<std::uint64_t> consumed{0};

    std::thread consumer([&] {
        while (consumed < itemsPerQueue * qids.size()) {
            const auto qid = hp.qwait(2s);
            if (!qid)
                break;
            consumed += hp.take(*qid, 64);
        }
    });
    std::thread producer([&] {
        for (std::uint64_t i = 0; i < itemsPerQueue; ++i)
            for (QueueId q : qids)
                hp.ring(q);
    });
    producer.join();
    consumer.join();
    EXPECT_EQ(consumed.load(), itemsPerQueue * qids.size());
    for (QueueId q : qids)
        EXPECT_EQ(hp.pendingItems(q), 0u);
}

TEST(EmuHyperPlane, TargetedWakeupNotifiesOncePerNewlyReadyQueue)
{
    // Park several waiters, ring one queue once: exactly one targeted
    // notify must be issued (no broadcast), and exactly one waiter gets
    // the grant while the rest time out.
    EmuHyperPlane hp(4);
    const auto q = hp.addQueue();
    constexpr int numWaiters = 4;
    std::atomic<int> granted{0};
    std::atomic<int> timedOut{0};

    std::vector<std::thread> waiters;
    for (int i = 0; i < numWaiters; ++i) {
        waiters.emplace_back([&] {
            const auto qid = hp.qwait(500ms);
            if (qid) {
                hp.take(*qid, 1);
                granted++;
            } else {
                timedOut++;
            }
        });
    }
    std::this_thread::sleep_for(50ms);
    hp.ring(*q);
    for (auto &t : waiters)
        t.join();

    EXPECT_EQ(granted.load(), 1);
    EXPECT_EQ(timedOut.load(), numWaiters - 1);
    EXPECT_EQ(hp.wakeups(), 1u);
    EXPECT_EQ(hp.qwaitTimeouts(), static_cast<std::uint64_t>(numWaiters) - 1);
}

TEST(EmuHyperPlane, RepeatRingOfReadyQueueDoesNotRenotify)
{
    // Once a queue is already grantable, further rings add items but
    // must not wake more waiters — the wake-per-transition contract.
    EmuHyperPlane hp(4);
    const auto q = hp.addQueue();
    hp.ring(*q);
    hp.ring(*q);
    hp.ring(*q);
    EXPECT_EQ(hp.pendingItems(*q), 3u);
    EXPECT_EQ(hp.wakeups(), 0u); // no waiter was ever parked
}

TEST(EmuHyperPlane, TakeResidualRenotifiesOneWaiter)
{
    // A partial take leaves the queue ready; a parked waiter must be
    // woken for the residual without a new ring.
    EmuHyperPlane hp(4);
    const auto q = hp.addQueue();
    hp.ring(*q, 8);
    const auto g = hp.qwaitNonBlocking();
    ASSERT_TRUE(g.has_value());

    std::atomic<std::uint64_t> claimed{0};
    std::thread waiter([&] {
        const auto qid = hp.qwait(2s);
        if (qid)
            claimed = hp.take(*qid, 64);
    });
    std::this_thread::sleep_for(20ms);
    EXPECT_EQ(hp.take(*g, 3), 3u); // residual 5 -> renotify
    waiter.join();
    EXPECT_EQ(claimed.load(), 5u);
    EXPECT_EQ(hp.pendingItems(*q), 0u);
}

TEST(EmuHyperPlane, SpuriousWakeAccountingUnderContention)
{
    // Hammer one queue with many waiters: every wake either produces a
    // grant or is counted spurious/timeout — nothing is lost.
    EmuHyperPlane hp(8);
    std::vector<QueueId> qids;
    for (int i = 0; i < 4; ++i)
        qids.push_back(*hp.addQueue());
    constexpr std::uint64_t total = 4000;
    std::atomic<std::uint64_t> consumed{0};

    std::vector<std::thread> workers;
    for (int w = 0; w < 4; ++w) {
        workers.emplace_back([&] {
            while (consumed.load() < total) {
                const auto qid = hp.qwait(100ms);
                if (qid)
                    consumed += hp.take(*qid, 16);
            }
        });
    }
    std::thread producer([&] {
        for (std::uint64_t i = 0; i < total; ++i)
            hp.ring(qids[i % qids.size()]);
    });
    producer.join();
    for (auto &t : workers)
        t.join();

    EXPECT_EQ(consumed.load(), total);
    // Targeted wakeups bound the herd: at most one notify per ring plus
    // one per residual-bearing take — never a broadcast to all waiters.
    EXPECT_LE(hp.wakeups(), 2 * total);
    EXPECT_GE(hp.grants(), total / 16); // every grant claims <= 16
    for (QueueId q : qids)
        EXPECT_EQ(hp.pendingItems(q), 0u);
}

TEST(EmuHyperPlane, EnableWakesWaiterForPendingQueue)
{
    // disable() hides a ready queue; enable() must re-notify a parked
    // waiter (the enable path uses the same targeted wake).
    EmuHyperPlane hp(4);
    const auto q = hp.addQueue();
    hp.ring(*q);
    hp.disable(*q);
    std::atomic<bool> got{false};
    std::thread waiter([&] {
        const auto qid = hp.qwait(2s);
        if (qid && hp.take(*qid, 1) == 1)
            got = true;
    });
    std::this_thread::sleep_for(20ms);
    hp.enable(*q);
    waiter.join();
    EXPECT_TRUE(got.load());
}

TEST(EmuHyperPlane, RegistersWakeCountersInRegistry)
{
    EmuHyperPlane hp(4);
    const auto q = hp.addQueue();
    hp.ring(*q);
    EXPECT_EQ(hp.qwaitNonBlocking(), q);
    hp.take(*q, 1);

    stats::Registry reg;
    hp.registerStats(reg, "dev");
    EXPECT_TRUE(reg.has("dev.grants"));
    EXPECT_TRUE(reg.has("dev.wakeups"));
    EXPECT_TRUE(reg.has("dev.spurious_wakes"));
    EXPECT_TRUE(reg.has("dev.qwait_timeouts"));
    EXPECT_DOUBLE_EQ(reg.value("dev.grants"), 1.0);
}

TEST(EmuHyperPlane, WeightedPolicyFavorsHeavyQueue)
{
    EmuHyperPlane hp(4, core::ServicePolicy::WeightedRoundRobin);
    const auto a = hp.addQueue();
    const auto b = hp.addQueue();
    hp.setWeight(*a, 3);
    int grantsA = 0, grantsB = 0;
    for (int i = 0; i < 200; ++i) {
        hp.ring(*a);
        hp.ring(*b);
        const auto g = hp.qwaitNonBlocking();
        ASSERT_TRUE(g.has_value());
        (*g == *a ? grantsA : grantsB)++;
        hp.take(*g, 10); // drain
    }
    EXPECT_GT(grantsA, 2 * grantsB);
}

} // namespace
} // namespace emu
} // namespace hyperplane
