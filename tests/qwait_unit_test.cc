/**
 * @file
 * Unit tests for the QwaitUnit: the full Algorithm 1 semantics.
 */

#include <gtest/gtest.h>

#include "core/qwait_unit.hh"
#include "queueing/doorbell.hh"

namespace hyperplane {
namespace core {
namespace {

using queueing::AddressMap;
using queueing::Doorbell;

QwaitConfig
smallConfig()
{
    QwaitConfig cfg;
    cfg.ready.capacity = 64;
    return cfg;
}

TEST(QwaitUnit, AddBindsDoorbellToQid)
{
    QwaitUnit unit(smallConfig());
    EXPECT_EQ(unit.qwaitAdd(3, AddressMap::doorbellAddr(3)),
              AddResult::Ok);
    const auto addr = unit.doorbellOf(3);
    ASSERT_TRUE(addr.has_value());
    EXPECT_EQ(*addr, AddressMap::doorbellAddr(3));
}

TEST(QwaitUnit, AddRejectsDuplicateQid)
{
    QwaitUnit unit(smallConfig());
    EXPECT_EQ(unit.qwaitAdd(3, AddressMap::doorbellAddr(3)),
              AddResult::Ok);
    EXPECT_EQ(unit.qwaitAdd(3, AddressMap::doorbellAddr(4)),
              AddResult::DuplicateQid);
    // Same doorbell from a different queue is an address duplicate.
    EXPECT_EQ(unit.qwaitAdd(4, AddressMap::doorbellAddr(3)),
              AddResult::DuplicateAddr);
}

TEST(QwaitUnit, RemoveUnbinds)
{
    QwaitUnit unit(smallConfig());
    unit.qwaitAdd(3, AddressMap::doorbellAddr(3));
    EXPECT_TRUE(unit.qwaitRemove(3));
    EXPECT_FALSE(unit.doorbellOf(3).has_value());
    EXPECT_FALSE(unit.qwaitRemove(3));
    // Rebinding after removal works.
    EXPECT_EQ(unit.qwaitAdd(3, AddressMap::doorbellAddr(3)),
              AddResult::Ok);
}

TEST(QwaitUnit, ReallocLoopRetriesUntilSuccess)
{
    // Tiny monitoring set forces conflicts; the driver loop must find a
    // doorbell address that fits.
    QwaitConfig cfg = smallConfig();
    cfg.monitoring.capacity = 16;
    cfg.monitoring.maxWalkSteps = 4;
    QwaitUnit unit(cfg);
    unsigned bound = 0;
    unsigned next = 0;
    for (QueueId q = 0; q < 20; ++q) {
        const auto addr = unit.addQueueWithRealloc(
            q, [&next] { return AddressMap::doorbellAddr(next++); },
            64);
        bound += addr.has_value() ? 1 : 0;
    }
    EXPECT_GE(bound, 14u); // most queues bind despite the tiny table
}

TEST(QwaitUnit, QwaitBlocksWhenNoQueueReady)
{
    QwaitUnit unit(smallConfig());
    unit.qwaitAdd(0, AddressMap::doorbellAddr(0));
    EXPECT_FALSE(unit.qwait().has_value());
    EXPECT_EQ(unit.qwaitBlocked.value(), 1u);
}

TEST(QwaitUnit, WriteTransactionMakesQueueReady)
{
    QwaitUnit unit(smallConfig());
    unit.qwaitAdd(7, AddressMap::doorbellAddr(7));
    unit.onWriteTransaction(AddressMap::doorbellAddr(7), 0);
    const auto qid = unit.qwait();
    ASSERT_TRUE(qid.has_value());
    EXPECT_EQ(*qid, 7u);
}

TEST(QwaitUnit, WakeCallbackFiresOnActivation)
{
    QwaitUnit unit(smallConfig());
    unit.qwaitAdd(1, AddressMap::doorbellAddr(1));
    int wakes = 0;
    unit.setWakeCallback([&] { ++wakes; });
    unit.onWriteTransaction(AddressMap::doorbellAddr(1), 0);
    EXPECT_EQ(wakes, 1);
    // Disarmed entry: another write does not re-activate or wake.
    unit.onWriteTransaction(AddressMap::doorbellAddr(1), 0);
    EXPECT_EQ(wakes, 1);
}

TEST(QwaitUnit, VerifyFiltersSpuriousWakeup)
{
    QwaitUnit unit(smallConfig());
    unit.qwaitAdd(2, AddressMap::doorbellAddr(2));
    Doorbell db(AddressMap::doorbellAddr(2)); // empty: count == 0
    // A spurious write (e.g. false sharing) activated the queue.
    unit.onWriteTransaction(AddressMap::doorbellAddr(2), 0);
    const auto qid = unit.qwait();
    ASSERT_TRUE(qid.has_value());
    EXPECT_FALSE(unit.qwaitVerify(*qid, db));
    EXPECT_EQ(unit.spuriousWakeups.value(), 1u);
    // VERIFY re-armed the entry: a real arrival is caught again.
    db.increment();
    unit.onWriteTransaction(AddressMap::doorbellAddr(2), 0);
    const auto again = unit.qwait();
    ASSERT_TRUE(again.has_value());
    EXPECT_TRUE(unit.qwaitVerify(*again, db));
}

TEST(QwaitUnit, ReconsiderRearmsEmptyQueue)
{
    QwaitUnit unit(smallConfig());
    unit.qwaitAdd(4, AddressMap::doorbellAddr(4));
    Doorbell db(AddressMap::doorbellAddr(4));

    db.increment();
    unit.onWriteTransaction(AddressMap::doorbellAddr(4), 0);
    const auto qid = unit.qwait();
    ASSERT_TRUE(qid.has_value());
    EXPECT_TRUE(unit.qwaitVerify(*qid, db));
    db.decrement(); // dequeue the single item
    unit.qwaitReconsider(*qid, db);
    // Queue empty: re-armed in the monitoring set, not the ready set.
    EXPECT_FALSE(unit.qwait().has_value());
    EXPECT_TRUE(unit.monitoringSet().isArmed(db.addr()));
}

TEST(QwaitUnit, ReconsiderReactivatesNonEmptyQueue)
{
    QwaitUnit unit(smallConfig());
    unit.qwaitAdd(4, AddressMap::doorbellAddr(4));
    Doorbell db(AddressMap::doorbellAddr(4));

    db.increment(3); // burst of three items, one doorbell write seen
    unit.onWriteTransaction(AddressMap::doorbellAddr(4), 0);
    auto qid = unit.qwait();
    ASSERT_TRUE(qid.has_value());
    db.decrement();
    unit.qwaitReconsider(*qid, db);
    // Two items remain: the QID must come back from the ready set
    // without any further doorbell write.
    qid = unit.qwait();
    ASSERT_TRUE(qid.has_value());
    EXPECT_EQ(*qid, 4u);
}

TEST(QwaitUnit, NoMissedWakeupAcrossReconsiderWindow)
{
    // The race Section III-B worries about: the queue drains, and a new
    // item arrives "concurrently" with RECONSIDER.  Whichever order the
    // atomic operations resolve in, the wakeup must not be lost.
    QwaitUnit unit(smallConfig());
    unit.qwaitAdd(9, AddressMap::doorbellAddr(9));
    Doorbell db(AddressMap::doorbellAddr(9));

    db.increment();
    unit.onWriteTransaction(AddressMap::doorbellAddr(9), 0);
    auto qid = unit.qwait();
    ASSERT_TRUE(qid.has_value());
    db.decrement();
    // Order A: reconsider first (re-arms), then the arrival writes.
    unit.qwaitReconsider(*qid, db);
    db.increment();
    unit.onWriteTransaction(AddressMap::doorbellAddr(9), 0);
    qid = unit.qwait();
    ASSERT_TRUE(qid.has_value());
    EXPECT_EQ(*qid, 9u);

    db.decrement();
    unit.qwaitReconsider(*qid, db);
    // Order B: the arrival lands before reconsider runs.
    db.increment();
    unit.onWriteTransaction(AddressMap::doorbellAddr(9), 0);
    qid = unit.qwait();
    ASSERT_TRUE(qid.has_value());
    db.decrement();
    unit.qwaitReconsider(*qid, db);
    EXPECT_FALSE(unit.qwait().has_value()); // and no double grant
}

TEST(QwaitUnit, ConsumerDecrementDoesNotTriggerWakeup)
{
    // The dequeue's doorbell decrement is a write transaction too, but
    // the entry is disarmed during the dequeue (memory-barrier ordering
    // of RECONSIDER), so no spurious QID results.
    QwaitUnit unit(smallConfig());
    unit.qwaitAdd(5, AddressMap::doorbellAddr(5));
    Doorbell db(AddressMap::doorbellAddr(5));
    db.increment();
    unit.onWriteTransaction(AddressMap::doorbellAddr(5), 0);
    auto qid = unit.qwait();
    ASSERT_TRUE(qid.has_value());
    EXPECT_TRUE(unit.qwaitVerify(*qid, db));
    db.decrement();
    // The decrement's coherence transaction arrives at the (disarmed)
    // monitoring set before RECONSIDER re-arms:
    unit.onWriteTransaction(AddressMap::doorbellAddr(5), 0);
    unit.qwaitReconsider(*qid, db);
    EXPECT_FALSE(unit.qwait().has_value());
}

TEST(QwaitUnit, EnableDisableGateGrants)
{
    QwaitUnit unit(smallConfig());
    unit.qwaitAdd(6, AddressMap::doorbellAddr(6));
    unit.onWriteTransaction(AddressMap::doorbellAddr(6), 0);
    unit.qwaitDisable(6);
    EXPECT_FALSE(unit.qwait().has_value());
    unit.qwaitEnable(6);
    const auto qid = unit.qwait();
    ASSERT_TRUE(qid.has_value());
    EXPECT_EQ(*qid, 6u);
}

TEST(QwaitUnit, EnableOfReadyQueueFiresWakeCallback)
{
    // A queue ringing while disabled must wake a halted core the
    // moment it is re-enabled, not at the next unrelated arrival.
    QwaitUnit unit(smallConfig());
    unit.qwaitAdd(6, AddressMap::doorbellAddr(6));
    unit.qwaitDisable(6);
    int wakes = 0;
    unit.setWakeCallback([&] { ++wakes; });
    unit.onWriteTransaction(AddressMap::doorbellAddr(6), 0);
    EXPECT_EQ(wakes, 1); // activation itself fires (core will re-block)
    EXPECT_FALSE(unit.qwait().has_value());
    unit.qwaitEnable(6);
    EXPECT_EQ(wakes, 2); // re-enable re-fires for the pending QID
    EXPECT_EQ(*unit.qwait(), 6u);
    // Enabling an idle queue fires nothing.
    unit.qwaitDisable(6);
    unit.qwaitEnable(6);
    EXPECT_EQ(wakes, 2);
}

TEST(QwaitUnit, PolicyOrderAppliedAcrossQueues)
{
    QwaitConfig cfg = smallConfig();
    cfg.ready.policy = ServicePolicy::StrictPriority;
    QwaitUnit unit(cfg);
    for (QueueId q : {10u, 20u, 30u})
        unit.qwaitAdd(q, AddressMap::doorbellAddr(q));
    for (QueueId q : {30u, 10u, 20u})
        unit.onWriteTransaction(AddressMap::doorbellAddr(q), 0);
    EXPECT_EQ(*unit.qwait(), 10u);
    EXPECT_EQ(*unit.qwait(), 20u);
    EXPECT_EQ(*unit.qwait(), 30u);
}

TEST(QwaitUnit, InjectedSpuriousActivationCountsAsSpuriousWakeup)
{
    QwaitUnit unit(smallConfig());
    EXPECT_EQ(unit.qwaitAdd(8, AddressMap::doorbellAddr(8)),
              AddResult::Ok);
    Doorbell db(AddressMap::doorbellAddr(8)); // empty
    int wakes = 0;
    unit.setWakeCallback([&] { ++wakes; });
    unit.injectSpuriousActivation(8);
    EXPECT_EQ(wakes, 1); // the fault wakes a core...
    const auto qid = unit.qwait();
    ASSERT_TRUE(qid.has_value());
    // ...and VERIFY filters it, charging the spurious-wakeup counter.
    EXPECT_FALSE(unit.qwaitVerify(*qid, db));
    EXPECT_EQ(unit.spuriousWakeups.value(), 1u);
    // The filtered grant must not resurface without a new write.
    EXPECT_FALSE(unit.qwait().has_value());
}

TEST(QwaitUnit, WatchdogVerifyRescuesArmedNonEmptyQueue)
{
    QwaitUnit unit(smallConfig());
    EXPECT_EQ(unit.qwaitAdd(11, AddressMap::doorbellAddr(11)),
              AddResult::Ok);
    Doorbell db(AddressMap::doorbellAddr(11));
    int wakes = 0;
    unit.setWakeCallback([&] { ++wakes; });

    // Healthy states are left alone: empty doorbell...
    EXPECT_FALSE(unit.watchdogVerify(11, db));
    // ...unbound queue...
    EXPECT_FALSE(unit.watchdogVerify(12, db));
    EXPECT_EQ(wakes, 0);

    // The lost-notification state: producer enqueued (doorbell rung)
    // but the snoop never arrived, so the entry is still armed.
    db.increment();
    EXPECT_TRUE(unit.watchdogVerify(11, db));
    EXPECT_EQ(wakes, 1);

    // Already-ready queues are not double-activated.
    EXPECT_FALSE(unit.watchdogVerify(11, db));
    EXPECT_EQ(wakes, 1);
    EXPECT_EQ(*unit.qwait(), 11u);
}

TEST(QwaitUnit, WatchdogVerifyIsIdempotentWithLateSnoop)
{
    // A delayed snoop that finally lands after the watchdog already
    // rescued the queue must not produce a second grant: the rescue
    // disarmed the entry, so the late write is absorbed.
    QwaitUnit unit(smallConfig());
    EXPECT_EQ(unit.qwaitAdd(13, AddressMap::doorbellAddr(13)),
              AddResult::Ok);
    Doorbell db(AddressMap::doorbellAddr(13));
    db.increment();
    EXPECT_TRUE(unit.watchdogVerify(13, db));
    unit.onWriteTransaction(AddressMap::doorbellAddr(13), 0); // late
    EXPECT_EQ(*unit.qwait(), 13u);
    EXPECT_FALSE(unit.qwait().has_value()); // exactly one grant
}

TEST(QwaitUnit, QwaitLatencyFromConfig)
{
    QwaitConfig cfg = smallConfig();
    cfg.qwaitLatency = 75;
    QwaitUnit unit(cfg);
    EXPECT_EQ(unit.qwaitLatency(), 75u);
}

} // namespace
} // namespace core
} // namespace hyperplane
