/**
 * @file
 * Multi-tenant overload control: tenant spec validation, token-bucket
 * admission, the TenantTable, doorbell-storm muting on the emulated
 * device, watchdog demotion/promotion under concurrent per-tenant
 * demand (the TSan target), and end-to-end loopback isolation.  The
 * loopback tests skip with an annotation when the sandbox forbids
 * sockets.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "dp/sdp_system.hh"
#include "dp/tenant_spec.hh"
#include "emu/data_plane_pool.hh"
#include "emu/emu_hyperplane.hh"
#include "server/loadgen.hh"
#include "server/server.hh"
#include "server/tenant.hh"
#include "stats/registry.hh"

namespace hyperplane {
namespace {

using namespace std::chrono_literals;

dp::TenantSpec
spec(const char *name, std::uint32_t weight, std::uint32_t priority,
     double rate, unsigned first, unsigned count)
{
    dp::TenantSpec s;
    s.name = name;
    s.weight = weight;
    s.priority = priority;
    s.rateLimitPerSec = rate;
    s.queueFirst = first;
    s.queueCount = count;
    return s;
}

// --- Spec validation (shared by SdpConfig::validate and the server) ---

TEST(TenantSpecValidate, AcceptsDisjointOrderedGroups)
{
    const std::vector<dp::TenantSpec> tenants{
        spec("gold", 8, 2, 1e4, 0, 4),
        spec("silver", 2, 1, 5e3, 4, 8),
        spec("bronze", 1, 0, 0.0, 12, 4),
    };
    EXPECT_EQ(dp::validateTenantSpecs(tenants, 16), "");
    EXPECT_EQ(dp::validateTenantSpecs({}, 16), "");
}

TEST(TenantSpecValidate, RejectsZeroWeightWithMessage)
{
    const auto err = dp::validateTenantSpecs(
        {spec("t", 0, 0, 0.0, 0, 4)}, 16);
    EXPECT_NE(err.find("weight must be >= 1"), std::string::npos)
        << err;
}

TEST(TenantSpecValidate, RejectsOverlappingGroupsWithMessage)
{
    const auto err = dp::validateTenantSpecs(
        {spec("a", 1, 0, 0.0, 0, 8), spec("b", 1, 0, 0.0, 4, 8)}, 16);
    EXPECT_NE(err.find("overlaps tenant a"), std::string::npos) << err;
}

TEST(TenantSpecValidate, RejectsUnlimitedHighPriorityWithMessage)
{
    const auto err = dp::validateTenantSpecs(
        {spec("t", 1, 1, 0.0, 0, 4)}, 16);
    EXPECT_NE(err.find("priority > 0 requires a rate limit"),
              std::string::npos)
        << err;
}

TEST(TenantSpecValidate, RejectsGroupBeyondQueueCount)
{
    const auto err = dp::validateTenantSpecs(
        {spec("t", 1, 0, 0.0, 12, 8)}, 16);
    EXPECT_NE(err.find("exceeds numQueues=16"), std::string::npos)
        << err;
}

TEST(TenantSpecValidate, RejectsPriorityContradictingQueueOrder)
{
    // Higher priority on *higher* queue ids: the strict-priority
    // arbiter grants the lowest QID, so this spec would invert QoS.
    const auto err = dp::validateTenantSpecs(
        {spec("low", 1, 0, 0.0, 0, 4), spec("high", 1, 1, 1e3, 4, 4)},
        8);
    EXPECT_NE(err.find("priority order contradicts queue-group order"),
              std::string::npos)
        << err;
}

TEST(TenantSpecValidate, SdpConfigValidateRejectsMalformedTenants)
{
    const auto expectRejected = [](std::vector<dp::TenantSpec> tenants) {
        dp::SdpConfig cfg;
        cfg.tenants = std::move(tenants);
        EXPECT_THROW(cfg.validate(), std::invalid_argument);
    };
    expectRejected({spec("t", 0, 0, 0.0, 0, 4)});
    expectRejected({spec("t", 1, 0, 0.0, 0, 0)});
    expectRejected({spec("t", 1, 1, 0.0, 0, 4)});
    expectRejected({spec("t", 1, 0, -1.0, 0, 4)});
    expectRejected(
        {spec("a", 1, 0, 0.0, 0, 8), spec("b", 1, 0, 0.0, 4, 8)});

    dp::SdpConfig ok;
    ok.tenants = {spec("a", 4, 1, 1e4, 0, 8),
                  spec("b", 1, 0, 0.0, 8, 8)};
    EXPECT_NO_THROW(ok.validate());
}

// --- Token bucket (external clock, deterministic) ---

TEST(TokenBucket, UnlimitedAlwaysAdmits)
{
    server::TokenBucket tb(0.0, 0.0);
    EXPECT_TRUE(tb.unlimited());
    for (int i = 0; i < 1000; ++i)
        EXPECT_TRUE(tb.tryTake(0));
}

TEST(TokenBucket, BurstThenRefillExactly)
{
    server::TokenBucket tb(1000.0, 10.0); // 1 token/ms, depth 10
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(tb.tryTake(0)) << i;
    EXPECT_FALSE(tb.tryTake(0));
    // 5 ms later: exactly 5 tokens accrued.
    const std::uint64_t t1 = 5'000'000;
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(tb.tryTake(t1)) << i;
    EXPECT_FALSE(tb.tryTake(t1));
}

TEST(TokenBucket, RefillCapsAtBurst)
{
    server::TokenBucket tb(1000.0, 4.0);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(tb.tryTake(0));
    // An hour idle refills to the 4-token cap, not 3.6 M tokens.
    const std::uint64_t later = 3'600ULL * 1'000'000'000ULL;
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(tb.tryTake(later)) << i;
    EXPECT_FALSE(tb.tryTake(later));
}

TEST(TokenBucket, PacesToTheConfiguredRate)
{
    server::TokenBucket tb(10000.0, 1.0); // 1 token / 100 us
    EXPECT_TRUE(tb.tryTake(0));
    EXPECT_FALSE(tb.tryTake(50'000)); // 0.5 tokens accrued
    EXPECT_TRUE(tb.tryTake(100'000));
    EXPECT_FALSE(tb.tryTake(150'000));
}

// --- TenantTable ---

TEST(TenantTable, EmptySpecsBuildOneUnlimitedTenant)
{
    server::TenantTable tt({}, 8, 0, 0);
    EXPECT_EQ(tt.numTenants(), 1u);
    EXPECT_EQ(tt.name(0), "default");
    for (QueueId q = 0; q < 8; ++q)
        EXPECT_EQ(tt.tenantOfQueue(q), 0u);
    for (std::uint32_t f = 0; f < 64; ++f)
        EXPECT_EQ(tt.tenantOf(f), 0u);
    EXPECT_TRUE(tt.admit(0, 0));
    EXPECT_FALSE(tt.shouldShed(0, 1u << 20));
}

TEST(TenantTable, ClassifiesAndSteersIntoOwnGroup)
{
    server::TenantTable tt(
        {spec("v", 4, 1, 1e5, 0, 4), spec("a", 1, 0, 1e3, 4, 4)}, 8, 0,
        0);
    ASSERT_EQ(tt.numTenants(), 2u);
    for (std::uint32_t f = 0; f < 32; ++f)
        EXPECT_EQ(tt.tenantOf(f), f % 2);
    for (std::uint32_t i = 0; i < 200; ++i) {
        server::FlowKey key;
        key.srcPort = static_cast<std::uint16_t>(i);
        key.innerFlow = i;
        const QueueId q0 = tt.steer(key, 0);
        const QueueId q1 = tt.steer(key, 1);
        EXPECT_LT(q0, 4u);
        EXPECT_GE(q1, 4u);
        EXPECT_LT(q1, 8u);
    }
    EXPECT_EQ(tt.tenantOfQueue(0), 0u);
    EXPECT_EQ(tt.tenantOfQueue(7), 1u);
}

TEST(TenantTable, ShedThresholdsRankByPriority)
{
    server::TenantTable tt(
        {spec("gold", 1, 2, 1e4, 0, 2), spec("silver", 1, 1, 1e4, 2, 2),
         spec("bronze", 1, 0, 0.0, 4, 2)},
        6, 100, 300);
    // Lowest priority sheds first (threshold = low watermark), highest
    // last (threshold = high watermark).
    EXPECT_EQ(tt.shedThreshold(0), 300u);
    EXPECT_EQ(tt.shedThreshold(1), 200u);
    EXPECT_EQ(tt.shedThreshold(2), 100u);
    EXPECT_FALSE(tt.shouldShed(2, 99));
    EXPECT_TRUE(tt.shouldShed(2, 100));
    EXPECT_FALSE(tt.shouldShed(0, 299));
    EXPECT_TRUE(tt.shouldShed(0, 300));
}

TEST(TenantTable, WatermarkDisabledMeansNoShedding)
{
    server::TenantTable tt({spec("t", 1, 0, 0.0, 0, 4)}, 4, 0, 0);
    EXPECT_EQ(tt.shedThreshold(0), 0u);
    EXPECT_FALSE(tt.shouldShed(0, 1u << 30));
}

TEST(TenantTable, ThrowsOnMalformedSpecsAndWatermarks)
{
    EXPECT_THROW(server::TenantTable({spec("t", 0, 0, 0.0, 0, 4)}, 8, 0,
                                     0),
                 std::invalid_argument);
    EXPECT_THROW(server::TenantTable({spec("a", 1, 0, 0.0, 0, 8),
                                      spec("b", 1, 0, 0.0, 4, 4)},
                                     8, 0, 0),
                 std::invalid_argument);
    EXPECT_THROW(server::TenantTable({spec("t", 1, 1, 0.0, 0, 4)}, 8, 0,
                                     0),
                 std::invalid_argument);
    // Watermark shedding enabled but low watermark unset / inverted.
    EXPECT_THROW(server::TenantTable({}, 8, 0, 100),
                 std::invalid_argument);
    EXPECT_THROW(server::TenantTable({}, 8, 200, 100),
                 std::invalid_argument);
}

// --- Device-side storm muting ---

TEST(EmuMute, MutedRingKeepsAccountingButWakesNobody)
{
    emu::EmuHyperPlane hp(4);
    const auto qid = hp.addQueue();
    ASSERT_TRUE(qid.has_value());

    hp.setMuted(*qid, true);
    EXPECT_TRUE(hp.isMuted(*qid));
    hp.ring(*qid, 3);
    EXPECT_EQ(hp.pendingItems(*qid), 3u);
    EXPECT_EQ(hp.ringCalls(*qid), 1u);
    EXPECT_EQ(hp.mutedRings(), 1u);
    // The doorbell advertises work, but the ready set never armed.
    EXPECT_FALSE(hp.qwaitNonBlocking().has_value());
}

TEST(EmuMute, PollActivateServesAMutedQueue)
{
    emu::EmuHyperPlane hp(4);
    const auto qid = hp.addQueue();
    ASSERT_TRUE(qid.has_value());
    hp.setMuted(*qid, true);
    hp.ring(*qid, 2);

    EXPECT_TRUE(hp.pollActivate(*qid));
    const auto granted = hp.qwaitNonBlocking();
    ASSERT_TRUE(granted.has_value());
    EXPECT_EQ(*granted, *qid);
    EXPECT_EQ(hp.take(*qid, 16), 2u);
    // Nothing left: pollActivate refuses to arm an empty queue.
    EXPECT_FALSE(hp.pollActivate(*qid));
}

TEST(EmuMute, UnmuteReactivatesPendingWork)
{
    emu::EmuHyperPlane hp(4);
    const auto qid = hp.addQueue();
    ASSERT_TRUE(qid.has_value());
    hp.setMuted(*qid, true);
    hp.ring(*qid, 1);
    EXPECT_FALSE(hp.qwaitNonBlocking().has_value());

    hp.setMuted(*qid, false);
    const auto granted = hp.qwaitNonBlocking();
    ASSERT_TRUE(granted.has_value());
    EXPECT_EQ(*granted, *qid);
}

/**
 * The TSan target: concurrent per-tenant demand while a watchdog-style
 * sweeper demotes (mutes) a storming queue and promotes it back after
 * the storm ends.  Healthy traffic must be fully served throughout,
 * and every mute/poll/unmute crosses threads with the producers.
 */
TEST(StormContainment, WatchdogMutesAndPromotesUnderConcurrency)
{
    constexpr unsigned numQueues = 4;
    constexpr QueueId stormQ = 3;
    constexpr std::uint64_t healthyItems = 2000;
    constexpr std::uint64_t ringCap = 200; // rings per sweep

    emu::EmuHyperPlane hp(numQueues);
    for (unsigned q = 0; q < numQueues; ++q)
        ASSERT_TRUE(hp.addQueue().has_value());

    std::atomic<std::uint64_t> served[numQueues] = {};
    emu::DataPlanePool pool(
        hp, 2,
        [&](QueueId qid, std::uint64_t n) {
            served[qid].fetch_add(n, std::memory_order_relaxed);
        },
        16);
    pool.start();

    std::atomic<bool> storming{true};
    std::thread storm([&] {
        while (storming.load(std::memory_order_relaxed)) {
            hp.ring(stormQ, 0); // zero-item doorbell: pure wakeup
            std::this_thread::sleep_for(10us);
        }
    });

    std::vector<std::thread> producers;
    for (QueueId q = 0; q < numQueues - 1; ++q) {
        producers.emplace_back([&hp, q] {
            for (std::uint64_t i = 0; i < healthyItems; ++i) {
                hp.ring(q, 1);
                if (i % 64 == 0)
                    std::this_thread::sleep_for(100us);
            }
        });
    }

    std::atomic<bool> sweeping{true};
    std::atomic<unsigned> demotions{0};
    std::atomic<unsigned> promotions{0};
    std::thread sweeper([&] {
        std::uint64_t prev[numQueues] = {};
        unsigned clean[numQueues] = {};
        while (sweeping.load(std::memory_order_relaxed)) {
            std::this_thread::sleep_for(1ms);
            for (QueueId q = 0; q < numQueues; ++q) {
                const std::uint64_t rings = hp.ringCalls(q);
                const std::uint64_t delta = rings - prev[q];
                prev[q] = rings;
                if (hp.isMuted(q)) {
                    hp.pollActivate(q);
                    if (delta > ringCap) {
                        clean[q] = 0;
                    } else if (++clean[q] >= 3) {
                        hp.setMuted(q, false);
                        clean[q] = 0;
                        promotions.fetch_add(
                            1, std::memory_order_relaxed);
                    }
                } else if (delta > ringCap) {
                    hp.setMuted(q, true);
                    clean[q] = 0;
                    demotions.fetch_add(1, std::memory_order_relaxed);
                }
            }
        }
    });

    for (auto &t : producers)
        t.join();
    // Let the storm rage a little longer, then end it and give the
    // sweeper time to promote the queue back.
    std::this_thread::sleep_for(20ms);
    storming.store(false);
    storm.join();
    std::this_thread::sleep_for(30ms);

    EXPECT_TRUE(pool.drain(std::chrono::seconds(2)));
    sweeping.store(false);
    sweeper.join();

    for (QueueId q = 0; q < numQueues - 1; ++q) {
        EXPECT_EQ(served[q].load(), healthyItems) << "queue " << q;
    }
    EXPECT_GE(demotions.load(), 1u);
    EXPECT_GE(promotions.load(), 1u);
    EXPECT_GT(hp.mutedRings(), 0u);
}

// --- Loopback isolation (skips without sockets) ---

#define START_OR_SKIP(srv)                                             \
    do {                                                               \
        if (!(srv).start())                                            \
            GTEST_SKIP()                                               \
                << "UDP loopback sockets unavailable in this sandbox"; \
    } while (0)

server::ServerConfig
twoTenantConfig(double aggressorLimit)
{
    server::ServerConfig sc;
    sc.rxThreads = 1;
    sc.txThreads = 1;
    sc.workers = 2;
    sc.numQueues = 8;
    sc.policy = core::ServicePolicy::WeightedRoundRobin;
    sc.tenants = {spec("victim", 4, 1, 1e5, 0, 4),
                  spec("aggressor", 1, 0, aggressorLimit, 4, 4)};
    return sc;
}

server::LoadGenConfig
tenantLoad(const server::UdpServer &srv, unsigned tenantId, double rate,
           double seconds)
{
    server::LoadGenConfig lg;
    lg.serverPort = srv.port();
    lg.ratePerSec = rate;
    lg.durationSec = seconds;
    lg.numFlows = 32;
    lg.tenantId = tenantId;
    lg.numTenants = 2;
    lg.seed = 17 + tenantId;
    return lg;
}

TEST(ServerTenantLoopback, StartThrowsOnMalformedTenants)
{
    server::ServerConfig sc;
    sc.tenants = {spec("a", 1, 0, 0.0, 0, 8),
                  spec("b", 1, 0, 0.0, 4, 4)};
    sc.numQueues = 8;
    server::UdpServer srv(sc);
    // Tenant validation runs before any socket exists, so this throws
    // even in sandboxes where bind() is denied.
    EXPECT_THROW(srv.start(), std::invalid_argument);
}

TEST(ServerTenantLoopback, RateLimitedExcessIsShedNotLost)
{
    server::UdpServer srv(twoTenantConfig(1000.0));
    START_OR_SKIP(srv);

    auto report =
        server::UdpLoadGen(tenantLoad(srv, 1, 8000.0, 0.4)).run();
    ASSERT_TRUE(report.has_value());

    // The excess over the 1k/s admitted rate came back as typed
    // rejects: answered, not lost, and not an error status.
    EXPECT_GT(report->shed, 0u);
    EXPECT_EQ(report->badStatus, 0u);
    EXPECT_GT(report->answeredRatio, 0.99);
    EXPECT_LT(report->lost, report->sent / 20 + 1);

    const auto &tt = srv.tenantTable();
    EXPECT_GT(tt.counters(1).rateLimited.load(), 0u);
    EXPECT_GT(tt.counters(1).admitted.load(), 0u);
    EXPECT_EQ(tt.counters(0).admitted.load(), 0u);
    EXPECT_EQ(report->shed, tt.counters(1).shedTotal());
    EXPECT_TRUE(srv.stop());
}

TEST(ServerTenantLoopback, StormingTenantIsDemotedAndPromoted)
{
    server::ServerConfig sc = twoTenantConfig(2000.0);
    sc.fault.doorbellRateCap = 10;
    sc.fault.stormTenant = 1;
    sc.fault.stormRingsPerBatch = 32;
    sc.fault.watchdogPeriodUs = 500.0;
    sc.fault.promoteCleanSweeps = 4;
    server::UdpServer srv(sc);
    START_OR_SKIP(srv);

    auto victimRep =
        server::UdpLoadGen(tenantLoad(srv, 0, 2000.0, 0.3)).run();
    auto aggrRep =
        server::UdpLoadGen(tenantLoad(srv, 1, 8000.0, 0.3)).run();
    ASSERT_TRUE(victimRep.has_value());
    ASSERT_TRUE(aggrRep.has_value());

    // Post-storm quiet time: enough clean sweeps to promote back.
    std::this_thread::sleep_for(100ms);

    const auto &c = srv.counters();
    EXPECT_GE(c.stormDemotions.load(), 1u);
    EXPECT_GE(c.promotions.load(), 1u);
    EXPECT_GT(srv.device().mutedRings(), 0u);
    const auto &tt = srv.tenantTable();
    EXPECT_GE(tt.counters(1).demotions.load(), 1u);
    EXPECT_EQ(tt.counters(0).demotions.load(), 0u);

    // Containment is not loss: both tenants' admitted traffic was
    // answered.
    EXPECT_GT(victimRep->answeredRatio, 0.99);
    EXPECT_GT(aggrRep->answeredRatio, 0.99);
    EXPECT_TRUE(srv.stop());
}

TEST(ServerTenantLoopback, PerTenantStatsAreRegistered)
{
    server::UdpServer srv(twoTenantConfig(1000.0));
    START_OR_SKIP(srv);

    stats::Registry reg;
    srv.registerStats(reg);
    EXPECT_TRUE(reg.has("server.tenant.victim.admitted"));
    EXPECT_TRUE(reg.has("server.tenant.victim.served"));
    EXPECT_TRUE(reg.has("server.tenant.aggressor.rate_limited"));
    EXPECT_TRUE(reg.has("server.tenant.aggressor.demotions"));
    EXPECT_TRUE(reg.has("server.shed_rate_limited"));
    EXPECT_TRUE(reg.has("server.dev.muted_rings"));

    auto report =
        server::UdpLoadGen(tenantLoad(srv, 1, 6000.0, 0.2)).run();
    ASSERT_TRUE(report.has_value());
    EXPECT_GT(reg.value("server.tenant.aggressor.rate_limited"), 0.0);
    EXPECT_EQ(reg.value("server.tenant.victim.admitted"), 0.0);
    EXPECT_TRUE(srv.stop());
}

} // namespace
} // namespace hyperplane
