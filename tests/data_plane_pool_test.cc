/**
 * @file
 * Threading tests for the emu worker pool.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "emu/data_plane_pool.hh"

namespace hyperplane {
namespace emu {
namespace {

using namespace std::chrono_literals;

TEST(DataPlanePool, ProcessesEverythingAcrossWorkers)
{
    EmuHyperPlane hp(8);
    std::vector<QueueId> qids;
    for (int i = 0; i < 8; ++i)
        qids.push_back(*hp.addQueue());

    std::atomic<std::uint64_t> handled{0};
    DataPlanePool pool(hp, 3,
                       [&](QueueId, std::uint64_t n) { handled += n; });
    pool.start();
    EXPECT_TRUE(pool.running());
    EXPECT_EQ(pool.workers(), 3u);

    constexpr std::uint64_t perQueue = 3000;
    for (std::uint64_t i = 0; i < perQueue; ++i)
        for (QueueId q : qids)
            hp.ring(q);

    const auto deadline = std::chrono::steady_clock::now() + 5s;
    while (handled < perQueue * qids.size() &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(1ms);
    }
    pool.stop();
    EXPECT_EQ(handled.load(), perQueue * qids.size());
    EXPECT_EQ(pool.processed(), perQueue * qids.size());
    for (QueueId q : qids)
        EXPECT_EQ(hp.pendingItems(q), 0u);
}

TEST(DataPlanePool, StopIsPromptAndIdempotent)
{
    EmuHyperPlane hp(2);
    hp.addQueue();
    DataPlanePool pool(hp, 2, [](QueueId, std::uint64_t) {});
    pool.start();
    std::this_thread::sleep_for(10ms);
    const auto t0 = std::chrono::steady_clock::now();
    pool.stop();
    pool.stop();
    EXPECT_LT(std::chrono::steady_clock::now() - t0, 1s);
    EXPECT_FALSE(pool.running());
}

TEST(DataPlanePool, DestructorStopsWorkers)
{
    EmuHyperPlane hp(2);
    const auto q = hp.addQueue();
    {
        DataPlanePool pool(hp, 1, [](QueueId, std::uint64_t) {});
        pool.start();
        hp.ring(*q);
        std::this_thread::sleep_for(20ms);
    } // must join cleanly here
    SUCCEED();
}

TEST(DataPlanePool, HonorsBatchLimit)
{
    EmuHyperPlane hp(1);
    const auto q = hp.addQueue();
    std::atomic<std::uint64_t> maxSeen{0};
    DataPlanePool pool(
        hp, 1,
        [&](QueueId, std::uint64_t n) {
            std::uint64_t cur = maxSeen.load();
            while (n > cur && !maxSeen.compare_exchange_weak(cur, n)) {
            }
        },
        4);
    hp.ring(*q, 100);
    pool.start();
    const auto deadline = std::chrono::steady_clock::now() + 3s;
    while (pool.processed() < 100 &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(1ms);
    }
    pool.stop();
    EXPECT_EQ(pool.processed(), 100u);
    EXPECT_LE(maxSeen.load(), 4u);
}

TEST(DataPlanePool, DrainServesEverythingBeforeStopping)
{
    EmuHyperPlane hp(4);
    std::vector<QueueId> qids;
    for (int i = 0; i < 4; ++i)
        qids.push_back(*hp.addQueue());
    std::atomic<std::uint64_t> handled{0};
    DataPlanePool pool(hp, 2, [&](QueueId, std::uint64_t n) {
        std::this_thread::sleep_for(100us); // slow handler
        handled += n;
    });
    pool.start();
    constexpr std::uint64_t total = 400;
    for (std::uint64_t i = 0; i < total; ++i)
        hp.ring(qids[i % qids.size()]);

    // Drain must keep serving until the doorbells read zero, not just
    // until in-flight batches finish.
    EXPECT_TRUE(pool.drain(10s));
    EXPECT_EQ(handled.load(), total);
    EXPECT_EQ(hp.totalPending(), 0u);
    EXPECT_FALSE(pool.running());
}

TEST(DataPlanePool, DrainDeadlineExpiresOnUnserveableBacklog)
{
    EmuHyperPlane hp(2);
    const auto q = hp.addQueue();
    DataPlanePool pool(hp, 1, [](QueueId, std::uint64_t) {
        std::this_thread::sleep_for(50ms); // pathological handler
    });
    pool.start();
    hp.ring(*q, 1000000);
    EXPECT_FALSE(pool.drain(50ms));
    EXPECT_FALSE(pool.running());
}

TEST(DataPlanePool, NoHandlerRunsAfterStopReturns)
{
    EmuHyperPlane hp(2);
    const auto q = hp.addQueue();
    std::atomic<bool> stopped{false};
    std::atomic<bool> ranAfterStop{false};
    DataPlanePool pool(hp, 3, [&](QueueId, std::uint64_t) {
        if (stopped.load())
            ranAfterStop = true;
        std::this_thread::sleep_for(100us);
    });
    pool.start();
    std::thread producer([&] {
        for (int i = 0; i < 2000 && !stopped.load(); ++i) {
            hp.ring(*q);
            std::this_thread::sleep_for(10us);
        }
    });
    std::this_thread::sleep_for(20ms);
    pool.stop();
    stopped.store(true); // workers are joined; nothing may run now
    producer.join();
    std::this_thread::sleep_for(20ms);
    EXPECT_FALSE(ranAfterStop.load());
}

TEST(DataPlanePool, WorkerIndexIdentifiesPoolThreads)
{
    EmuHyperPlane hp(2);
    const auto q = hp.addQueue();
    std::atomic<int> seen{-2};
    DataPlanePool pool(hp, 2, [&](QueueId, std::uint64_t) {
        seen = DataPlanePool::workerIndex();
    });
    pool.start();
    hp.ring(*q);
    const auto deadline = std::chrono::steady_clock::now() + 3s;
    while (seen.load() == -2 &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(1ms);
    }
    pool.stop();
    const int idx = seen.load();
    EXPECT_GE(idx, 0);
    EXPECT_LT(idx, 2);
    // A non-pool thread (this one) is not a worker.
    EXPECT_EQ(DataPlanePool::workerIndex(), -1);
}

} // namespace
} // namespace emu
} // namespace hyperplane
