/**
 * @file
 * Unit tests for the SMT co-runner interference model (Figure 11b).
 */

#include <gtest/gtest.h>

#include "dp/smt_corunner.hh"

namespace hyperplane {
namespace dp {
namespace {

TEST(SmtCoRunner, IdleSiblingLeavesSoloIpc)
{
    SmtCoRunner smt;
    EXPECT_DOUBLE_EQ(smt.coRunnerIpc(0.0, 0.0), smt.params().soloIpc);
    EXPECT_DOUBLE_EQ(smt.coRunnerIpc(0.0, 3.0), smt.params().soloIpc);
}

TEST(SmtCoRunner, SpinningSiblingIsWorstAntagonist)
{
    // The paper's observation: a full-tilt spinning thread hurts the
    // co-runner more than a thread doing actual (memory-stalled) work.
    SmtCoRunner smt;
    const double underSpin = smt.coRunnerIpc(1.0, 2.8); // idle spin
    const double underWork = smt.coRunnerIpc(1.0, 1.1); // real work
    EXPECT_LT(underSpin, underWork);
    EXPECT_LT(underWork, smt.params().soloIpc);
}

TEST(SmtCoRunner, HyperPlaneCoRunnerIpcFallsWithLoad)
{
    // With HyperPlane the DP thread is active roughly `load` of the
    // time, so the co-runner degrades as load grows.
    SmtCoRunner smt;
    double prev = smt.params().soloIpc + 1;
    for (double load : {0.0, 0.25, 0.5, 0.75, 1.0}) {
        const double ipc = smt.coRunnerIpc(load, 1.1);
        EXPECT_LT(ipc, prev);
        prev = ipc;
    }
}

TEST(SmtCoRunner, SpinningCoRunnerIpcRisesWithLoad)
{
    // With spinning, activity is always 1.0 but the DP IPC *drops* as
    // load rises (misses replace spinning), freeing issue slots.
    SmtCoRunner smt;
    const double atIdle = smt.coRunnerIpc(1.0, 2.8);
    const double atSat = smt.coRunnerIpc(1.0, 1.1);
    EXPECT_GT(atSat, atIdle);
}

TEST(SmtCoRunner, InputsClamped)
{
    SmtCoRunner smt;
    EXPECT_DOUBLE_EQ(smt.coRunnerIpc(-1.0, 1.0),
                     smt.coRunnerIpc(0.0, 1.0));
    EXPECT_DOUBLE_EQ(smt.coRunnerIpc(2.0, 1.0),
                     smt.coRunnerIpc(1.0, 1.0));
    EXPECT_DOUBLE_EQ(smt.coRunnerIpc(1.0, 99.0),
                     smt.coRunnerIpc(1.0, smt.params().ipcPeak));
}

TEST(SmtCoRunner, CustomParamsRespected)
{
    SmtParams p;
    p.soloIpc = 1.0;
    p.contention = 0.5;
    p.ipcPeak = 2.0;
    SmtCoRunner smt(p);
    EXPECT_DOUBLE_EQ(smt.coRunnerIpc(1.0, 2.0), 0.5);
}

} // namespace
} // namespace dp
} // namespace hyperplane
