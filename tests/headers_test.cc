/**
 * @file
 * Unit tests for protocol header codecs and GRE encapsulation.
 */

#include <gtest/gtest.h>

#include "net/checksum.hh"
#include "net/headers.hh"
#include "sim/rng.hh"

namespace hyperplane {
namespace net {
namespace {

TEST(BigEndian, RoundTrip16And32)
{
    std::uint8_t buf[4];
    putBe16(buf, 0xbeef);
    EXPECT_EQ(buf[0], 0xbe);
    EXPECT_EQ(buf[1], 0xef);
    EXPECT_EQ(getBe16(buf), 0xbeef);
    putBe32(buf, 0x12345678);
    EXPECT_EQ(getBe32(buf), 0x12345678u);
}

TEST(Ethernet, RoundTrip)
{
    EthernetHeader h;
    h.dst = {1, 2, 3, 4, 5, 6};
    h.src = {7, 8, 9, 10, 11, 12};
    h.etherType = etherTypeIpv6;
    std::uint8_t wire[EthernetHeader::wireSize];
    h.write(wire);
    const auto p = EthernetHeader::parse(wire);
    EXPECT_EQ(p.dst, h.dst);
    EXPECT_EQ(p.src, h.src);
    EXPECT_EQ(p.etherType, h.etherType);
}

Ipv4Header
sampleV4()
{
    Ipv4Header h;
    h.dscp = 10;
    h.totalLength = 1500;
    h.identification = 0x4242;
    h.ttl = 17;
    h.protocol = protoUdp;
    h.src = 0x0a000001;
    h.dst = 0xc0a80101;
    return h;
}

TEST(Ipv4, RoundTripWithValidChecksum)
{
    const Ipv4Header h = sampleV4();
    std::uint8_t wire[Ipv4Header::wireSize];
    h.write(wire);
    EXPECT_EQ(internetChecksum(wire, sizeof(wire)), 0);
    const auto p = Ipv4Header::parse(wire);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->dscp, h.dscp);
    EXPECT_EQ(p->totalLength, h.totalLength);
    EXPECT_EQ(p->identification, h.identification);
    EXPECT_EQ(p->ttl, h.ttl);
    EXPECT_EQ(p->protocol, h.protocol);
    EXPECT_EQ(p->src, h.src);
    EXPECT_EQ(p->dst, h.dst);
}

TEST(Ipv4, CorruptChecksumRejected)
{
    std::uint8_t wire[Ipv4Header::wireSize];
    sampleV4().write(wire);
    wire[15] ^= 0x01;
    EXPECT_FALSE(Ipv4Header::parse(wire).has_value());
}

TEST(Ipv4, WrongVersionRejected)
{
    std::uint8_t wire[Ipv4Header::wireSize];
    sampleV4().write(wire);
    wire[0] = 0x65; // version 6
    EXPECT_FALSE(Ipv4Header::parse(wire).has_value());
}

Ipv6Header
sampleV6()
{
    Ipv6Header h;
    h.trafficClass = 0x5a;
    h.flowLabel = 0xabcde;
    h.payloadLength = 512;
    h.nextHeader = protoGre;
    h.hopLimit = 33;
    for (int i = 0; i < 16; ++i) {
        h.src[i] = static_cast<std::uint8_t>(i);
        h.dst[i] = static_cast<std::uint8_t>(0xf0 + i);
    }
    return h;
}

TEST(Ipv6, RoundTrip)
{
    const Ipv6Header h = sampleV6();
    std::uint8_t wire[Ipv6Header::wireSize];
    h.write(wire);
    const auto p = Ipv6Header::parse(wire);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->trafficClass, h.trafficClass);
    EXPECT_EQ(p->flowLabel, h.flowLabel);
    EXPECT_EQ(p->payloadLength, h.payloadLength);
    EXPECT_EQ(p->nextHeader, h.nextHeader);
    EXPECT_EQ(p->hopLimit, h.hopLimit);
    EXPECT_EQ(p->src, h.src);
    EXPECT_EQ(p->dst, h.dst);
}

TEST(Ipv6, WrongVersionRejected)
{
    std::uint8_t wire[Ipv6Header::wireSize];
    sampleV6().write(wire);
    wire[0] = 0x45;
    EXPECT_FALSE(Ipv6Header::parse(wire).has_value());
}

TEST(Udp, RoundTrip)
{
    UdpHeader h;
    h.srcPort = 4242;
    h.dstPort = 53;
    h.length = 100;
    h.checksum = 0xbeef;
    std::uint8_t wire[UdpHeader::wireSize];
    h.write(wire);
    const auto p = UdpHeader::parse(wire);
    EXPECT_EQ(p.srcPort, h.srcPort);
    EXPECT_EQ(p.dstPort, h.dstPort);
    EXPECT_EQ(p.length, h.length);
    EXPECT_EQ(p.checksum, h.checksum);
}

TEST(Gre, WireSizeDependsOnFlags)
{
    GreHeader h;
    EXPECT_EQ(h.wireSize(), 4u);
    h.checksumPresent = true;
    EXPECT_EQ(h.wireSize(), 8u);
    h.keyPresent = true;
    EXPECT_EQ(h.wireSize(), 12u);
}

TEST(Gre, RoundTripWithKey)
{
    GreHeader h;
    h.keyPresent = true;
    h.protocolType = etherTypeIpv4;
    h.key = 0xfeedbead;
    std::uint8_t wire[12];
    h.write(wire);
    const auto p = GreHeader::parse(wire, sizeof(wire));
    ASSERT_TRUE(p.has_value());
    EXPECT_TRUE(p->keyPresent);
    EXPECT_FALSE(p->checksumPresent);
    EXPECT_EQ(p->key, 0xfeedbeadu);
    EXPECT_EQ(p->protocolType, etherTypeIpv4);
}

TEST(Gre, ReservedFlagBitsRejected)
{
    std::uint8_t wire[4] = {0x40, 0x00, 0x08, 0x00}; // routing bit set
    EXPECT_FALSE(GreHeader::parse(wire, 4).has_value());
}

TEST(Gre, NonZeroVersionRejected)
{
    std::uint8_t wire[4] = {0x00, 0x01, 0x08, 0x00};
    EXPECT_FALSE(GreHeader::parse(wire, 4).has_value());
}

TEST(Gre, TruncatedHeaderRejected)
{
    std::uint8_t wire[4] = {0xa0, 0x00, 0x08, 0x00}; // csum+key => 12 B
    EXPECT_FALSE(GreHeader::parse(wire, 4).has_value());
}

PacketBuffer
makeInnerPacket(std::size_t payload)
{
    PacketBuffer pkt(Ipv4Header::wireSize + payload);
    Ipv4Header inner = sampleV4();
    inner.totalLength =
        static_cast<std::uint16_t>(Ipv4Header::wireSize + payload);
    inner.write(pkt.data());
    for (std::size_t i = 0; i < payload; ++i)
        pkt[Ipv4Header::wireSize + i] =
            static_cast<std::uint8_t>(i * 13 + 7);
    return pkt;
}

TEST(GreTunnel, EncapsulateDecapsulateRoundTrip)
{
    PacketBuffer pkt = makeInnerPacket(256);
    const PacketBuffer original = pkt;

    Ipv6Header outer = sampleV6();
    ASSERT_TRUE(greEncapsulate(pkt, outer, 0x1234));
    EXPECT_EQ(pkt.size(), original.size() + Ipv6Header::wireSize + 12);

    // The outer header must be valid IPv6 carrying GRE.
    const auto v6 = Ipv6Header::parse(pkt.data());
    ASSERT_TRUE(v6.has_value());
    EXPECT_EQ(v6->nextHeader, protoGre);
    EXPECT_EQ(v6->payloadLength, original.size() + 12);

    const auto key = greDecapsulate(pkt);
    ASSERT_TRUE(key.has_value());
    EXPECT_EQ(*key, 0x1234u);
    EXPECT_TRUE(pkt == original);
}

TEST(GreTunnel, EncapsulateRejectsNonIpv4Payload)
{
    PacketBuffer garbage(64);
    garbage[0] = 0x00; // not version 4
    Ipv6Header outer = sampleV6();
    EXPECT_FALSE(greEncapsulate(garbage, outer, 1));
}

TEST(GreTunnel, EncapsulateRejectsTruncatedPacket)
{
    PacketBuffer tiny(4);
    Ipv6Header outer = sampleV6();
    EXPECT_FALSE(greEncapsulate(tiny, outer, 1));
}

TEST(GreTunnel, DecapsulateDetectsPayloadCorruption)
{
    PacketBuffer pkt = makeInnerPacket(64);
    Ipv6Header outer = sampleV6();
    ASSERT_TRUE(greEncapsulate(pkt, outer, 7));
    // Flip a payload byte under the GRE checksum.
    pkt[pkt.size() - 1] ^= 0xff;
    EXPECT_FALSE(greDecapsulate(pkt).has_value());
}

TEST(GreTunnel, DecapsulateRejectsNonGre)
{
    PacketBuffer pkt(Ipv6Header::wireSize + 8);
    Ipv6Header outer = sampleV6();
    outer.nextHeader = protoUdp;
    outer.write(pkt.data());
    EXPECT_FALSE(greDecapsulate(pkt).has_value());
}

class GrePayloadSweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(GrePayloadSweep, RoundTripsAtAllSizes)
{
    PacketBuffer pkt = makeInnerPacket(GetParam());
    const PacketBuffer original = pkt;
    ASSERT_TRUE(greEncapsulate(pkt, sampleV6(), 99));
    const auto key = greDecapsulate(pkt);
    ASSERT_TRUE(key.has_value());
    EXPECT_EQ(*key, 99u);
    EXPECT_TRUE(pkt == original);
}

INSTANTIATE_TEST_SUITE_P(Sizes, GrePayloadSweep,
                         ::testing::Values(0, 1, 63, 64, 65, 512, 1480));

TEST(HeaderFuzz, Ipv4RandomFieldsRoundTrip)
{
    Rng rng(0x49707634);
    for (int iter = 0; iter < 500; ++iter) {
        Ipv4Header h;
        h.dscp = static_cast<std::uint8_t>(rng.next() & 0x3f);
        h.totalLength = static_cast<std::uint16_t>(rng.next());
        h.identification = static_cast<std::uint16_t>(rng.next());
        h.ttl = static_cast<std::uint8_t>(rng.next());
        h.protocol = static_cast<std::uint8_t>(rng.next());
        h.src = static_cast<std::uint32_t>(rng.next());
        h.dst = static_cast<std::uint32_t>(rng.next());
        std::uint8_t wire[Ipv4Header::wireSize];
        h.write(wire);
        const auto p = Ipv4Header::parse(wire);
        ASSERT_TRUE(p.has_value());
        EXPECT_EQ(p->dscp, h.dscp);
        EXPECT_EQ(p->totalLength, h.totalLength);
        EXPECT_EQ(p->identification, h.identification);
        EXPECT_EQ(p->ttl, h.ttl);
        EXPECT_EQ(p->protocol, h.protocol);
        EXPECT_EQ(p->src, h.src);
        EXPECT_EQ(p->dst, h.dst);
    }
}

TEST(HeaderFuzz, Ipv4SingleBitFlipAlwaysRejected)
{
    // Any single-bit corruption must trip the header checksum: the
    // internet checksum detects all 1-bit errors.
    Rng rng(0xbadc0de);
    for (int iter = 0; iter < 500; ++iter) {
        const Ipv4Header h = sampleV4();
        std::uint8_t wire[Ipv4Header::wireSize];
        h.write(wire);
        const std::size_t byte = rng.uniformInt(sizeof(wire));
        const std::uint8_t bit = 1u << rng.uniformInt(8);
        // Version-nibble flips are rejected for the version, the rest
        // for the checksum; either way the parse must fail closed.
        wire[byte] ^= bit;
        EXPECT_FALSE(Ipv4Header::parse(wire).has_value())
            << "byte " << byte << " bit " << int(bit);
    }
}

TEST(HeaderFuzz, GreRandomBytesNeverCrashAndRejectReserved)
{
    // Throw random byte strings at the GRE parser: it must never read
    // out of bounds (ASan-checked) and must reject anything with
    // reserved flag bits or a nonzero version.
    Rng rng(0x67726521);
    for (int iter = 0; iter < 2000; ++iter) {
        std::uint8_t wire[16];
        for (auto &b : wire)
            b = static_cast<std::uint8_t>(rng.next());
        const std::size_t len = rng.uniformInt(sizeof(wire) + 1);
        const auto p = GreHeader::parse(wire, len);
        if (!p)
            continue;
        // Accepted headers must re-serialize to the same flag word.
        EXPECT_GE(len, p->wireSize());
        EXPECT_EQ(wire[0] & 0x5f, 0); // reserved bits clear
        EXPECT_EQ(wire[1] & 0x07, 0); // version == 0
    }
}

TEST(HeaderFuzz, TruncatedGrePacketsFailClosed)
{
    // Valid encapsulated packets truncated to every possible length
    // must decapsulate to nullopt, never crash.
    PacketBuffer full = makeInnerPacket(64);
    ASSERT_TRUE(greEncapsulate(full, sampleV6(), 7));
    for (std::size_t len = 0; len < full.size(); ++len) {
        PacketBuffer cut(full.data(), len);
        EXPECT_FALSE(greDecapsulate(cut).has_value()) << "len " << len;
    }
}

} // namespace
} // namespace net
} // namespace hyperplane
