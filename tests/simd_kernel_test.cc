/**
 * @file
 * Differential tests for the SIMD kernel layer: every variant the build
 * compiled and the host supports must be bit-identical to the scalar
 * reference — raw partial sums included, not just finished values —
 * over randomized lengths, alignments, and seeds.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "net/checksum.hh"
#include "net/simd/dispatch.hh"

namespace hyperplane {
namespace net {
namespace {

/** Deterministic fill with all byte values represented. */
std::vector<std::uint8_t>
randomBytes(std::mt19937 &rng, std::size_t n)
{
    std::vector<std::uint8_t> v(n);
    for (auto &b : v)
        b = static_cast<std::uint8_t>(rng());
    return v;
}

TEST(SimdDispatch, TableIsPopulated)
{
    const simd::KernelTable &k = simd::kernels();
    ASSERT_NE(k.checksumPartial, nullptr);
    ASSERT_NE(k.crc32c, nullptr);
    ASSERT_NE(k.headerCheck, nullptr);
    EXPECT_GE(k.checksumLevel, 0);
    EXPECT_LE(k.checksumLevel, 2);
}

TEST(SimdDispatch, ScalarTableIsScalar)
{
    const simd::KernelTable &s = simd::scalarKernels();
    EXPECT_STREQ(s.checksumName, "scalar");
    EXPECT_STREQ(s.crc32cName, "scalar");
    EXPECT_STREQ(s.headerCheckName, "scalar");
    EXPECT_EQ(s.checksumLevel, 0);
    EXPECT_EQ(s.crc32cLevel, 0);
    EXPECT_EQ(s.headerCheckLevel, 0);
}

TEST(SimdDispatch, ForceScalarEnvPinsTheTable)
{
    // Snapshot, force, refresh, verify, restore, refresh.  Not run
    // concurrently with hot-path traffic (single-threaded test binary).
    const char *old = std::getenv("HYPERPLANE_FORCE_SCALAR");
    const std::string saved = old ? old : "";
    ::setenv("HYPERPLANE_FORCE_SCALAR", "1", 1);
    simd::refreshDispatch();
    EXPECT_TRUE(simd::kernels().forcedScalar);
    EXPECT_EQ(simd::kernels().checksumLevel, 0);
    EXPECT_STREQ(simd::kernels().checksumName, "scalar");
    if (old)
        ::setenv("HYPERPLANE_FORCE_SCALAR", saved.c_str(), 1);
    else
        ::unsetenv("HYPERPLANE_FORCE_SCALAR");
    simd::refreshDispatch();
    // "0" and unset both mean no forcing.
    if (!old || saved == "0")
        EXPECT_FALSE(simd::kernels().forcedScalar);
}

TEST(SimdChecksum, VariantsMatchScalarRawSums)
{
    // The strong property: raw partial sums are bit-identical for every
    // (length, offset, initial sum), so chains mix variants freely.
    const simd::ChecksumPartialFn scalar =
        simd::scalarKernels().checksumPartial;
    const simd::ChecksumPartialFn variants[] = {
        simd::kernels().checksumPartial,
        simd::checksumPartialSse2(),
        simd::checksumPartialAvx2(),
    };
    std::mt19937 rng(0xc0ffee);
    const auto buf = randomBytes(rng, 4096 + 64);
    for (int iter = 0; iter < 3000; ++iter) {
        const std::size_t off = rng() % 64;
        const std::size_t len = rng() % 4096;
        const std::uint32_t init = rng();
        const std::uint32_t want = scalar(buf.data() + off, len, init);
        for (const auto fn : variants) {
            if (!fn)
                continue;
            ASSERT_EQ(fn(buf.data() + off, len, init), want)
                << "len=" << len << " off=" << off << " init=" << init;
        }
    }
}

TEST(SimdChecksum, DispatchedFinishedValueMatchesReference)
{
    // End-to-end through the public API (whatever variant dispatched).
    std::mt19937 rng(0xfeed);
    for (int iter = 0; iter < 200; ++iter) {
        const std::size_t len = rng() % 1500;
        const auto buf = randomBytes(rng, len + 1);
        std::uint64_t sum = 0;
        for (std::size_t i = 0; i < len; i += 2) {
            const std::uint32_t hi = buf[i];
            const std::uint32_t lo = i + 1 < len ? buf[i + 1] : 0;
            sum += (hi << 8) | lo;
        }
        while (sum >> 16)
            sum = (sum & 0xffff) + (sum >> 16);
        EXPECT_EQ(internetChecksum(buf.data(), len),
                  static_cast<std::uint16_t>(~sum & 0xffff))
            << "len=" << len;
    }
}

TEST(SimdCrc32c, VariantsMatchScalar)
{
    const simd::Crc32cFn scalar = simd::scalarKernels().crc32c;
    const simd::Crc32cFn hw = simd::crc32cSse42();
    std::mt19937 rng(0xdead);
    const auto buf = randomBytes(rng, 2048 + 32);
    for (int iter = 0; iter < 2000; ++iter) {
        const std::size_t off = rng() % 32;
        const std::size_t len = rng() % 2048;
        const std::uint32_t seed = rng();
        const std::uint32_t want = scalar(buf.data() + off, len, seed);
        ASSERT_EQ(simd::kernels().crc32c(buf.data() + off, len, seed),
                  want);
        if (hw)
            ASSERT_EQ(hw(buf.data() + off, len, seed), want)
                << "len=" << len << " off=" << off;
    }
}

TEST(SimdCrc32c, StandardCheckStringOnEveryVariant)
{
    const std::string s = "123456789";
    const auto *p = reinterpret_cast<const std::uint8_t *>(s.data());
    EXPECT_EQ(simd::scalarKernels().crc32c(p, s.size(), 0), 0xe3069283u);
    EXPECT_EQ(simd::kernels().crc32c(p, s.size(), 0), 0xe3069283u);
    if (const auto hw = simd::crc32cSse42())
        EXPECT_EQ(hw(p, s.size(), 0), 0xe3069283u);
}

TEST(SimdChecksum, SplicedMatchesTwoCallPattern)
{
    // checksumSpliced(data, len, holeOff) == the partial/partial chain
    // skipping the 2-byte hole, for every even hole offset.
    std::mt19937 rng(0xbeef);
    for (int iter = 0; iter < 100; ++iter) {
        const std::size_t len = 2 * (2 + rng() % 700); // even, >= 4
        const auto buf = randomBytes(rng, len);
        const std::size_t hole = 2 * (rng() % (len / 2 - 1));
        std::uint32_t sum = checksumPartial(buf.data(), hole, 0);
        sum = checksumPartial(buf.data() + hole + 2, len - hole - 2,
                              sum);
        EXPECT_EQ(checksumSpliced(buf.data(), len, hole),
                  finishChecksum(sum))
            << "len=" << len << " hole=" << hole;
    }
}

/** Scalar model of the header-check contract. */
void
referenceHeaderCheck(const std::uint8_t *const *pkts,
                     const std::uint32_t *lens, std::size_t n,
                     const std::uint8_t *prefix,
                     std::uint8_t opcodeLimit, std::uint32_t minLen,
                     std::uint8_t *ok)
{
    for (std::size_t i = 0; i < n; ++i) {
        ok[i] = lens[i] >= minLen &&
                std::memcmp(pkts[i], prefix, 5) == 0 &&
                pkts[i][5] < opcodeLimit;
    }
}

TEST(SimdHeaderCheck, VariantsMatchReference)
{
    const std::uint8_t prefix[8] = {'H', 'P', 'R', 'Q', 1, 0, 0, 0};
    std::mt19937 rng(0xabcd);
    const simd::HeaderCheckFn variants[] = {
        simd::scalarKernels().headerCheck,
        simd::kernels().headerCheck,
        simd::headerCheckSse2(),
        simd::headerCheckAvx2(),
    };
    for (int iter = 0; iter < 300; ++iter) {
        const std::size_t n = 1 + rng() % 37;
        std::vector<std::vector<std::uint8_t>> storage(n);
        std::vector<const std::uint8_t *> pkts(n);
        std::vector<std::uint32_t> lens(n);
        for (std::size_t i = 0; i < n; ++i) {
            storage[i] = randomBytes(rng, 64);
            // Bias toward near-valid packets so both branches exercise.
            if (rng() % 2) {
                std::memcpy(storage[i].data(), prefix, 5);
                storage[i][5] = static_cast<std::uint8_t>(rng() % 5);
            }
            pkts[i] = storage[i].data();
            lens[i] = 8 + rng() % 56;
            if (rng() % 8 == 0)
                lens[i] = rng() % 8; // under minLen
        }
        std::vector<std::uint8_t> want(n), got(n);
        referenceHeaderCheck(pkts.data(), lens.data(), n, prefix, 3, 32,
                             want.data());
        for (const auto fn : variants) {
            if (!fn)
                continue;
            std::fill(got.begin(), got.end(), 0xcc);
            fn(pkts.data(), lens.data(), n, prefix, 3, 32, got.data());
            for (std::size_t i = 0; i < n; ++i)
                ASSERT_EQ(got[i] != 0, want[i] != 0)
                    << "iter=" << iter << " pkt=" << i;
        }
    }
}

} // namespace
} // namespace net
} // namespace hyperplane
