/**
 * @file
 * Unit tests for the set-associative cache tag array.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"

namespace hyperplane {
namespace mem {
namespace {

CacheGeometry
smallGeom()
{
    // 8 sets x 2 ways x 64 B = 1 KiB.
    return CacheGeometry{1024, 2, 64};
}

TEST(CacheArray, StartsEmpty)
{
    CacheArray c(smallGeom());
    EXPECT_EQ(c.residentLines(), 0u);
    EXPECT_EQ(c.state(0x1000), LineState::Invalid);
    EXPECT_FALSE(c.contains(0x1000));
}

TEST(CacheArray, GeometryDerivesSets)
{
    EXPECT_EQ(smallGeom().sets(), 8u);
    CacheArray c(smallGeom());
    EXPECT_EQ(c.capacityLines(), 16u);
}

TEST(CacheArray, InsertThenHit)
{
    CacheArray c(smallGeom());
    c.insert(0x1000, LineState::Exclusive);
    EXPECT_TRUE(c.contains(0x1000));
    EXPECT_EQ(c.state(0x1000), LineState::Exclusive);
    EXPECT_EQ(c.residentLines(), 1u);
}

TEST(CacheArray, SubLineAddressesAlias)
{
    CacheArray c(smallGeom());
    c.insert(0x1000, LineState::Shared);
    EXPECT_TRUE(c.contains(0x1004));
    EXPECT_TRUE(c.contains(0x103f));
    EXPECT_FALSE(c.contains(0x1040));
}

TEST(CacheArray, LruEvictionWithinSet)
{
    CacheArray c(smallGeom());
    // Three lines mapping to the same set (stride = sets * lineBytes).
    const Addr a = 0x0000, b = a + 8 * 64, d = a + 16 * 64;
    c.insert(a, LineState::Shared);
    c.insert(b, LineState::Shared);
    c.touch(a); // b is now LRU
    const auto victim = c.insert(d, LineState::Shared);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->first, b);
    EXPECT_TRUE(c.contains(a));
    EXPECT_FALSE(c.contains(b));
    EXPECT_TRUE(c.contains(d));
}

TEST(CacheArray, InsertExistingUpdatesStateWithoutEviction)
{
    CacheArray c(smallGeom());
    c.insert(0x1000, LineState::Shared);
    const auto victim = c.insert(0x1000, LineState::Modified);
    EXPECT_FALSE(victim.has_value());
    EXPECT_EQ(c.state(0x1000), LineState::Modified);
    EXPECT_EQ(c.residentLines(), 1u);
}

TEST(CacheArray, InvalidateRemovesAndReportsPriorState)
{
    CacheArray c(smallGeom());
    c.insert(0x1000, LineState::Modified);
    EXPECT_EQ(c.invalidate(0x1000), LineState::Modified);
    EXPECT_FALSE(c.contains(0x1000));
    EXPECT_EQ(c.invalidate(0x1000), LineState::Invalid);
    EXPECT_EQ(c.residentLines(), 0u);
}

TEST(CacheArray, SetStateChangesState)
{
    CacheArray c(smallGeom());
    c.insert(0x1000, LineState::Exclusive);
    c.setState(0x1000, LineState::Shared);
    EXPECT_EQ(c.state(0x1000), LineState::Shared);
}

TEST(CacheArray, EvictionCounterAdvances)
{
    CacheArray c(smallGeom());
    const Addr stride = 8 * 64;
    for (int i = 0; i < 5; ++i)
        c.insert(i * stride, LineState::Shared);
    EXPECT_EQ(c.evictions.value(), 3u); // 2 ways, 5 inserts same set
}

TEST(CacheArray, CapacityNeverExceeded)
{
    CacheArray c(smallGeom());
    for (Addr a = 0; a < 64 * 1024; a += 64)
        c.insert(a, LineState::Shared);
    EXPECT_LE(c.residentLines(), c.capacityLines());
    EXPECT_EQ(c.residentLines(), c.capacityLines());
}

TEST(CacheArray, FlushEmptiesEverything)
{
    CacheArray c(smallGeom());
    for (Addr a = 0; a < 512; a += 64)
        c.insert(a, LineState::Shared);
    c.flush();
    EXPECT_EQ(c.residentLines(), 0u);
    for (Addr a = 0; a < 512; a += 64)
        EXPECT_FALSE(c.contains(a));
}

/** Property sweep: different geometries keep the invariant resident <=
 *  capacity and find what they inserted most recently. */
class CacheGeometrySweep
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>>
{
};

TEST_P(CacheGeometrySweep, RecentInsertsAreResident)
{
    const auto [sizeKb, ways] = GetParam();
    CacheArray c(CacheGeometry{sizeKb * 1024ull, ways, 64});
    const unsigned keep = ways; // one set's worth, same set
    const Addr stride = c.geometry().sets() * 64;
    for (unsigned i = 0; i < keep * 3; ++i)
        c.insert(i * stride, LineState::Shared);
    // The last `ways` inserts into the set must all be resident.
    for (unsigned i = keep * 3 - ways; i < keep * 3; ++i)
        EXPECT_TRUE(c.contains(i * stride));
    EXPECT_LE(c.residentLines(), c.capacityLines());
}

INSTANTIATE_TEST_SUITE_P(Geometries, CacheGeometrySweep,
                         ::testing::Values(std::make_pair(1u, 2u),
                                           std::make_pair(4u, 4u),
                                           std::make_pair(32u, 4u),
                                           std::make_pair(64u, 8u),
                                           std::make_pair(256u, 16u)));

TEST(CacheArrayLookup, MissYieldsFalseHandle)
{
    CacheArray c(smallGeom());
    CacheArray::WayRef way = c.lookup(0x1000);
    EXPECT_FALSE(way);
    EXPECT_EQ(way.state(), LineState::Invalid);
}

TEST(CacheArrayLookup, HitHandleReadsAndMutatesInPlace)
{
    CacheArray c(smallGeom());
    c.insert(0x1000, LineState::Exclusive);
    CacheArray::WayRef way = c.lookup(0x1000);
    ASSERT_TRUE(way);
    EXPECT_EQ(way.state(), LineState::Exclusive);
    way.setState(LineState::Modified);
    EXPECT_EQ(c.state(0x1000), LineState::Modified);
}

TEST(CacheArrayLookup, TouchThroughHandleProtectsFromEviction)
{
    // Two-way set: insert A then B, touch A through a handle, insert a
    // conflicting C -- LRU must evict B, not A.
    CacheArray c(smallGeom());
    const Addr stride = c.geometry().sets() * 64;
    c.insert(0, LineState::Shared);          // A
    c.insert(stride, LineState::Shared);     // B (A now LRU)
    c.lookup(0).touch();                     // A becomes MRU
    c.insert(2 * stride, LineState::Shared); // C evicts LRU
    EXPECT_TRUE(c.contains(0));
    EXPECT_FALSE(c.contains(stride));
}

TEST(CacheArrayLookup, LookupMatchesLegacyQueries)
{
    CacheArray c(smallGeom());
    c.insert(0x2000, LineState::Shared);
    for (const Addr a : {Addr{0x1000}, Addr{0x2000}, Addr{0x2040}}) {
        CacheArray::WayRef way = c.lookup(a);
        EXPECT_EQ(static_cast<bool>(way), c.contains(a));
        EXPECT_EQ(way.state(), c.state(a));
    }
}

} // namespace
} // namespace mem
} // namespace hyperplane
