/**
 * @file
 * Unit tests for doorbells, the address map, and task queues.
 */

#include <gtest/gtest.h>

#include "queueing/task_queue.hh"

namespace hyperplane {
namespace queueing {
namespace {

TEST(AddressMap, DoorbellsAreLineDisjoint)
{
    for (QueueId q = 0; q < 100; ++q) {
        EXPECT_EQ(AddressMap::doorbellAddr(q) % cacheLineBytes, 0u);
        EXPECT_EQ(lineBase(AddressMap::doorbellAddr(q)),
                  AddressMap::doorbellAddr(q));
        if (q > 0) {
            EXPECT_NE(lineBase(AddressMap::doorbellAddr(q)),
                      lineBase(AddressMap::doorbellAddr(q - 1)));
        }
    }
}

TEST(AddressMap, RegionsDoNotOverlap)
{
    const unsigned n = 4096;
    EXPECT_LT(AddressMap::doorbellRangeEnd(n),
              AddressMap::descriptorBase);
    EXPECT_LT(AddressMap::descriptorAddr(n), AddressMap::tenantDoorbellBase);
    EXPECT_LT(AddressMap::tenantDoorbellAddr(n), AddressMap::taskDataBase);
    EXPECT_LT(AddressMap::taskDataBase, AddressMap::syncBase);
}

TEST(Doorbell, CountsUpAndDown)
{
    Doorbell db(0x1000);
    EXPECT_TRUE(db.empty());
    db.increment(3);
    EXPECT_EQ(db.count(), 3u);
    EXPECT_EQ(db.decrement(2), 2u);
    EXPECT_EQ(db.count(), 1u);
}

TEST(Doorbell, DecrementClampsAtZero)
{
    Doorbell db(0x1000);
    db.increment();
    EXPECT_EQ(db.decrement(5), 1u);
    EXPECT_TRUE(db.empty());
    EXPECT_EQ(db.decrement(), 0u);
}

TEST(TaskQueue, EnqueueDequeueFifo)
{
    TaskQueue q(0, AddressMap::doorbellAddr(0),
                AddressMap::descriptorAddr(0));
    for (std::uint64_t i = 0; i < 5; ++i) {
        WorkItem item;
        item.seq = i;
        q.enqueue(item);
    }
    EXPECT_EQ(q.depth(), 5u);
    EXPECT_EQ(q.doorbell().count(), 5u);
    for (std::uint64_t i = 0; i < 5; ++i) {
        const auto item = q.dequeue();
        ASSERT_TRUE(item.has_value());
        EXPECT_EQ(item->seq, i);
    }
    EXPECT_FALSE(q.dequeue().has_value());
    EXPECT_TRUE(q.empty());
}

TEST(TaskQueue, DoorbellTracksDepth)
{
    TaskQueue q(0, AddressMap::doorbellAddr(0),
                AddressMap::descriptorAddr(0));
    WorkItem item;
    q.enqueue(item);
    q.enqueue(item);
    q.dequeue();
    EXPECT_EQ(q.doorbell().count(), q.depth());
}

TEST(TaskQueue, PeekDoesNotRemove)
{
    TaskQueue q(0, AddressMap::doorbellAddr(0),
                AddressMap::descriptorAddr(0));
    EXPECT_EQ(q.peek(), nullptr);
    WorkItem item;
    item.seq = 42;
    q.enqueue(item);
    ASSERT_NE(q.peek(), nullptr);
    EXPECT_EQ(q.peek()->seq, 42u);
    EXPECT_EQ(q.depth(), 1u);
}

TEST(TaskQueue, StatsTrackTotalsAndMaxDepth)
{
    TaskQueue q(0, AddressMap::doorbellAddr(0),
                AddressMap::descriptorAddr(0));
    WorkItem item;
    q.enqueue(item);
    q.enqueue(item);
    q.enqueue(item);
    q.dequeue();
    EXPECT_EQ(q.totalEnqueued(), 3u);
    EXPECT_EQ(q.totalDequeued(), 1u);
    EXPECT_EQ(q.maxDepth(), 3u);
}

TEST(QueueSet, AllocatesDistinctAddresses)
{
    QueueSet set(16);
    EXPECT_EQ(set.size(), 16u);
    for (QueueId q = 0; q < 16; ++q) {
        EXPECT_EQ(set[q].qid(), q);
        EXPECT_EQ(set[q].doorbellAddr(), AddressMap::doorbellAddr(q));
    }
    EXPECT_EQ(set.doorbellRangeHi() - set.doorbellRangeLo(),
              16u * cacheLineBytes);
}

TEST(QueueSet, AggregateCounters)
{
    QueueSet set(4);
    WorkItem item;
    set[0].enqueue(item);
    set[2].enqueue(item);
    set[2].enqueue(item);
    EXPECT_EQ(set.totalBacklog(), 3u);
    EXPECT_EQ(set.totalEnqueued(), 3u);
    set[2].dequeue();
    EXPECT_EQ(set.totalBacklog(), 2u);
    EXPECT_EQ(set.totalEnqueued(), 3u);
}

} // namespace
} // namespace queueing
} // namespace hyperplane
