/**
 * @file
 * Frame pool + free-index-stack tests: exhaustion is a counted graceful
 * condition, refcounted handles return frames exactly once, and the
 * lock-free free list survives concurrent hammering without losing or
 * duplicating an index.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "queueing/free_stack.hh"
#include "server/buffer_pool.hh"

namespace hyperplane {
namespace server {
namespace {

TEST(FreeIndexStack, StartsFullAndDrainsEveryIndexOnce)
{
    queueing::FreeIndexStack st(16);
    EXPECT_EQ(st.capacity(), 16u);
    EXPECT_EQ(st.approxSize(), 16u);
    std::set<std::uint32_t> seen;
    std::uint32_t idx;
    while (st.tryPop(idx)) {
        EXPECT_LT(idx, 16u);
        EXPECT_TRUE(seen.insert(idx).second) << "duplicate " << idx;
    }
    EXPECT_EQ(seen.size(), 16u);
    EXPECT_EQ(st.approxSize(), 0u);
    EXPECT_FALSE(st.tryPop(idx));
}

TEST(FreeIndexStack, PushedIndexComesBack)
{
    queueing::FreeIndexStack st(4);
    std::uint32_t idx;
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(st.tryPop(idx));
    ASSERT_FALSE(st.tryPop(idx));
    st.push(2);
    ASSERT_TRUE(st.tryPop(idx));
    EXPECT_EQ(idx, 2u);
}

TEST(FreeIndexStack, ConcurrentPopPushConservesIndices)
{
    // N threads pop/push in tight loops; afterwards the stack must hold
    // exactly the full index set again (nothing lost, nothing forged).
    static constexpr std::uint32_t cap = 64;
    queueing::FreeIndexStack st(cap);
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&st, &go] {
            while (!go.load())
                std::this_thread::yield();
            for (int i = 0; i < 20000; ++i) {
                std::uint32_t idx;
                if (st.tryPop(idx)) {
                    ASSERT_LT(idx, cap);
                    st.push(idx);
                }
            }
        });
    }
    go.store(true);
    for (auto &th : threads)
        th.join();
    std::set<std::uint32_t> seen;
    std::uint32_t idx;
    while (st.tryPop(idx))
        ASSERT_TRUE(seen.insert(idx).second);
    EXPECT_EQ(seen.size(), cap);
}

TEST(FramePool, ExhaustionIsGracefulAndCounted)
{
    FramePool pool(3, 128);
    EXPECT_EQ(pool.numFrames(), 3u);
    EXPECT_EQ(pool.frameBytes(), 128u);
    EXPECT_EQ(pool.freeFrames(), 3u);

    std::vector<FrameHandle> held;
    for (int i = 0; i < 3; ++i) {
        FrameHandle h = pool.tryAcquire();
        ASSERT_TRUE(static_cast<bool>(h));
        EXPECT_EQ(h.capacity(), 128u);
        held.push_back(std::move(h));
    }
    EXPECT_EQ(pool.freeFrames(), 0u);
    EXPECT_EQ(pool.exhausted(), 0u);

    FrameHandle dry = pool.tryAcquire();
    EXPECT_FALSE(static_cast<bool>(dry));
    EXPECT_EQ(pool.exhausted(), 1u);

    held.pop_back();
    EXPECT_EQ(pool.freeFrames(), 1u);
    FrameHandle again = pool.tryAcquire();
    EXPECT_TRUE(static_cast<bool>(again));
}

TEST(FramePool, CopySharesAndLastReleaseReturnsFrame)
{
    FramePool pool(1, 64);
    FrameHandle a = pool.tryAcquire();
    ASSERT_TRUE(static_cast<bool>(a));
    a.data()[0] = 0x5a;
    {
        FrameHandle b = a; // shared: refcount 2
        EXPECT_EQ(b.data(), a.data());
        EXPECT_EQ(pool.freeFrames(), 0u);
    }
    // b released; a still owns the frame.
    EXPECT_EQ(pool.freeFrames(), 0u);
    EXPECT_EQ(a.data()[0], 0x5a);
    a.reset();
    EXPECT_FALSE(static_cast<bool>(a));
    EXPECT_EQ(pool.freeFrames(), 1u);
}

TEST(FramePool, MoveTransfersOwnershipWithoutRefchurn)
{
    FramePool pool(1, 64);
    FrameHandle a = pool.tryAcquire();
    std::uint8_t *p = a.data();
    FrameHandle b = std::move(a);
    EXPECT_FALSE(static_cast<bool>(a));
    EXPECT_TRUE(static_cast<bool>(b));
    EXPECT_EQ(b.data(), p);
    EXPECT_EQ(pool.freeFrames(), 0u);
    b.reset();
    EXPECT_EQ(pool.freeFrames(), 1u);
}

TEST(FramePool, ReusedFrameIsFullyWritable)
{
    // Acquire/fill/release in a loop: the slab slot must be writable
    // end to end every round (ASan would flag an off-by-one stride).
    FramePool pool(2, 96);
    for (int round = 0; round < 8; ++round) {
        FrameHandle h = pool.tryAcquire();
        ASSERT_TRUE(static_cast<bool>(h));
        std::memset(h.data(), round, h.capacity());
        EXPECT_EQ(h.data()[h.capacity() - 1],
                  static_cast<std::uint8_t>(round));
    }
}

TEST(FramePool, CopyEventsCount)
{
    FramePool pool(1, 64);
    EXPECT_EQ(pool.copyEvents(), 0u);
    FrameHandle h = pool.tryAcquire();
    h.countCopy();
    h.countCopy();
    EXPECT_EQ(pool.copyEvents(), 2u);
    FrameHandle null;
    null.countCopy(); // null handle: no-op, no crash
    EXPECT_EQ(pool.copyEvents(), 2u);
}

TEST(FramePool, ConcurrentAcquireReleaseHammer)
{
    // More threads than frames: constant contention on the free list
    // and the refcounts.  Every byte write is to an exclusively owned
    // frame, so TSan/ASan runs double as data-race and lifetime checks.
    FramePool pool(4, 256);
    std::atomic<bool> go{false};
    std::atomic<std::uint64_t> acquired{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 6; ++t) {
        threads.emplace_back([&pool, &go, &acquired, t] {
            while (!go.load())
                std::this_thread::yield();
            for (int i = 0; i < 5000; ++i) {
                FrameHandle h = pool.tryAcquire();
                if (!h)
                    continue;
                acquired.fetch_add(1);
                h.data()[0] = static_cast<std::uint8_t>(t);
                FrameHandle shared = h;
                ASSERT_EQ(shared.data()[0],
                          static_cast<std::uint8_t>(t));
            }
        });
    }
    go.store(true);
    for (auto &th : threads)
        th.join();
    EXPECT_GT(acquired.load(), 0u);
    EXPECT_EQ(pool.freeFrames(), 4u); // every frame came home
}

} // namespace
} // namespace server
} // namespace hyperplane
