/**
 * @file
 * Unit tests for traffic shapes and imbalance.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "traffic/shapes.hh"

namespace hyperplane {
namespace traffic {
namespace {

double
sum(const std::vector<double> &w)
{
    return std::accumulate(w.begin(), w.end(), 0.0);
}

TEST(Shapes, FbActivatesEveryQueue)
{
    Rng rng(1);
    const auto w = shapeWeights(Shape::FB, 200, rng);
    EXPECT_EQ(activeQueueCount(w), 200u);
    for (double x : w)
        EXPECT_DOUBLE_EQ(x, 1.0 / 200);
}

TEST(Shapes, SqActivatesExactlyOne)
{
    Rng rng(2);
    const auto w = shapeWeights(Shape::SQ, 500, rng);
    EXPECT_EQ(activeQueueCount(w), 1u);
    EXPECT_DOUBLE_EQ(sum(w), 1.0);
}

TEST(Shapes, PcActivatesAboutTwentyFourPercent)
{
    Rng rng(3);
    // 20% always + 5% of the remaining 80% => ~24% expected.
    const auto w = shapeWeights(Shape::PC, 1000, rng);
    const unsigned active = activeQueueCount(w);
    EXPECT_GE(active, 200u); // at least the always-on set
    EXPECT_NEAR(active, 240.0, 40.0);
    EXPECT_NEAR(sum(w), 1.0, 1e-9);
}

TEST(Shapes, NcActivatesAboutHundredPlusFivePercent)
{
    Rng rng(4);
    const auto w = shapeWeights(Shape::NC, 1000, rng);
    const unsigned active = activeQueueCount(w);
    EXPECT_GE(active, 100u);
    EXPECT_NEAR(active, 145.0, 35.0);
}

TEST(Shapes, NcWithFewQueuesActivatesAll)
{
    Rng rng(5);
    const auto w = shapeWeights(Shape::NC, 50, rng);
    EXPECT_EQ(activeQueueCount(w), 50u);
}

TEST(Shapes, ActiveQueuesShareLoadEqually)
{
    Rng rng(6);
    const auto w = shapeWeights(Shape::PC, 400, rng);
    double firstActive = 0.0;
    for (double x : w) {
        if (x > 0.0) {
            if (firstActive == 0.0)
                firstActive = x;
            EXPECT_DOUBLE_EQ(x, firstActive);
        }
    }
}

TEST(Shapes, WeightsAlwaysSumToOne)
{
    Rng rng(7);
    for (Shape s : allShapes()) {
        for (unsigned n : {1u, 10u, 100u, 1000u}) {
            const auto w = shapeWeights(s, n, rng);
            EXPECT_NEAR(sum(w), 1.0, 1e-9)
                << toString(s) << " n=" << n;
            EXPECT_GE(activeQueueCount(w), 1u);
        }
    }
}

TEST(Shapes, ImbalanceSkewsFirstHalfOfActives)
{
    Rng rng(8);
    auto w = shapeWeights(Shape::FB, 100, rng);
    const auto skewed = applyImbalance(w, 0.10);
    EXPECT_NEAR(sum(skewed), 1.0, 1e-9);
    // First active gets 1.1x the last active's weight.
    EXPECT_NEAR(skewed[0] / skewed[99], 1.1, 1e-9);
}

TEST(Shapes, ZeroImbalanceIsIdentity)
{
    Rng rng(9);
    const auto w = shapeWeights(Shape::PC, 100, rng);
    const auto same = applyImbalance(w, 0.0);
    for (unsigned i = 0; i < 100; ++i)
        EXPECT_NEAR(same[i], w[i], 1e-12);
}

TEST(Shapes, ImbalancePreservesInactiveQueues)
{
    Rng rng(10);
    const auto w = shapeWeights(Shape::SQ, 10, rng);
    const auto skewed = applyImbalance(w, 0.5);
    EXPECT_EQ(activeQueueCount(skewed), 1u);
}

TEST(Shapes, NamesRoundTrip)
{
    EXPECT_STREQ(toString(Shape::FB), "FB");
    EXPECT_STREQ(toString(Shape::PC), "PC");
    EXPECT_STREQ(toString(Shape::NC), "NC");
    EXPECT_STREQ(toString(Shape::SQ), "SQ");
    EXPECT_EQ(allShapes().size(), 4u);
}

} // namespace
} // namespace traffic
} // namespace hyperplane
