/**
 * @file
 * Unit tests for the notification-path tracing subsystem: the ring
 * tracer, span pairing, the Chrome-trace exporter, the latency
 * breakdown joiner, the time series, and end-to-end traced SdpSystem
 * runs (breakdown stages must sum to the e2e latency).
 */

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cmath>
#include <sstream>
#include <thread>

#include "dp/sdp_system.hh"
#include "harness/runner.hh"
#include "json_check.hh"
#include "trace/chrome_trace.hh"
#include "trace/latency_breakdown.hh"
#include "trace/timeseries.hh"
#include "trace/trace.hh"

namespace hyperplane {
namespace trace {
namespace {

TEST(Tracer, DisabledRecordsNothing)
{
    Tracer t(8);
    ASSERT_FALSE(t.enabled());
    t.instant(Stage::DoorbellWrite, 0, 10);
    t.begin(Stage::Service, 0, 20);
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.recorded(), 0u);
    EXPECT_EQ(t.dropped(), 0u);
}

TEST(Tracer, RingOverflowDropsOldest)
{
    Tracer t(4);
    t.setEnabled(true);
    for (Tick ts = 0; ts < 6; ++ts)
        t.instant(Stage::DoorbellWrite, 0, ts);
    EXPECT_EQ(t.size(), 4u);
    EXPECT_EQ(t.capacity(), 4u);
    EXPECT_EQ(t.dropped(), 2u);
    EXPECT_EQ(t.recorded(), 6u);
    const auto snap = t.snapshot();
    ASSERT_EQ(snap.size(), 4u);
    // Oldest events (ts 0, 1) were evicted; snapshot is oldest-first.
    for (std::size_t i = 0; i < snap.size(); ++i)
        EXPECT_EQ(snap[i].ts, static_cast<Tick>(i + 2));
}

TEST(Tracer, ClearResetsCounters)
{
    Tracer t(2);
    t.setEnabled(true);
    for (int i = 0; i < 5; ++i)
        t.instant(Stage::Completion, 1, i);
    t.clear();
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.dropped(), 0u);
    EXPECT_EQ(t.recorded(), 0u);
    t.instant(Stage::Completion, 1, 9);
    EXPECT_EQ(t.snapshot().front().ts, 9u);
}

TEST(Tracer, ConcurrentStampingWrapsCleanly)
{
    // Many threads stamping through a deliberately tiny ring: every
    // push must be accounted (recorded == kept + dropped), the ring
    // must never exceed capacity, and a snapshot taken *during* the
    // storm must only ever contain fully-written events.  Run under
    // TSan (HYPERPLANE_SANITIZE=thread) this doubles as a data-race
    // check on the push/snapshot paths.
    constexpr std::size_t cap = 64;
    constexpr unsigned numThreads = 4;
    constexpr std::uint64_t perThread = 5000;
    Tracer t(cap);
    t.setEnabled(true);

    std::atomic<bool> snapRun{true};
    std::thread snapper([&] {
        while (snapRun.load(std::memory_order_relaxed)) {
            for (const auto &e : t.snapshot()) {
                // A torn event would show an impossible track/arg
                // pairing; every writer stamps arg = track * 1e9 + i.
                ASSERT_EQ(e.arg / 1000000000u, e.track);
                ASSERT_LT(e.arg % 1000000000u, perThread);
            }
        }
    });
    std::vector<std::thread> writers;
    for (unsigned w = 0; w < numThreads; ++w) {
        writers.emplace_back([&t, w] {
            for (std::uint64_t i = 0; i < perThread; ++i)
                t.instant(Stage::DoorbellWrite, w, i, w,
                          static_cast<std::uint64_t>(w) * 1000000000u +
                              i);
        });
    }
    for (auto &th : writers)
        th.join();
    snapRun.store(false);
    snapper.join();

    EXPECT_EQ(t.recorded(), numThreads * perThread);
    EXPECT_EQ(t.size(), cap);
    EXPECT_EQ(t.dropped(), numThreads * perThread - cap);
    const auto snap = t.snapshot();
    ASSERT_EQ(snap.size(), cap);
    // Per-writer order survives the wrap: each track's surviving args
    // must be strictly increasing (the ring drops oldest-first).
    std::array<std::uint64_t, numThreads> last{};
    std::array<bool, numThreads> seen{};
    for (const auto &e : snap) {
        const std::uint64_t i = e.arg % 1000000000u;
        if (seen[e.track]) {
            EXPECT_GT(i, last[e.track]);
        }
        seen[e.track] = true;
        last[e.track] = i;
    }
}

TEST(Tracer, ClockFeedsNow)
{
    Tracer t(4);
    Tick now = 123;
    t.setClock([&now] { return now; });
    EXPECT_EQ(t.now(), 123u);
    now = 456;
    EXPECT_EQ(t.now(), 456u);
}

TEST(SpanPairing, NestedSpansPerTrackPass)
{
    Tracer t(16);
    t.setEnabled(true);
    t.begin(Stage::Service, 0, 10);
    t.begin(Stage::Halt, 1, 11); // other track interleaves freely
    t.instant(Stage::Completion, 0, 12);
    t.end(Stage::Service, 0, 13);
    t.end(Stage::Halt, 1, 14);
    const auto check = checkSpanPairing(t.snapshot());
    EXPECT_TRUE(check.ok) << check.error;
}

TEST(SpanPairing, UnmatchedEndFails)
{
    Tracer t(4);
    t.setEnabled(true);
    t.end(Stage::Service, 0, 10);
    const auto check = checkSpanPairing(t.snapshot());
    EXPECT_FALSE(check.ok);
    EXPECT_NE(check.error.find("unmatched End"), std::string::npos);
}

TEST(SpanPairing, MismatchedStageFails)
{
    Tracer t(4);
    t.setEnabled(true);
    t.begin(Stage::Service, 0, 10);
    t.end(Stage::Halt, 0, 11);
    EXPECT_FALSE(checkSpanPairing(t.snapshot()).ok);
}

TEST(SpanPairing, UnclosedBeginFails)
{
    Tracer t(4);
    t.setEnabled(true);
    t.begin(Stage::Halt, 2, 10);
    const auto check = checkSpanPairing(t.snapshot());
    EXPECT_FALSE(check.ok);
    EXPECT_NE(check.error.find("unclosed Begin"), std::string::npos);
}

TEST(TrackNames, PseudoTracksAreNamed)
{
    EXPECT_EQ(trackName(0), "core0");
    EXPECT_EQ(trackName(3), "core3");
    EXPECT_EQ(trackName(trackHardwareBase), "hw0");
    EXPECT_EQ(trackName(trackHardwareBase + 2), "hw2");
    EXPECT_EQ(trackName(trackDevice), "device");
    EXPECT_EQ(trackName(trackWatchdog), "watchdog");
}

TEST(ChromeTrace, ExportIsWellFormedJson)
{
    Tracer t(16);
    t.setEnabled(true);
    t.instant(Stage::DoorbellWrite, trackDevice, 100, 7, 1);
    t.begin(Stage::Service, 0, 200, 7);
    t.instant(Stage::Completion, 0, 250, 7, 1);
    t.end(Stage::Service, 0, 300, 7);
    const std::string json = chromeTraceJson(t.snapshot());
    EXPECT_TRUE(hyperplane::testing::jsonWellFormed(json)) << json;
    // Stage names, phases, and thread_name metadata must appear.
    EXPECT_NE(json.find("\"doorbell_write\""), std::string::npos);
    EXPECT_NE(json.find("\"service\""), std::string::npos);
    EXPECT_NE(json.find("thread_name"), std::string::npos);
    EXPECT_NE(json.find("\"device\""), std::string::npos);
    EXPECT_NE(json.find("\"core0\""), std::string::npos);
    EXPECT_NE(json.find("traceEvents"), std::string::npos);
}

TEST(ChromeTrace, EmptyBufferStillValid)
{
    const std::string json = chromeTraceJson({});
    EXPECT_TRUE(hyperplane::testing::jsonWellFormed(json)) << json;
}

TEST(LatencyBreakdown, StagesTelescopeToEndToEnd)
{
    LatencyBreakdown b;
    b.onDoorbell(3, 1, 100);
    b.onActivate(3, 120, 5); // snoop back-dated to tick 115
    b.onGrant(3, 140);
    b.onCompletion(3, 1, 200);
    ASSERT_EQ(b.samples(), 1u);
    EXPECT_EQ(b.incomplete(), 0u);
    EXPECT_EQ(b.open(), 0u);
    EXPECT_NEAR(b.doorbellToSnoopUs().mean(), ticksToUs(15), 1e-12);
    EXPECT_NEAR(b.snoopToReadyUs().mean(), ticksToUs(5), 1e-12);
    EXPECT_NEAR(b.readyToGrantUs().mean(), ticksToUs(20), 1e-12);
    EXPECT_NEAR(b.grantToCompletionUs().mean(), ticksToUs(60), 1e-12);
    const double sum = b.doorbellToSnoopUs().mean() +
                       b.snoopToReadyUs().mean() +
                       b.readyToGrantUs().mean() +
                       b.grantToCompletionUs().mean();
    EXPECT_NEAR(sum, b.endToEndUs().mean(), 1e-12);
    EXPECT_NEAR(b.endToEndUs().mean(), ticksToUs(100), 1e-12);
}

TEST(LatencyBreakdown, SnoopBackdateClampsToDoorbell)
{
    LatencyBreakdown b;
    b.onDoorbell(1, 1, 100);
    b.onActivate(1, 102, 50); // lookup longer than doorbell->activate
    b.onGrant(1, 110);
    b.onCompletion(1, 1, 120);
    ASSERT_EQ(b.samples(), 1u);
    EXPECT_EQ(b.doorbellToSnoopUs().mean(), 0.0);
    EXPECT_NEAR(b.snoopToReadyUs().mean(), ticksToUs(2), 1e-12);
}

TEST(LatencyBreakdown, BackloggedArrivalDoesNotOpenEpisode)
{
    LatencyBreakdown b;
    b.onDoorbell(2, 1, 100);
    b.onDoorbell(2, 2, 110); // queue already non-empty: ignored
    b.onActivate(2, 105);
    b.onGrant(2, 120);
    b.onCompletion(2, 2, 130); // seq mismatch: batch item, no close
    EXPECT_EQ(b.samples(), 0u);
    EXPECT_EQ(b.open(), 1u);
    b.onCompletion(2, 1, 140);
    EXPECT_EQ(b.samples(), 1u);
    EXPECT_EQ(b.open(), 0u);
}

TEST(LatencyBreakdown, UngrantedEpisodeClosesIncomplete)
{
    LatencyBreakdown b;
    b.onDoorbell(4, 9, 100);
    b.onActivate(4, 110);
    b.onCompletion(4, 9, 150); // served without a grant (fallback)
    EXPECT_EQ(b.samples(), 0u);
    EXPECT_EQ(b.incomplete(), 1u);
}

TEST(LatencyBreakdown, ClearDropsOpenEpisodes)
{
    LatencyBreakdown b;
    b.onDoorbell(5, 1, 100);
    b.clear();
    EXPECT_EQ(b.open(), 0u);
    b.onCompletion(5, 1, 200); // episode gone: no effect
    EXPECT_EQ(b.samples(), 0u);
    EXPECT_EQ(b.incomplete(), 0u);
}

TEST(TimeSeries, RowsAndCsv)
{
    TimeSeries ts;
    ts.setColumns({"a", "b"});
    ts.appendRow(usToTicks(1.0), {1.0, 2.0});
    ts.appendRow(usToTicks(2.0), {3.0, 4.5});
    ASSERT_EQ(ts.rows(), 2u);
    EXPECT_EQ(ts.rowValues(1)[1], 4.5);

    std::ostringstream csv;
    ts.writeCsv(csv);
    const std::string text = csv.str();
    EXPECT_EQ(text.find("tick,time_us,a,b"), 0u);
    // Header + two data rows.
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);

    std::ostringstream json;
    ts.writeJson(json);
    EXPECT_TRUE(hyperplane::testing::jsonWellFormed(json.str()))
        << json.str();
}

// ---------------------------------------------------------------------
// End-to-end: traced SdpSystem runs.
// ---------------------------------------------------------------------

dp::SdpConfig
tracedZeroLoadConfig()
{
    dp::SdpConfig cfg;
    cfg.plane = dp::PlaneKind::HyperPlane;
    cfg.numCores = 1;
    cfg.numQueues = 32;
    cfg.workload = workloads::Kind::PacketEncapsulation;
    cfg.shape = traffic::Shape::SQ;
    cfg.jitter = dp::ServiceJitter::None;
    cfg.seed = 77;
    cfg = harness::zeroLoadConfig(cfg, 200);
    cfg.trace.enable = true;
    return cfg;
}

TEST(TracedRun, BreakdownStagesSumToEndToEnd)
{
    if (!kCompiledIn)
        GTEST_SKIP() << "built with HYPERPLANE_TRACE=0";
    dp::SdpSystem sys(tracedZeroLoadConfig());
    const auto r = sys.run();
    ASSERT_GT(r.breakdownSamples, 0u);
    EXPECT_GT(r.traceEvents, 0u);
    const double sum = r.avgDoorbellToSnoopUs + r.avgSnoopToReadyUs +
                       r.avgReadyToGrantUs + r.avgGrantToCompletionUs;
    // Stage boundaries telescope: the sum reconstructs e2e exactly
    // (one-tick tolerance for the clamped snoop back-date).
    EXPECT_NEAR(sum, r.breakdownE2eAvgUs, ticksToUs(1) + 1e-9);
    // At zero load the breakdown e2e matches the measured latency.
    EXPECT_NEAR(r.breakdownE2eAvgUs, r.avgLatencyUs, 0.05);
}

TEST(TracedRun, SpansPairAndExportIsValidJson)
{
    if (!kCompiledIn)
        GTEST_SKIP() << "built with HYPERPLANE_TRACE=0";
    dp::SdpSystem sys(tracedZeroLoadConfig());
    sys.run();
    ASSERT_NE(sys.tracer(), nullptr);
    ASSERT_EQ(sys.tracer()->dropped(), 0u);
    const auto check = checkSpanPairing(sys.tracer()->snapshot());
    EXPECT_TRUE(check.ok) << check.error;

    std::ostringstream os;
    sys.writeChromeTrace(os);
    EXPECT_TRUE(hyperplane::testing::jsonWellFormed(os.str()));
}

TEST(TracedRun, DisabledRunPaysNothing)
{
    auto cfg = tracedZeroLoadConfig();
    cfg.trace.enable = false;
    dp::SdpSystem sys(cfg);
    const auto r = sys.run();
    EXPECT_EQ(sys.tracer(), nullptr);
    EXPECT_EQ(sys.timeSeries(), nullptr);
    EXPECT_EQ(r.traceEvents, 0u);
    EXPECT_EQ(r.breakdownSamples, 0u);
    // The exporter still emits a valid (empty) document.
    std::ostringstream os;
    sys.writeChromeTrace(os);
    EXPECT_TRUE(hyperplane::testing::jsonWellFormed(os.str()));
}

TEST(TracedRun, TracingDoesNotPerturbResults)
{
    auto off = tracedZeroLoadConfig();
    off.trace.enable = false;
    const auto base = dp::runSdp(off);
    const auto traced = dp::runSdp(tracedZeroLoadConfig());
    EXPECT_EQ(traced.completions, base.completions);
    EXPECT_DOUBLE_EQ(traced.avgLatencyUs, base.avgLatencyUs);
    EXPECT_DOUBLE_EQ(traced.throughputMtps, base.throughputMtps);
}

TEST(TracedRun, RegistrySamplerLeavesTimeSeries)
{
    if (!kCompiledIn)
        GTEST_SKIP() << "built with HYPERPLANE_TRACE=0";
    auto cfg = tracedZeroLoadConfig();
    cfg.trace.sampleEveryUs = cfg.measureUs / 20.0;
    dp::SdpSystem sys(cfg);
    sys.run();
    const TimeSeries *ts = sys.timeSeries();
    ASSERT_NE(ts, nullptr);
    EXPECT_GT(ts->rows(), 10u);
    EXPECT_FALSE(ts->columns().empty());
    // Ticks must be strictly increasing.
    for (std::size_t i = 1; i < ts->rows(); ++i)
        EXPECT_LT(ts->rowTick(i - 1), ts->rowTick(i));
    std::ostringstream json;
    ts->writeJson(json);
    EXPECT_TRUE(hyperplane::testing::jsonWellFormed(json.str()));
}

} // namespace
} // namespace trace
} // namespace hyperplane
