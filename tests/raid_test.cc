/**
 * @file
 * Unit tests for RAID-6 P+Q parity and recovery.
 */

#include <gtest/gtest.h>

#include "codes/raid.hh"
#include "sim/rng.hh"

namespace hyperplane {
namespace codes {
namespace {

std::vector<Block>
randomStripe(unsigned disks, std::size_t len, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Block> stripe(disks, Block(len));
    for (auto &blk : stripe)
        for (auto &b : blk)
            b = static_cast<std::uint8_t>(rng.next());
    return stripe;
}

TEST(Raid6, PIsXorOfBlocks)
{
    Raid6 raid(3);
    std::vector<Block> stripe{{1, 2}, {4, 8}, {16, 32}};
    const Block p = raid.computeP(stripe);
    EXPECT_EQ(p, (Block{1 ^ 4 ^ 16, 2 ^ 8 ^ 32}));
}

TEST(Raid6, QWeightsByPowersOfG)
{
    Raid6 raid(2);
    std::vector<Block> stripe{{1}, {1}};
    // Q = g^0 * 1 ^ g^1 * 1 = 1 ^ 2 = 3.
    EXPECT_EQ(raid.computeQ(stripe), Block{3});
}

TEST(Raid6, VerifyAcceptsCorrectParity)
{
    Raid6 raid(8);
    const auto stripe = randomStripe(8, 64, 1);
    const auto [p, q] = raid.computePQ(stripe);
    EXPECT_TRUE(raid.verify(stripe, p, q));
}

TEST(Raid6, VerifyRejectsCorruption)
{
    Raid6 raid(8);
    auto stripe = randomStripe(8, 64, 2);
    const auto [p, q] = raid.computePQ(stripe);
    stripe[3][17] ^= 0x01;
    EXPECT_FALSE(raid.verify(stripe, p, q));
}

TEST(Raid6, RecoverSingleDataWithP)
{
    Raid6 raid(6);
    const auto stripe = randomStripe(6, 32, 3);
    const Block p = raid.computeP(stripe);
    for (unsigned missing = 0; missing < 6; ++missing) {
        auto damaged = stripe;
        damaged[missing].clear();
        const Block rec = raid.recoverDataWithP(damaged, p, missing);
        EXPECT_EQ(rec, stripe[missing]) << "missing " << missing;
    }
}

TEST(Raid6, RecoverSingleDataWithQ)
{
    Raid6 raid(6);
    const auto stripe = randomStripe(6, 32, 4);
    const Block q = raid.computeQ(stripe);
    for (unsigned missing = 0; missing < 6; ++missing) {
        auto damaged = stripe;
        damaged[missing].clear();
        const Block rec = raid.recoverDataWithQ(damaged, q, missing);
        EXPECT_EQ(rec, stripe[missing]) << "missing " << missing;
    }
}

TEST(Raid6, RecoverTwoDataAllPairs)
{
    Raid6 raid(8);
    const auto stripe = randomStripe(8, 48, 5);
    const auto [p, q] = raid.computePQ(stripe);
    for (unsigned a = 0; a < 8; ++a) {
        for (unsigned b = a + 1; b < 8; ++b) {
            auto damaged = stripe;
            damaged[a].clear();
            damaged[b].clear();
            const auto [ra, rb] = raid.recoverTwoData(damaged, p, q, a, b);
            EXPECT_EQ(ra, stripe[a]) << "pair " << a << "," << b;
            EXPECT_EQ(rb, stripe[b]) << "pair " << a << "," << b;
        }
    }
}

TEST(Raid6, SingleDiskStripe)
{
    Raid6 raid(1);
    std::vector<Block> stripe{{9, 8, 7}};
    const auto [p, q] = raid.computePQ(stripe);
    EXPECT_EQ(p, stripe[0]); // XOR of one block is itself
    EXPECT_EQ(q, stripe[0]); // g^0 = 1
}

TEST(Raid6, ParityOfZeroStripeIsZero)
{
    Raid6 raid(4);
    std::vector<Block> stripe(4, Block(16, 0));
    const auto [p, q] = raid.computePQ(stripe);
    EXPECT_EQ(p, Block(16, 0));
    EXPECT_EQ(q, Block(16, 0));
}

class RaidWidthSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(RaidWidthSweep, TwoErasureRecoveryAcrossWidths)
{
    const unsigned disks = GetParam();
    Raid6 raid(disks);
    const auto stripe = randomStripe(disks, 24, disks);
    const auto [p, q] = raid.computePQ(stripe);
    auto damaged = stripe;
    const unsigned a = 0, b = disks - 1;
    damaged[a].clear();
    damaged[b].clear();
    const auto [ra, rb] = raid.recoverTwoData(damaged, p, q, a, b);
    EXPECT_EQ(ra, stripe[a]);
    EXPECT_EQ(rb, stripe[b]);
}

INSTANTIATE_TEST_SUITE_P(Widths, RaidWidthSweep,
                         ::testing::Values(2, 3, 4, 8, 16, 32, 255));

} // namespace
} // namespace codes
} // namespace hyperplane
