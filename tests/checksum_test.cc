/**
 * @file
 * Unit tests for internet checksum and CRC32C.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "net/checksum.hh"

namespace hyperplane {
namespace net {
namespace {

TEST(InternetChecksum, Rfc1071WorkedExample)
{
    // The classic example from RFC 1071 Section 3.
    const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03,
                                 0xf4, 0xf5, 0xf6, 0xf7};
    // Sum = 0x00 01 + 0xf2 03 + 0xf4 f5 + 0xf6 f7 = 0x2ddf0
    // -> 0xddf0 + 0x2 = 0xddf2 -> checksum = ~0xddf2 = 0x220d
    EXPECT_EQ(internetChecksum(data, sizeof(data)), 0x220d);
}

TEST(InternetChecksum, ZeroDataGivesAllOnes)
{
    const std::uint8_t zeros[16] = {};
    EXPECT_EQ(internetChecksum(zeros, sizeof(zeros)), 0xffff);
}

TEST(InternetChecksum, OddLengthPadsWithZero)
{
    const std::uint8_t a[] = {0x12, 0x34, 0x56};
    const std::uint8_t b[] = {0x12, 0x34, 0x56, 0x00};
    EXPECT_EQ(internetChecksum(a, 3), internetChecksum(b, 4));
}

TEST(InternetChecksum, VerifiesToZeroWhenEmbedded)
{
    // Build a pseudo-header, embed the checksum, and verify the whole
    // thing sums to zero — the IPv4 receiver-side check.
    std::uint8_t hdr[20] = {0x45, 0x00, 0x00, 0x54, 0x12, 0x34, 0x40,
                            0x00, 0x40, 0x01, 0x00, 0x00, 0xc0, 0xa8,
                            0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7};
    const std::uint16_t csum = internetChecksum(hdr, sizeof(hdr));
    hdr[10] = static_cast<std::uint8_t>(csum >> 8);
    hdr[11] = static_cast<std::uint8_t>(csum);
    EXPECT_EQ(internetChecksum(hdr, sizeof(hdr)), 0);
}

TEST(InternetChecksum, PartialSumsCompose)
{
    const std::uint8_t data[] = {1, 2, 3, 4, 5, 6, 7, 8};
    std::uint32_t sum = checksumPartial(data, 4, 0);
    sum = checksumPartial(data + 4, 4, sum);
    EXPECT_EQ(finishChecksum(sum), internetChecksum(data, 8));
}

TEST(InternetChecksum, OddLengthMatchesReferenceModel)
{
    // Reference model: sum 16-bit big-endian words with end-around
    // carry, padding an odd tail with a zero byte, then complement.
    const auto reference = [](const std::uint8_t *d, std::size_t n) {
        std::uint64_t sum = 0;
        for (std::size_t i = 0; i < n; i += 2) {
            const std::uint32_t hi = d[i];
            const std::uint32_t lo = i + 1 < n ? d[i + 1] : 0;
            sum += (hi << 8) | lo;
        }
        while (sum >> 16)
            sum = (sum & 0xffff) + (sum >> 16);
        return static_cast<std::uint16_t>(~sum & 0xffff);
    };
    std::uint8_t data[31];
    for (std::size_t i = 0; i < sizeof(data); ++i)
        data[i] = static_cast<std::uint8_t>(0xa5 ^ (i * 29));
    for (std::size_t len = 0; len <= sizeof(data); ++len)
        EXPECT_EQ(internetChecksum(data, len), reference(data, len))
            << "length " << len;
}

TEST(InternetChecksum, EvenSplitsComposeAtEveryOffset)
{
    // Chaining is only defined for even-length intermediate chunks;
    // verify every even split point of an odd-length message agrees
    // with the one-shot checksum (the final chunk may be odd).
    std::uint8_t data[21];
    for (std::size_t i = 0; i < sizeof(data); ++i)
        data[i] = static_cast<std::uint8_t>(i * 37 + 1);
    const std::uint16_t whole = internetChecksum(data, sizeof(data));
    for (std::size_t split = 0; split <= sizeof(data); split += 2) {
        std::uint32_t sum = checksumPartial(data, split, 0);
        sum = checksumPartial(data + split, sizeof(data) - split, sum);
        EXPECT_EQ(finishChecksum(sum), whole) << "split " << split;
    }
}

TEST(InternetChecksum, OddIntermediateChunkIsNotConcatenation)
{
    // The documented hazard: an odd intermediate chunk zero-pads
    // mid-stream and checksums a different message.  Pin the behaviour
    // so a future "fix" that silently changes chaining semantics trips.
    const std::uint8_t data[] = {0x12, 0x34, 0x56, 0x78, 0x9a};
    std::uint32_t sum = checksumPartial(data, 3, 0); // odd intermediate
    sum = checksumPartial(data + 3, 2, sum);
    const std::uint8_t padded[] = {0x12, 0x34, 0x56, 0x00, 0x78, 0x9a};
    EXPECT_EQ(finishChecksum(sum),
              internetChecksum(padded, sizeof(padded)));
    EXPECT_NE(finishChecksum(sum), internetChecksum(data, sizeof(data)));
}

TEST(Crc32c, KnownVectors)
{
    // RFC 3720 (iSCSI) test vector: 32 bytes of zeros.
    std::uint8_t zeros[32] = {};
    EXPECT_EQ(crc32c(zeros, sizeof(zeros)), 0x8a9136aau);

    // 32 bytes of 0xff.
    std::uint8_t ones[32];
    std::memset(ones, 0xff, sizeof(ones));
    EXPECT_EQ(crc32c(ones, sizeof(ones)), 0x62a8ab43u);

    // Ascending 0..31.
    std::uint8_t inc[32];
    for (int i = 0; i < 32; ++i)
        inc[i] = static_cast<std::uint8_t>(i);
    EXPECT_EQ(crc32c(inc, sizeof(inc)), 0x46dd794eu);
}

TEST(Crc32c, StandardCheckString)
{
    const std::string s = "123456789";
    EXPECT_EQ(crc32c(reinterpret_cast<const std::uint8_t *>(s.data()),
                     s.size()),
              0xe3069283u);
}

TEST(Crc32c, EmptyInputIsZero)
{
    EXPECT_EQ(crc32c(nullptr, 0), 0u);
}

TEST(Crc32c, SensitiveToSingleBitFlip)
{
    std::uint8_t data[16] = {};
    const std::uint32_t base = crc32c(data, sizeof(data));
    data[7] ^= 0x10;
    EXPECT_NE(crc32c(data, sizeof(data)), base);
}

} // namespace
} // namespace net
} // namespace hyperplane
