/**
 * @file
 * Fault-injection framework tests: injector determinism, the
 * lost-notification ledger, the watchdog sweep, graceful degradation to
 * software polling, and full seeded fault campaigns (with a negative
 * control demonstrating that recovery is what keeps queues unstuck).
 */

#include <gtest/gtest.h>

#include <vector>

#include "dp/sdp_system.hh"
#include "fault/fallback_set.hh"
#include "fault/fault_injector.hh"
#include "fault/watchdog.hh"
#include "queueing/task_queue.hh"
#include "sim/event_queue.hh"

namespace hyperplane {
namespace {

using fault::FaultInjector;
using fault::FaultPlan;

// ---------------------------------------------------------------------
// FaultInjector units
// ---------------------------------------------------------------------

TEST(FaultInjector, SameSeedSamePlanIsBitIdentical)
{
    FaultPlan plan;
    plan.dropSnoopRate = 0.2;
    plan.delaySnoopRate = 0.1;
    FaultInjector a(plan, 42), b(plan, 42);
    for (int i = 0; i < 500; ++i) {
        EXPECT_EQ(a.rollDropSnoop(), b.rollDropSnoop());
        const auto da = a.rollDelaySnoop();
        const auto db = b.rollDelaySnoop();
        EXPECT_EQ(da.has_value(), db.has_value());
        if (da && db)
            EXPECT_EQ(*da, *db);
    }
    EXPECT_EQ(a.snoopsDropped.value(), b.snoopsDropped.value());
    EXPECT_GT(a.snoopsDropped.value(), 0u);
}

TEST(FaultInjector, ConcernsDrawFromIndependentStreams)
{
    // Enabling a second fault dimension must not perturb the first
    // one's draw sequence (each concern owns an Rng stream, and
    // zero-rate rolls consume no draws).
    FaultPlan dropOnly;
    dropOnly.dropSnoopRate = 0.3;
    FaultPlan dropPlusSuppress = dropOnly;
    dropPlusSuppress.suppressWakeRate = 0.7;

    FaultInjector a(dropOnly, 7), b(dropPlusSuppress, 7);
    for (int i = 0; i < 300; ++i) {
        // Interleave suppress rolls on b only.
        b.rollSuppressWake();
        EXPECT_EQ(a.rollDropSnoop(), b.rollDropSnoop()) << "roll " << i;
        a.rollSuppressWake(); // rate 0: must consume nothing
    }
    EXPECT_EQ(a.wakesSuppressed.value(), 0u);
    EXPECT_GT(b.wakesSuppressed.value(), 0u);
}

TEST(FaultInjector, LedgerBalancesAcrossEpisodes)
{
    FaultInjector inj(FaultPlan{}, 1);
    EXPECT_TRUE(inj.recordLost(3));
    EXPECT_FALSE(inj.recordLost(3)); // same open episode, not a new one
    EXPECT_TRUE(inj.recordLost(4));
    EXPECT_EQ(inj.lostInjected.value(), 2u);
    EXPECT_EQ(inj.outstandingLost(), 2u);
    EXPECT_TRUE(inj.isLost(3));

    EXPECT_TRUE(inj.recordWatchdogRecovery(3));
    EXPECT_FALSE(inj.recordWatchdogRecovery(3)); // already recovered
    EXPECT_TRUE(inj.recordSelfRecovery(4));
    EXPECT_FALSE(inj.recordSelfRecovery(9)); // never lost

    EXPECT_EQ(inj.outstandingLost(), 0u);
    EXPECT_EQ(inj.lostInjected.value(),
              inj.watchdogRecovered.value() + inj.selfRecovered.value() +
                  inj.outstandingLost());

    // A queue can be lost again after recovery: a fresh episode.
    EXPECT_TRUE(inj.recordLost(3));
    EXPECT_EQ(inj.lostInjected.value(), 3u);
}

TEST(FallbackSet, MembershipAndCountersTrack)
{
    fault::FallbackSet fb;
    EXPECT_TRUE(fb.empty());
    EXPECT_TRUE(fb.add(5));
    EXPECT_FALSE(fb.add(5)); // already demoted
    EXPECT_TRUE(fb.add(2));
    EXPECT_TRUE(fb.contains(5));
    EXPECT_EQ(fb.size(), 2u);
    // Insertion (demotion) order drives deterministic sweeps.
    EXPECT_EQ(fb.queues(), (std::vector<QueueId>{5, 2}));
    EXPECT_TRUE(fb.remove(5));
    EXPECT_FALSE(fb.remove(5));
    EXPECT_EQ(fb.demotions.value(), 2u);
    EXPECT_EQ(fb.promotions.value(), 1u);
}

// ---------------------------------------------------------------------
// Watchdog sweep against bare components
// ---------------------------------------------------------------------

TEST(Watchdog, SweepRescuesStrandedQueue)
{
    EventQueue eq;
    queueing::QueueSet queues(4);
    core::QwaitConfig qcfg;
    qcfg.ready.capacity = 4;
    core::QwaitUnit unit(qcfg);
    for (QueueId q = 0; q < 4; ++q) {
        ASSERT_EQ(unit.qwaitAdd(q, queues[q].doorbellAddr()),
                  core::AddResult::Ok);
    }

    int wakes = 0;
    fault::WatchdogCluster wc;
    wc.unit = &unit;
    for (QueueId q = 0; q < 4; ++q)
        wc.qids.push_back(q);
    wc.deliverWake = [&wakes] {
        ++wakes;
        return true;
    };
    fault::RecoveryConfig rcfg;
    rcfg.watchdog = true;
    rcfg.watchdogPeriodUs = 10.0;
    fault::Watchdog dog(eq, queues, {wc}, nullptr, rcfg);

    // Strand queue 2: the producer enqueues (ringing the doorbell) but
    // the write-transaction snoop never reaches the unit.
    queues[2].enqueue({0, 2, 0, 64, 0});
    EXPECT_FALSE(unit.qwait().has_value());

    dog.sweepOnce();
    EXPECT_EQ(dog.recoveries.value() + dog.earlyRecoveries.value(), 1u);
    EXPECT_EQ(*unit.qwait(), 2u);
    EXPECT_GE(wakes, 1);

    // A healthy sweep finds nothing.
    dog.sweepOnce();
    EXPECT_EQ(dog.recoveries.value() + dog.earlyRecoveries.value(), 1u);
}

TEST(Watchdog, PeriodicSweepFiresUntilStopped)
{
    EventQueue eq;
    queueing::QueueSet queues(1);
    core::QwaitConfig qcfg;
    qcfg.ready.capacity = 1;
    core::QwaitUnit unit(qcfg);
    ASSERT_EQ(unit.qwaitAdd(0, queues[0].doorbellAddr()),
              core::AddResult::Ok);

    fault::WatchdogCluster wc;
    wc.unit = &unit;
    wc.qids.push_back(0);
    fault::RecoveryConfig rcfg;
    rcfg.watchdog = true;
    rcfg.watchdogPeriodUs = 10.0;
    fault::Watchdog dog(eq, queues, {wc}, nullptr, rcfg);
    dog.start();
    eq.run(usToTicks(95.0));
    EXPECT_EQ(dog.sweeps.value(), 9u); // one per 10 us
    dog.stop();
    eq.run(usToTicks(200.0));
    EXPECT_EQ(dog.sweeps.value(), 9u);
}

// ---------------------------------------------------------------------
// Graceful degradation through the full system
// ---------------------------------------------------------------------

dp::SdpConfig
hyperBase()
{
    dp::SdpConfig cfg;
    cfg.plane = dp::PlaneKind::HyperPlane;
    cfg.numCores = 2;
    cfg.numQueues = 48;
    cfg.offeredRatePerSec = 2e5;
    cfg.warmupUs = 500.0;
    cfg.measureUs = 5000.0;
    cfg.seed = 11;
    return cfg;
}

TEST(GracefulDegradation, SaturatedMonitoringSetDemotesAndStillServes)
{
    // Pin the monitoring set far below the queue count: most queues
    // cannot bind and must degrade to software polling — yet every
    // queue keeps making progress and none strands.
    dp::SdpConfig cfg = hyperBase();
    cfg.monitoringCapacity = 16; // 48 queues into 16 entries
    cfg.monitoringMaxWalkSteps = 8;
    cfg.recovery.gracefulDegradation = true;
    cfg.recovery.watchdog = true;

    dp::SdpSystem sys(cfg);
    const dp::SdpResults r = sys.run();

    EXPECT_GT(r.demotions, 0u);
    EXPECT_GT(r.fallbackTasks, 0u);
    EXPECT_GT(r.completions, 0u);
    EXPECT_EQ(sys.stuckQueues(), 0u);
}

TEST(GracefulDegradation, WatchdogPromotesWhenCapacityFrees)
{
    dp::SdpConfig cfg = hyperBase();
    cfg.recovery.gracefulDegradation = true;
    cfg.recovery.watchdog = true;
    dp::SdpSystem sys(cfg);

    core::QwaitUnit *unit = sys.qwaitUnit(0);
    ASSERT_NE(unit, nullptr);
    ASSERT_NE(sys.fallbackSet(0), nullptr);

    // Manually demote queue 5 (as a capacity-exhaustion event would).
    ASSERT_TRUE(unit->qwaitRemove(5));
    sys.fallbackSet(0)->add(5);
    EXPECT_TRUE(sys.fallbackSet(0)->contains(5));

    // The sweep retries QWAIT-ADD and promotes it back.
    sys.watchdog()->sweepOnce();
    EXPECT_FALSE(sys.fallbackSet(0)->contains(5));
    EXPECT_TRUE(unit->doorbellOf(5).has_value());
    EXPECT_EQ(sys.watchdog()->promotions.value(), 1u);
}

TEST(GracefulDegradation, BindFailureWithoutRecoveryIsFatalOnlyThere)
{
    // With degradation off the same saturated config would hp_fatal at
    // build time; this test only checks the recovering path constructs.
    dp::SdpConfig cfg = hyperBase();
    cfg.monitoringCapacity = 16;
    cfg.monitoringMaxWalkSteps = 8;
    cfg.recovery.gracefulDegradation = true;
    EXPECT_NO_THROW(dp::SdpSystem sys(cfg));
}

// ---------------------------------------------------------------------
// Seeded fault campaigns (the acceptance scenario)
// ---------------------------------------------------------------------

dp::SdpConfig
campaignConfig(bool recovery)
{
    dp::SdpConfig cfg = hyperBase();
    cfg.fault.dropSnoopRate = 0.10;
    cfg.recovery.watchdog = recovery;
    cfg.recovery.gracefulDegradation = recovery;
    cfg.recovery.watchdogPeriodUs = 25.0;
    return cfg;
}

TEST(FaultCampaign, RecoveredRunIsDeterministicAndBalancesLedger)
{
    std::vector<dp::SdpResults> runs;
    for (int i = 0; i < 2; ++i) {
        dp::SdpSystem sys(campaignConfig(true));
        runs.push_back(sys.run());
        EXPECT_EQ(sys.stuckQueues(), 0u);
    }
    const dp::SdpResults &a = runs[0], &b = runs[1];

    // Faults actually fired, and every lost notification is accounted
    // for: injected == watchdog-recovered + self-recovered + open.
    EXPECT_GT(a.snoopsDropped, 0u);
    EXPECT_GT(a.lostInjected, 0u);
    EXPECT_GT(a.watchdogRecoveries, 0u);
    EXPECT_EQ(a.lostInjected,
              a.watchdogRecoveries + a.selfRecoveries + a.lostOutstanding);

    // Same seed, same plan: bit-identical campaign.
    EXPECT_EQ(a.completions, b.completions);
    EXPECT_EQ(a.snoopsDropped, b.snoopsDropped);
    EXPECT_EQ(a.lostInjected, b.lostInjected);
    EXPECT_EQ(a.watchdogRecoveries, b.watchdogRecoveries);
    EXPECT_EQ(a.selfRecoveries, b.selfRecoveries);
    EXPECT_EQ(a.watchdogSweeps, b.watchdogSweeps);
    EXPECT_EQ(a.p99LatencyUs, b.p99LatencyUs);
    EXPECT_EQ(a.avgLatencyUs, b.avgLatencyUs);
}

TEST(FaultCampaign, RecoveredRunDrainsEveryTask)
{
    // Manual drive: inject 10% lost doorbells for a window, stop the
    // source, and keep the clock running (watchdog included) — every
    // injected task must complete and the ledger must close.
    dp::SdpSystem sys(campaignConfig(true));
    for (unsigned i = 0; i < sys.config().numCores; ++i)
        sys.core(i).start();
    sys.source().start();
    sys.eventQueue().run(usToTicks(5000.0));
    sys.source().stop();

    for (int spin = 0; spin < 100 && sys.queues().totalBacklog() > 0;
         ++spin) {
        sys.eventQueue().run(sys.eventQueue().now() + usToTicks(100.0));
    }

    EXPECT_EQ(sys.queues().totalBacklog(), 0u);
    EXPECT_EQ(sys.stuckQueues(), 0u);
    ASSERT_NE(sys.faultInjector(), nullptr);
    EXPECT_EQ(sys.faultInjector()->outstandingLost(), 0u);
    EXPECT_GT(sys.faultInjector()->lostInjected.value(), 0u);
    EXPECT_EQ(sys.faultInjector()->lostInjected.value(),
              sys.faultInjector()->watchdogRecovered.value() +
                  sys.faultInjector()->selfRecovered.value());
}

TEST(FaultCampaign, NoRecoveryStrandsQueues)
{
    // Negative control: same faults, recovery off.  Dropped doorbells
    // permanently strand queues (armed + nonempty + never ready).
    dp::SdpSystem sys(campaignConfig(false));
    for (unsigned i = 0; i < sys.config().numCores; ++i)
        sys.core(i).start();
    sys.source().start();
    sys.eventQueue().run(usToTicks(5000.0));
    sys.source().stop();
    // Generous drain: without a watchdog nothing rescues the strands.
    sys.eventQueue().run(sys.eventQueue().now() + usToTicks(20000.0));

    EXPECT_GT(sys.stuckQueues(), 0u);
    EXPECT_GT(sys.queues().totalBacklog(), 0u);
    ASSERT_NE(sys.faultInjector(), nullptr);
    EXPECT_GT(sys.faultInjector()->outstandingLost(), 0u);
}

TEST(FaultCampaign, SuppressedWakesAreRefiredByWatchdog)
{
    // Swallow every wake callback: cores would sleep forever on the
    // first empty ready set.  The watchdog's re-fire path (which
    // bypasses the suppression) keeps the plane alive.
    dp::SdpConfig cfg = hyperBase();
    cfg.fault.suppressWakeRate = 1.0;
    cfg.recovery.watchdog = true;
    cfg.recovery.watchdogPeriodUs = 25.0;

    dp::SdpSystem sys(cfg);
    const dp::SdpResults r = sys.run();
    EXPECT_GT(r.wakesSuppressed, 0u);
    EXPECT_GT(r.wakeRefires, 0u);
    EXPECT_GT(r.completions, 0u);
    EXPECT_EQ(sys.stuckQueues(), 0u);
}

TEST(FaultCampaign, StormsAndSpuriousWakesAreFilteredHarmlessly)
{
    dp::SdpConfig cfg = hyperBase();
    cfg.fault.spuriousWakesPerSec = 5e4;
    cfg.fault.stormRatePerSec = 5e3;
    cfg.fault.stormBurst = 8;
    cfg.recovery.watchdog = true;

    dp::SdpSystem sys(cfg);
    const dp::SdpResults r = sys.run();
    EXPECT_GT(r.spuriousInjected, 0u);
    EXPECT_GT(r.stormWrites, 0u);
    // QWAIT-VERIFY filtered the noise; the plane still completes work
    // and nothing strands.
    EXPECT_GT(r.spuriousWakeups, 0u);
    EXPECT_GT(r.completions, 0u);
    EXPECT_EQ(sys.stuckQueues(), 0u);
}

TEST(FaultCampaign, DelayedSnoopsSelfHealOrAreRescued)
{
    dp::SdpConfig cfg = hyperBase();
    cfg.fault.delaySnoopRate = 0.2;
    cfg.fault.delayMeanUs = 5.0;
    cfg.recovery.watchdog = true;

    dp::SdpSystem sys(cfg);
    const dp::SdpResults r = sys.run();
    EXPECT_GT(r.snoopsDelayed, 0u);
    // Delays never enter the lost ledger (the snoop still arrives).
    EXPECT_EQ(r.lostInjected, 0u);
    EXPECT_GT(r.completions, 0u);
    EXPECT_EQ(sys.stuckQueues(), 0u);
}

} // namespace
} // namespace hyperplane
