/**
 * @file
 * Tests for the UDP server wire codec: round-trips, odd-length
 * checksums, and fail-closed parsing of malformed datagrams.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "server/flow.hh"
#include "server/wire.hh"
#include "sim/rng.hh"

namespace hyperplane {
namespace server {
namespace {

wire::RequestHeader
sampleRequest(std::uint32_t payloadLen)
{
    wire::RequestHeader h;
    h.opcode = wire::Opcode::Steer;
    h.seq = 0x0123456789abcdefULL;
    h.clientTimeNs = 0xfedcba9876543210ULL;
    h.flowId = 0xdeadbeef;
    h.payloadLen = payloadLen;
    return h;
}

std::vector<std::uint8_t>
somePayload(std::size_t n)
{
    std::vector<std::uint8_t> p(n);
    for (std::size_t i = 0; i < n; ++i)
        p[i] = static_cast<std::uint8_t>(i * 131 + 7);
    return p;
}

TEST(ServerWire, RequestRoundTrip)
{
    const auto payload = somePayload(48);
    const auto hdr = sampleRequest(48);
    std::uint8_t buf[wire::maxDatagramBytes];
    const std::size_t n =
        wire::buildRequest(buf, sizeof(buf), hdr, payload.data());
    ASSERT_EQ(n, wire::RequestHeader::wireSize + 48);

    const auto p = wire::parseRequest(buf, n);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->opcode, hdr.opcode);
    EXPECT_EQ(p->seq, hdr.seq);
    EXPECT_EQ(p->clientTimeNs, hdr.clientTimeNs);
    EXPECT_EQ(p->flowId, hdr.flowId);
    EXPECT_EQ(p->payloadLen, hdr.payloadLen);
    EXPECT_EQ(std::memcmp(buf + wire::RequestHeader::wireSize,
                          payload.data(), payload.size()),
              0);
}

TEST(ServerWire, ResponseRoundTrip)
{
    const auto payload = somePayload(7);
    wire::ResponseHeader hdr;
    hdr.opcode = wire::Opcode::Encap;
    hdr.seq = 42;
    hdr.clientTimeNs = 1234567;
    hdr.flowId = 9;
    hdr.status = wire::statusBadPayload;
    hdr.payloadLen = 7;
    std::uint8_t buf[wire::maxDatagramBytes];
    const std::size_t n =
        wire::buildResponse(buf, sizeof(buf), hdr, payload.data());
    ASSERT_EQ(n, wire::ResponseHeader::wireSize + 7);

    const auto p = wire::parseResponse(buf, n);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->status, wire::statusBadPayload);
    EXPECT_EQ(p->seq, 42u);
    EXPECT_EQ(p->payloadLen, 7u);
}

TEST(ServerWire, TypedRejectStatusesRoundTrip)
{
    // Payload-free typed rejects are what the RX admission path emits;
    // they must survive the codec and classify as sheds on the client.
    for (const wire::Status s :
         {wire::statusRateLimited, wire::statusShed}) {
        wire::ResponseHeader hdr;
        hdr.opcode = wire::Opcode::Echo;
        hdr.seq = 7;
        hdr.clientTimeNs = 99;
        hdr.flowId = 3;
        hdr.status = s;
        hdr.payloadLen = 0;
        std::uint8_t buf[wire::maxDatagramBytes];
        const std::size_t n =
            wire::buildResponse(buf, sizeof(buf), hdr, nullptr);
        ASSERT_EQ(n, wire::ResponseHeader::wireSize);

        const auto p = wire::parseResponse(buf, n);
        ASSERT_TRUE(p.has_value());
        EXPECT_EQ(p->status, static_cast<std::uint32_t>(s));
        EXPECT_TRUE(wire::isShedStatus(p->status));
    }
    EXPECT_FALSE(wire::isShedStatus(wire::statusOk));
    EXPECT_FALSE(wire::isShedStatus(wire::statusBadPayload));
    EXPECT_STREQ(wire::toString(wire::statusRateLimited),
                 "rate-limited");
    EXPECT_STREQ(wire::toString(wire::statusShed), "shed");
}

TEST(ServerWire, OddLengthPayloadsChecksumCorrectly)
{
    // The checksum skips the 2-byte field at an even offset, so only
    // the *final* partial chunk may be odd — verify every datagram
    // parity round-trips.
    for (std::uint32_t len : {0u, 1u, 2u, 3u, 5u, 31u, 32u, 33u, 255u}) {
        const auto payload = somePayload(len);
        const auto hdr = sampleRequest(len);
        std::uint8_t buf[wire::maxDatagramBytes];
        const std::size_t n = wire::buildRequest(
            buf, sizeof(buf), hdr, len ? payload.data() : nullptr);
        ASSERT_GT(n, 0u) << "len " << len;
        EXPECT_TRUE(wire::parseRequest(buf, n).has_value())
            << "len " << len;
    }
}

TEST(ServerWire, BuildRejectsOversizedDatagrams)
{
    const auto hdr = sampleRequest(
        static_cast<std::uint32_t>(wire::maxDatagramBytes));
    const auto payload = somePayload(wire::maxDatagramBytes);
    std::uint8_t buf[wire::maxDatagramBytes * 2];
    EXPECT_EQ(wire::buildRequest(buf, sizeof(buf), hdr, payload.data()),
              0u);
}

TEST(ServerWire, ParseFailsClosedOnHeaderCorruption)
{
    const auto payload = somePayload(20);
    const auto hdr = sampleRequest(20);
    std::uint8_t good[wire::maxDatagramBytes];
    const std::size_t n =
        wire::buildRequest(good, sizeof(good), hdr, payload.data());

    // Any single-bit flip anywhere in the datagram must be rejected —
    // either a field check or the checksum catches it.
    Rng rng(0x57495245);
    for (int iter = 0; iter < 500; ++iter) {
        std::uint8_t bad[wire::maxDatagramBytes];
        std::memcpy(bad, good, n);
        bad[rng.uniformInt(n)] ^= 1u << rng.uniformInt(8);
        EXPECT_FALSE(wire::parseRequest(bad, n).has_value());
    }
}

TEST(ServerWire, ParseFailsClosedOnTruncation)
{
    const auto payload = somePayload(33);
    const auto hdr = sampleRequest(33);
    std::uint8_t buf[wire::maxDatagramBytes];
    const std::size_t n =
        wire::buildRequest(buf, sizeof(buf), hdr, payload.data());
    for (std::size_t len = 0; len < n; ++len)
        EXPECT_FALSE(wire::parseRequest(buf, len).has_value())
            << "len " << len;
}

TEST(ServerWire, ParseRejectsWrongMagicVersionOpcode)
{
    const auto hdr = sampleRequest(0);
    std::uint8_t buf[wire::maxDatagramBytes];
    const std::size_t n = wire::buildRequest(buf, sizeof(buf), hdr,
                                             nullptr);

    std::uint8_t tampered[wire::maxDatagramBytes];
    // Response magic in a request parse.
    std::memcpy(tampered, buf, n);
    tampered[3] = 'S';
    EXPECT_FALSE(wire::parseRequest(tampered, n).has_value());
    // Unknown version.
    std::memcpy(tampered, buf, n);
    tampered[4] = 99;
    EXPECT_FALSE(wire::parseRequest(tampered, n).has_value());
    // Unknown opcode (out of range).
    std::memcpy(tampered, buf, n);
    tampered[5] = wire::numOpcodes;
    EXPECT_FALSE(wire::parseRequest(tampered, n).has_value());
}

TEST(ServerWire, AppOpcodeSpaceIsExactlyThreeAssigned)
{
    // The opcode space: 0..2 stateless, 3..5 the stateful app suite,
    // 6..15 reserved for future apps (rejected until assigned), >= 16
    // unassigned.  The single `opcode < numOpcodes` bound enforces all
    // of it, so precheck and full parse agree by construction.
    static_assert(wire::firstAppOpcode == 3);
    static_assert(wire::numOpcodes == 6);
    static_assert(wire::appOpcodeRangeEnd == 16);
    static_assert(wire::isAppOpcode(wire::Opcode::HeavyHitter));
    static_assert(wire::isAppOpcode(wire::Opcode::Conntrack));
    static_assert(wire::isAppOpcode(wire::Opcode::SpinRtt));
    static_assert(!wire::isAppOpcode(wire::Opcode::Echo));
    static_assert(!wire::isAppOpcode(wire::Opcode::Encap));
    static_assert(!wire::isAppOpcode(wire::Opcode::Steer));

    EXPECT_STREQ(wire::toString(wire::Opcode::HeavyHitter),
                 "heavy-hitter");
    EXPECT_STREQ(wire::toString(wire::Opcode::Conntrack), "conntrack");
    EXPECT_STREQ(wire::toString(wire::Opcode::SpinRtt), "spin-rtt");

    // Assigned app opcodes build + parse; every reserved or unassigned
    // value fails closed, through both the scalar parser and the SIMD
    // precheck the RX path actually runs.
    for (unsigned op = 0; op < 256; ++op) {
        auto hdr = sampleRequest(8);
        hdr.opcode = static_cast<wire::Opcode>(op);
        const auto payload = somePayload(8);
        std::uint8_t buf[wire::maxDatagramBytes];
        const std::size_t n =
            wire::buildRequest(buf, sizeof(buf), hdr, payload.data());
        if (op >= wire::numOpcodes) {
            // buildRequest may refuse outright or emit a datagram the
            // parser rejects; either way nothing out-of-range passes.
            if (n == 0)
                continue;
        }
        ASSERT_GT(n, 0u) << "opcode " << op;

        const auto parsed = wire::parseRequest(buf, n);
        const std::uint8_t *pkts[1] = {buf};
        const std::uint32_t lens[1] = {static_cast<std::uint32_t>(n)};
        std::uint8_t ok[1] = {};
        wire::precheckRequests(pkts, lens, 1, ok);
        EXPECT_EQ(parsed.has_value(), op < wire::numOpcodes)
            << "opcode " << op;
        EXPECT_EQ(ok[0] != 0, op < wire::numOpcodes) << "opcode " << op;
    }
}

TEST(ServerWire, AppRequestHeadersFuzzRoundTrip)
{
    // Request headers carrying the new app opcodes with app-sized
    // payloads round-trip through build/parse; bit flips fail closed —
    // the same guarantees the stateless opcodes already had.
    Rng rng(0x41505046);
    for (int iter = 0; iter < 300; ++iter) {
        const unsigned op =
            wire::firstAppOpcode +
            rng.uniformInt(wire::numOpcodes - wire::firstAppOpcode);
        const std::uint32_t plen = rng.uniformInt(64);
        auto hdr = sampleRequest(plen);
        hdr.opcode = static_cast<wire::Opcode>(op);
        hdr.flowId = static_cast<std::uint32_t>(rng.next());
        hdr.seq = rng.next();
        const auto payload = somePayload(plen);
        std::uint8_t buf[wire::maxDatagramBytes];
        const std::size_t n = wire::buildRequest(
            buf, sizeof(buf), hdr, plen ? payload.data() : nullptr);
        ASSERT_GT(n, 0u);

        const auto p = wire::parseRequest(buf, n);
        ASSERT_TRUE(p.has_value());
        EXPECT_EQ(static_cast<unsigned>(p->opcode), op);
        EXPECT_EQ(p->flowId, hdr.flowId);
        EXPECT_EQ(p->seq, hdr.seq);
        EXPECT_EQ(p->payloadLen, plen);

        std::uint8_t bad[wire::maxDatagramBytes];
        std::memcpy(bad, buf, n);
        bad[rng.uniformInt(n)] ^= 1u << rng.uniformInt(8);
        EXPECT_FALSE(wire::parseRequest(bad, n).has_value());
    }
}

TEST(ServerWire, RandomBytesNeverParse)
{
    // Fuzz: random datagrams must be rejected (the 16-bit checksum plus
    // magic/version/length checks make an accidental pass vanishingly
    // unlikely) and must never crash (ASan builds check bounds).
    Rng rng(0x46555a5a);
    std::uint8_t buf[256];
    for (int iter = 0; iter < 5000; ++iter) {
        const std::size_t len = rng.uniformInt(sizeof(buf) + 1);
        for (std::size_t i = 0; i < len; ++i)
            buf[i] = static_cast<std::uint8_t>(rng.next());
        EXPECT_FALSE(wire::parseRequest(buf, len).has_value());
        EXPECT_FALSE(wire::parseResponse(buf, len).has_value());
    }
}

TEST(ServerWire, BuildResponseInPlaceMatchesBuildResponse)
{
    // The zero-copy serializer must be byte-for-byte the classic one:
    // same header fields, payload pre-placed at buf + wireSize.
    for (std::uint32_t len : {0u, 1u, 7u, 8u, 33u, 512u, 2011u, 2012u}) {
        const auto payload = somePayload(len);
        wire::ResponseHeader hdr;
        hdr.opcode = wire::Opcode::Echo;
        hdr.seq = 0x1122334455667788ULL;
        hdr.clientTimeNs = 0x99aabbccddeeff00ULL;
        hdr.flowId = 0x42;
        hdr.status = wire::statusOk;
        hdr.payloadLen = len;

        std::uint8_t classic[wire::maxDatagramBytes];
        const std::size_t want = wire::buildResponse(
            classic, sizeof(classic), hdr, len ? payload.data() : nullptr);
        ASSERT_GT(want, 0u) << "len " << len;

        std::uint8_t inPlace[wire::maxDatagramBytes];
        if (len != 0)
            std::memcpy(inPlace + wire::ResponseHeader::wireSize,
                        payload.data(), len);
        const std::size_t got =
            wire::buildResponseInPlace(inPlace, sizeof(inPlace), hdr);
        ASSERT_EQ(got, want) << "len " << len;
        EXPECT_EQ(std::memcmp(classic, inPlace, got), 0)
            << "len " << len;
        EXPECT_TRUE(wire::parseResponse(inPlace, got).has_value());
    }
}

TEST(ServerWire, BuildResponseInPlaceRejectsOversize)
{
    wire::ResponseHeader hdr;
    hdr.payloadLen = static_cast<std::uint32_t>(
        wire::maxDatagramBytes - wire::ResponseHeader::wireSize + 1);
    std::uint8_t buf[wire::maxDatagramBytes * 2] = {};
    EXPECT_EQ(wire::buildResponseInPlace(buf, sizeof(buf), hdr), 0u);
    // Too small a buffer for even a fitting payload.
    hdr.payloadLen = 64;
    EXPECT_EQ(wire::buildResponseInPlace(buf, 80, hdr), 0u);
}

TEST(ServerWire, PrecheckAgreesWithParseRequest)
{
    // precheck + parsePrechecked must accept exactly what parseRequest
    // accepts, over valid, bit-flipped, truncated, and random inputs.
    Rng rng(0x50524543);
    std::vector<std::vector<std::uint8_t>> storage;
    std::vector<std::uint32_t> lens;
    for (int iter = 0; iter < 400; ++iter) {
        std::vector<std::uint8_t> d(wire::maxDatagramBytes, 0);
        const std::uint32_t plen = rng.uniformInt(64);
        auto hdr = sampleRequest(plen);
        hdr.opcode =
            static_cast<wire::Opcode>(rng.uniformInt(wire::numOpcodes));
        const auto payload = somePayload(plen);
        std::size_t n = wire::buildRequest(d.data(), d.size(), hdr,
                                           plen ? payload.data()
                                                : nullptr);
        switch (rng.uniformInt(4)) {
          case 0: // pristine
            break;
          case 1: // single bit flip anywhere
            d[rng.uniformInt(n)] ^= 1u << rng.uniformInt(8);
            break;
          case 2: // truncation
            n = rng.uniformInt(n + 1);
            break;
          default: // random garbage
            n = 8 + rng.uniformInt(wire::RequestHeader::wireSize);
            for (std::size_t i = 0; i < n; ++i)
                d[i] = static_cast<std::uint8_t>(rng.next());
            break;
        }
        storage.push_back(std::move(d));
        lens.push_back(static_cast<std::uint32_t>(n));
    }
    std::vector<const std::uint8_t *> pkts;
    for (const auto &d : storage)
        pkts.push_back(d.data());
    std::vector<std::uint8_t> ok(storage.size());
    wire::precheckRequests(pkts.data(), lens.data(), storage.size(),
                           ok.data());
    for (std::size_t i = 0; i < storage.size(); ++i) {
        const auto whole = wire::parseRequest(pkts[i], lens[i]);
        if (!ok[i]) {
            // Precheck rejection must imply full-parse rejection.
            EXPECT_FALSE(whole.has_value()) << "pkt " << i;
            continue;
        }
        const auto fast = wire::parseRequestPrechecked(pkts[i], lens[i]);
        ASSERT_EQ(fast.has_value(), whole.has_value()) << "pkt " << i;
        if (fast) {
            EXPECT_EQ(fast->seq, whole->seq);
            EXPECT_EQ(fast->opcode, whole->opcode);
            EXPECT_EQ(fast->flowId, whole->flowId);
            EXPECT_EQ(fast->payloadLen, whole->payloadLen);
        }
    }
}

TEST(ServerFlow, HashIsDeterministicAndSpreads)
{
    FlowKey a{0x0a000001, 0x0a000002, 1234, 5678, 7};
    FlowKey b = a;
    EXPECT_EQ(flowHash(a), flowHash(b));
    b.innerFlow = 8;
    EXPECT_NE(flowHash(a), flowHash(b));

    // Steering must use the whole key and spread flows across queues.
    constexpr unsigned numQueues = 16;
    std::vector<unsigned> hits(numQueues, 0);
    for (std::uint32_t f = 0; f < 4096; ++f) {
        FlowKey k = a;
        k.innerFlow = f;
        hits[steerToQueue(k, numQueues)]++;
    }
    for (unsigned q = 0; q < numQueues; ++q)
        EXPECT_GT(hits[q], 4096u / numQueues / 4) << "queue " << q;
}

} // namespace
} // namespace server
} // namespace hyperplane
