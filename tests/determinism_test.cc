/**
 * @file
 * Tests for the parallel sweep runner: parallelFor mechanics, and the
 * headline contract that --jobs N produces byte-identical exports to
 * --jobs 1 for figure-style sweeps.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "dp/sdp_system.hh"
#include "harness/export.hh"
#include "harness/parallel.hh"
#include "harness/runner.hh"

namespace hyperplane {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    for (const unsigned jobs : {1u, 2u, 3u, 8u, 17u}) {
        constexpr std::size_t n = 1000;
        std::vector<std::atomic<int>> hits(n);
        harness::parallelFor(n, jobs, [&hits](std::size_t i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
        });
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(hits[i].load(), 1) << "index " << i << " with "
                                         << jobs << " jobs";
    }
}

TEST(ParallelFor, HandlesEdgeSizes)
{
    std::atomic<int> calls{0};
    harness::parallelFor(0, 4, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0);
    harness::parallelFor(1, 4, [&](std::size_t i) {
        EXPECT_EQ(i, 0u);
        ++calls;
    });
    EXPECT_EQ(calls.load(), 1);
    // More jobs than work: still every index once.
    harness::parallelFor(3, 64, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 4);
}

TEST(ParallelFor, SequentialModeRunsInIndexOrder)
{
    // jobs == 1 is the compatibility path: strict index order on the
    // calling thread, no pool.
    std::vector<std::size_t> order;
    harness::parallelFor(16, 1,
                         [&order](std::size_t i) { order.push_back(i); });
    ASSERT_EQ(order.size(), 16u);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(ParallelFor, PropagatesFirstException)
{
    for (const unsigned jobs : {1u, 4u}) {
        std::atomic<int> started{0};
        try {
            harness::parallelFor(64, jobs, [&](std::size_t i) {
                ++started;
                if (i == 7)
                    throw std::runtime_error("boom");
            });
            FAIL() << "expected exception with " << jobs << " jobs";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "boom");
        }
        EXPECT_GE(started.load(), 1);
    }
}

TEST(ParallelFor, WorkerExceptionDoesNotLoseOtherWork)
{
    // After a throw the pool drains without deadlock and the call still
    // returns (by throwing); completed indices stay completed.
    std::vector<std::atomic<int>> hits(128);
    EXPECT_THROW(
        harness::parallelFor(128, 4,
                             [&hits](std::size_t i) {
                                 if (i == 0)
                                     throw std::logic_error("first");
                                 hits[i].fetch_add(1);
                             }),
        std::logic_error);
    for (std::size_t i = 1; i < hits.size(); ++i)
        ASSERT_LE(hits[i].load(), 1);
}

TEST(JobsFromArgs, ParsesFlag)
{
    const char *argv1[] = {"bench", "--jobs", "6"};
    EXPECT_EQ(harness::jobsFromArgs(3, const_cast<char **>(argv1)), 6u);
    const char *argv2[] = {"bench", "--jobs", "0"};
    EXPECT_EQ(harness::jobsFromArgs(3, const_cast<char **>(argv2)), 1u);
    const char *argv3[] = {"bench"};
    EXPECT_EQ(harness::jobsFromArgs(1, const_cast<char **>(argv3)),
              harness::defaultJobs());
    EXPECT_GE(harness::defaultJobs(), 1u);
}

// --- byte-identical exports across jobs counts -----------------------

/** Short fig10-style series: multicore tail-latency load sweep. */
std::vector<harness::SweepSeries>
shortTailSeries()
{
    std::vector<harness::SweepSeries> series;
    for (const auto plane :
         {dp::PlaneKind::Spinning, dp::PlaneKind::HyperPlane}) {
        for (const auto org :
             {dp::QueueOrg::ScaleOut, dp::QueueOrg::ScaleUpAll}) {
            dp::SdpConfig cfg;
            cfg.numCores = 4;
            cfg.numQueues = 64;
            cfg.workload = workloads::Kind::PacketEncapsulation;
            cfg.shape = traffic::Shape::FB;
            cfg.plane = plane;
            cfg.org = org;
            cfg.warmupUs = 100.0;
            cfg.measureUs = 400.0;
            cfg.seed = 97;
            const std::string name =
                std::string(plane == dp::PlaneKind::Spinning ? "spin"
                                                             : "hp") +
                (org == dp::QueueOrg::ScaleOut ? "-out" : "-up");
            series.push_back({name, cfg});
        }
    }
    return series;
}

std::string
tailSweepJson(unsigned jobs)
{
    const std::vector<double> loads{0.2, 0.5, 0.8};
    const auto sweeps =
        harness::runLoadSweeps(shortTailSeries(), loads, jobs);
    std::vector<harness::NamedSweep> named;
    for (const auto &sw : sweeps)
        named.push_back({sw.name, sw.points});
    return harness::loadSweepJson(named);
}

TEST(SweepDeterminism, LoadSweepsByteIdenticalAcrossJobs)
{
    const std::string seq = tailSweepJson(1);
    EXPECT_FALSE(seq.empty());
    EXPECT_EQ(seq, tailSweepJson(8));
}

TEST(SweepDeterminism, LoadSweepsRepeatable)
{
    // Same jobs count twice: guards against any hidden shared state
    // between sweep points (RNG, registries, statics).
    EXPECT_EQ(tailSweepJson(4), tailSweepJson(4));
}

/** Short fig09-style grid: zero-load latency across queue counts. */
std::string
zeroLoadJson(unsigned jobs)
{
    std::vector<dp::SdpConfig> grid;
    for (const auto plane :
         {dp::PlaneKind::Spinning, dp::PlaneKind::HyperPlane}) {
        for (const int queues : {10, 100, 400}) {
            dp::SdpConfig cfg;
            cfg.plane = plane;
            cfg.numCores = 1;
            cfg.numQueues = queues;
            cfg.workload = workloads::Kind::PacketEncapsulation;
            cfg.shape = traffic::Shape::SQ;
            cfg.seed = 23;
            grid.push_back(harness::zeroLoadConfig(cfg, 300));
        }
    }
    const auto results = harness::runConfigs(grid, jobs);
    std::string out = "[";
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (i != 0)
            out += ',';
        out += harness::resultsJson(results[i]);
    }
    return out + "]";
}

TEST(SweepDeterminism, ZeroLoadGridByteIdenticalAcrossJobs)
{
    const std::string seq = zeroLoadJson(1);
    EXPECT_FALSE(seq.empty());
    EXPECT_EQ(seq, zeroLoadJson(8));
}

TEST(SweepDeterminism, CapacityPropagationMatchesSequential)
{
    // fig12-style dependency: a series calibrated from another series'
    // capacity (capacityFrom) must see the same capacity under any jobs
    // count.
    auto series = shortTailSeries();
    dp::SdpConfig dependent = series[1].cfg; // hp reusing spin capacity
    series.push_back({"dependent", dependent, 0});
    const std::vector<double> loads{0.4};
    const auto seq = harness::runLoadSweeps(series, loads, 1);
    const auto par = harness::runLoadSweeps(series, loads, 8);
    ASSERT_EQ(seq.size(), par.size());
    for (std::size_t i = 0; i < seq.size(); ++i) {
        EXPECT_EQ(seq[i].name, par[i].name);
        EXPECT_EQ(seq[i].capacityPerSec, par[i].capacityPerSec);
    }
    EXPECT_EQ(seq.back().capacityPerSec, seq.front().capacityPerSec);
}

} // namespace
} // namespace hyperplane
