/**
 * @file
 * Unit and concurrency tests for the lock-free SPSC ring.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "queueing/spsc_ring.hh"

namespace hyperplane {
namespace queueing {
namespace {

TEST(SpscRing, StartsEmpty)
{
    SpscRing<int> ring(8);
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.size(), 0u);
    EXPECT_FALSE(ring.tryPop().has_value());
}

TEST(SpscRing, CapacityRoundsToPowerOfTwo)
{
    EXPECT_EQ(SpscRing<int>(5).capacity(), 8u);
    EXPECT_EQ(SpscRing<int>(8).capacity(), 8u);
    EXPECT_EQ(SpscRing<int>(9).capacity(), 16u);
}

TEST(SpscRing, PushPopFifoOrder)
{
    SpscRing<int> ring(8);
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(ring.tryPush(i));
    for (int i = 0; i < 5; ++i) {
        const auto v = ring.tryPop();
        ASSERT_TRUE(v.has_value());
        EXPECT_EQ(*v, i);
    }
}

TEST(SpscRing, FullRingRejectsPush)
{
    SpscRing<int> ring(4);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(ring.tryPush(i));
    EXPECT_FALSE(ring.tryPush(99));
    EXPECT_EQ(ring.size(), 4u);
    ring.tryPop();
    EXPECT_TRUE(ring.tryPush(99));
}

TEST(SpscRing, WrapsAroundManyTimes)
{
    SpscRing<int> ring(4);
    for (int i = 0; i < 1000; ++i) {
        ASSERT_TRUE(ring.tryPush(i));
        const auto v = ring.tryPop();
        ASSERT_TRUE(v.has_value());
        EXPECT_EQ(*v, i);
    }
}

TEST(SpscRing, MoveOnlyTypesSupported)
{
    SpscRing<std::unique_ptr<int>> ring(4);
    EXPECT_TRUE(ring.tryPush(std::make_unique<int>(42)));
    const auto v = ring.tryPop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(**v, 42);
}

TEST(SpscRing, TwoThreadStressPreservesSequence)
{
    SpscRing<std::uint64_t> ring(1024);
    constexpr std::uint64_t total = 200000;
    std::uint64_t received = 0;
    bool ordered = true;

    std::thread consumer([&] {
        std::uint64_t expect = 0;
        while (expect < total) {
            const auto v = ring.tryPop();
            if (!v)
                continue;
            if (*v != expect)
                ordered = false;
            ++expect;
            ++received;
        }
    });
    for (std::uint64_t i = 0; i < total; ++i) {
        while (!ring.tryPush(i))
            std::this_thread::yield();
    }
    consumer.join();
    EXPECT_TRUE(ordered);
    EXPECT_EQ(received, total);
    EXPECT_TRUE(ring.empty());
}

} // namespace
} // namespace queueing
} // namespace hyperplane
