/**
 * @file
 * Unit tests for the Programmable Priority Arbiters: grant semantics,
 * gate-level equivalence, and the delay/area scaling the paper's
 * Section IV-B argues for.
 */

#include <gtest/gtest.h>

#include "core/ppa.hh"
#include "sim/rng.hh"

namespace hyperplane {
namespace core {
namespace {

BitVec
fromBits(std::initializer_list<unsigned> setBits, unsigned n)
{
    BitVec v(n);
    for (unsigned b : setBits)
        v.set(b);
    return v;
}

TEST(Ppa, EmptyReadyVectorGrantsNothing)
{
    BrentKungPpa ppa;
    EXPECT_EQ(ppa.select(BitVec(64), 0), noGrant);
    EXPECT_EQ(ppa.selectPrefixNetwork(BitVec(64), 10), noGrant);
    RipplePpa rip;
    EXPECT_EQ(rip.selectBitSlice(BitVec(64), 3), noGrant);
}

TEST(Ppa, GrantsAtOrAfterPriority)
{
    BrentKungPpa ppa;
    const BitVec r = fromBits({3, 10, 50}, 64);
    EXPECT_EQ(ppa.select(r, 0), 3);
    EXPECT_EQ(ppa.select(r, 3), 3);
    EXPECT_EQ(ppa.select(r, 4), 10);
    EXPECT_EQ(ppa.select(r, 11), 50);
}

TEST(Ppa, WrapsAroundPastHighestBit)
{
    BrentKungPpa ppa;
    const BitVec r = fromBits({3, 10}, 64);
    EXPECT_EQ(ppa.select(r, 11), 3); // wrap
    EXPECT_EQ(ppa.select(r, 63), 3);
}

TEST(Ppa, SingleBitAlwaysGranted)
{
    BrentKungPpa ppa;
    const BitVec r = fromBits({17}, 100);
    for (unsigned p = 0; p < 100; p += 7)
        EXPECT_EQ(ppa.select(r, p), 17);
}

TEST(Ppa, RoundRobinRotationIsFair)
{
    // Granting then moving priority past the grant visits all ready
    // bits in circular order.
    BrentKungPpa ppa;
    const BitVec r = fromBits({2, 30, 64, 90}, 128);
    unsigned priority = 0;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i) {
        const int g = ppa.select(r, priority);
        ASSERT_NE(g, noGrant);
        order.push_back(g);
        priority = (g + 1) % 128;
    }
    EXPECT_EQ(order, (std::vector<int>{2, 30, 64, 90, 2, 30, 64, 90}));
}

TEST(Ppa, RippleBitSliceMatchesWordScan)
{
    RipplePpa ppa;
    Rng rng(123);
    for (int trial = 0; trial < 200; ++trial) {
        const unsigned n = 1 + static_cast<unsigned>(rng.uniformInt(200));
        BitVec r(n);
        const unsigned sets = static_cast<unsigned>(rng.uniformInt(n + 1));
        for (unsigned i = 0; i < sets; ++i)
            r.set(static_cast<unsigned>(rng.uniformInt(n)));
        const unsigned p = static_cast<unsigned>(rng.uniformInt(n));
        EXPECT_EQ(ppa.selectBitSlice(r, p), ppa.select(r, p))
            << "n=" << n << " p=" << p;
    }
}

TEST(Ppa, BrentKungNetworkMatchesWordScan)
{
    BrentKungPpa ppa;
    Rng rng(321);
    for (int trial = 0; trial < 120; ++trial) {
        const unsigned n = 1 + static_cast<unsigned>(rng.uniformInt(300));
        BitVec r(n);
        const unsigned sets = static_cast<unsigned>(rng.uniformInt(n + 1));
        for (unsigned i = 0; i < sets; ++i)
            r.set(static_cast<unsigned>(rng.uniformInt(n)));
        const unsigned p = static_cast<unsigned>(rng.uniformInt(n));
        EXPECT_EQ(ppa.selectPrefixNetwork(r, p), ppa.select(r, p))
            << "n=" << n << " p=" << p;
    }
}

TEST(Ppa, BothArbitersAgreeEverywhereSmall)
{
    // Exhaustive over all 8-bit ready vectors and priorities.
    RipplePpa rip;
    BrentKungPpa bk;
    for (unsigned bits = 0; bits < 256; ++bits) {
        BitVec r(8);
        for (unsigned i = 0; i < 8; ++i) {
            if (bits & (1u << i))
                r.set(i);
        }
        for (unsigned p = 0; p < 8; ++p) {
            EXPECT_EQ(rip.selectBitSlice(r, p),
                      bk.selectPrefixNetwork(r, p))
                << "bits=" << bits << " p=" << p;
        }
    }
}

TEST(Ppa, BrentKungPrefixOpCountMatchesClosedForm)
{
    // Brent-Kung on n = 2^k inputs uses 2n - 2 - log2(n) operators.
    for (unsigned logn = 1; logn <= 10; ++logn) {
        const unsigned n = 1u << logn;
        const auto s = BrentKungPpa::networkStats(n);
        EXPECT_EQ(s.prefixOps, 2ull * n - 2 - logn) << "n=" << n;
    }
}

TEST(Ppa, BrentKungDepthLogarithmic)
{
    // Depth = 2*log2(n) - 1 prefix levels for power-of-two n >= 4
    // (up-sweep log n + down-sweep log n - 1).
    const auto s1024 = BrentKungPpa::networkStats(1024);
    EXPECT_EQ(s1024.levels, 19u);
    const auto s16 = BrentKungPpa::networkStats(16);
    EXPECT_EQ(s16.levels, 7u);
}

TEST(Ppa, RippleDelayLinearBrentKungLogarithmic)
{
    RipplePpa rip;
    BrentKungPpa bk;
    // Ripple doubles with size; Brent-Kung grows by ~2 levels.
    EXPECT_NEAR(rip.delayNs(2048) / rip.delayNs(1024), 2.0, 1e-9);
    EXPECT_LT(bk.delayNs(2048) - bk.delayNs(1024), 0.2);
    // At 1024 bits the parallel-prefix design must be far faster.
    EXPECT_GT(rip.delayNs(1024) / bk.delayNs(1024), 10.0);
}

TEST(Ppa, DelayAndGatesMonotoneInWidth)
{
    BrentKungPpa bk;
    RipplePpa rip;
    double prevBk = 0, prevRip = 0;
    std::uint64_t prevGates = 0;
    for (unsigned n : {16u, 64u, 256u, 1024u, 4096u}) {
        EXPECT_GT(bk.delayNs(n), prevBk);
        EXPECT_GT(rip.delayNs(n), prevRip);
        EXPECT_GT(bk.gateCount(n), prevGates);
        prevBk = bk.delayNs(n);
        prevRip = rip.delayNs(n);
        prevGates = bk.gateCount(n);
    }
}

TEST(Ppa, NamesDistinguishImplementations)
{
    EXPECT_EQ(RipplePpa{}.name(), "ripple");
    EXPECT_EQ(BrentKungPpa{}.name(), "brent-kung");
}

} // namespace
} // namespace core
} // namespace hyperplane
