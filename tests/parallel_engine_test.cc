/**
 * @file
 * Tests for the tick-parallel simulation backends.
 *
 * The load-bearing property is determinism: both backends must be
 * bit-identical to the sequential kernel for any worker count.  Every
 * differential test here therefore runs the same logical program on a
 * plain EventQueue (the golden reference) and on the backend under
 * test, then compares per-partition state trajectories byte for byte.
 * The cross-partition suites (FIFO across thread boundaries, foreign
 * cancel, all-to-all mailbox drain) are in the CI TSan filter.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "dp/sdp_system.hh"
#include "sim/event_queue.hh"
#include "sim/parallel_engine.hh"

namespace hyperplane {
namespace {

// --- deterministic labels + state hashing ----------------------------

std::uint64_t
mix(std::uint64_t h, std::uint64_t v)
{
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h *= 0xff51afd7ed558ccdULL;
    return h ^ (h >> 33);
}

/** splitmix64 step: the per-event decision stream. */
std::uint64_t
next(std::uint64_t &s)
{
    s += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = s;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

// --- LPT partitioner -------------------------------------------------

TEST(ParallelEngine, BalanceByWeightIsBalancedAndPure)
{
    const std::vector<double> w{5, 1, 1, 1, 4, 4, 1, 1};
    const auto a = sim::balanceByWeight(w, 3);
    ASSERT_EQ(a.size(), w.size());
    std::vector<double> load(3, 0.0);
    for (std::size_t i = 0; i < w.size(); ++i) {
        ASSERT_LT(a[i], 3u);
        load[a[i]] += w[i];
    }
    // Total weight 18 over 3 bins; LPT keeps every bin within one
    // heaviest item of the mean.
    for (const double l : load) {
        EXPECT_GE(l, 4.0);
        EXPECT_LE(l, 7.0);
    }
    EXPECT_EQ(a, sim::balanceByWeight(w, 3));
    // Degenerate shapes.
    EXPECT_EQ(sim::balanceByWeight({}, 4), std::vector<unsigned>{});
    EXPECT_EQ(sim::balanceByWeight({1, 2}, 1),
              (std::vector<unsigned>{0, 0}));
}

// --- EpochEngine: randomized differential vs the sequential kernel ---

/**
 * One logical program, runnable on either back end: every event mixes
 * (label, tick) into its partition's state hash, then spawns children
 * whose targets/deltas come from a splitmix stream seeded by the label
 * alone — so the spawn tree is a pure function of the roots, and any
 * execution that honors (tick, seq) order produces identical hashes.
 */
class DiffProgram
{
  public:
    explicit DiffProgram(unsigned partitions)
        : parts_(partitions), state_(partitions, 0), fired_(partitions, 0)
    {
    }

    unsigned partitions() const { return parts_; }
    const std::vector<std::uint64_t> &state() const { return state_; }
    const std::vector<std::uint64_t> &fired() const { return fired_; }

    /** Run on the sequential golden reference. */
    void
    runSequential(Tick until)
    {
        EventQueue eq;
        seedRoots([&](unsigned p, Tick when, std::uint64_t label) {
            scheduleSeq(eq, p, when, label, 0);
        });
        eq.run(until);
    }

    /** Run on the epoch engine with the given worker count. */
    void
    runEpoch(Tick until, unsigned threads)
    {
        sim::EpochEngine eng(parts_, threads);
        seedRoots([&](unsigned p, Tick when, std::uint64_t label) {
            scheduleEpoch(eng, p, when, label, 0);
        });
        eng.run(until);
    }

  private:
    static constexpr unsigned maxGen = 5;

    template <typename ScheduleFn>
    void
    seedRoots(ScheduleFn schedule)
    {
        for (unsigned p = 0; p < parts_; ++p)
            for (unsigned r = 0; r < 3; ++r)
                schedule(p, 1 + r, mix(0xabcdef, p * 100 + r));
    }

    /**
     * The event body.  @p emit schedules a child: (target, when,
     * label, gen).  Children into foreign partitions always target a
     * strictly future tick (the epoch-engine contract); local children
     * may be zero-delta, exercising same-tick sub-rounds.
     */
    template <typename EmitFn>
    void
    fire(unsigned p, Tick now, std::uint64_t label, unsigned gen,
         EmitFn emit)
    {
        state_[p] = mix(state_[p], mix(label, now));
        ++fired_[p];
        if (gen >= maxGen)
            return;
        std::uint64_t s = label;
        const unsigned children = next(s) % 3;
        for (unsigned i = 0; i < children; ++i) {
            const auto target =
                static_cast<unsigned>(next(s) % parts_);
            Tick delta = 1 + next(s) % 400;
            if (target == p && next(s) % 4 == 0)
                delta = 0; // same-tick local spawn
            emit(target, now + delta, mix(label, i + 1), gen + 1);
        }
    }

    void
    scheduleSeq(EventQueue &eq, unsigned p, Tick when,
                std::uint64_t label, unsigned gen)
    {
        eq.schedule(when, [this, &eq, p, label, gen] {
            fire(p, eq.now(), label, gen,
                 [this, &eq](unsigned t, Tick w, std::uint64_t l,
                             unsigned g) { scheduleSeq(eq, t, w, l, g); });
        });
    }

    void
    scheduleEpoch(sim::EpochEngine &eng, unsigned p, Tick when,
                  std::uint64_t label, unsigned gen)
    {
        eng.schedule(p, when, [this, &eng, p, label, gen] {
            fire(p, eng.now(), label, gen,
                 [this, &eng](unsigned t, Tick w, std::uint64_t l,
                              unsigned g) {
                     scheduleEpoch(eng, t, w, l, g);
                 });
        });
    }

    unsigned parts_;
    std::vector<std::uint64_t> state_;
    std::vector<std::uint64_t> fired_;
};

TEST(EpochEngine, RandomizedDifferentialMatchesSequentialKernel)
{
    constexpr Tick until = 4000;
    DiffProgram ref(5);
    ref.runSequential(until);
    std::uint64_t total = 0;
    for (const auto f : ref.fired())
        total += f;
    ASSERT_GT(total, 50u) << "program too small to mean anything";

    for (const unsigned threads : {1u, 2u, 4u, 5u}) {
        DiffProgram par(5);
        par.runEpoch(until, threads);
        EXPECT_EQ(par.state(), ref.state()) << threads << " threads";
        EXPECT_EQ(par.fired(), ref.fired()) << threads << " threads";
    }
}

TEST(EpochEngine, SameTickFifoAcrossThreadBoundaries)
{
    // Roots a1, a2 (partition 0) and b1 (partition 1) all fire at tick
    // 10 on different workers; each schedules one child into partition
    // 2 at tick 20.  Commit order must be the roots' schedule order —
    // a1, a2, b1 — exactly as the sequential kernel interleaves them.
    for (const unsigned threads : {1u, 2u, 3u}) {
        sim::EpochEngine eng(3, threads);
        std::vector<int> cOrder;
        auto child = [&cOrder](int tag) {
            return [&cOrder, tag] { cOrder.push_back(tag); };
        };
        eng.schedule(0, 10, [&eng, child] {
            eng.schedule(2, 20, child(1));
        });
        eng.schedule(0, 10, [&eng, child] {
            eng.schedule(2, 20, child(2));
        });
        eng.schedule(1, 10, [&eng, child] {
            eng.schedule(2, 20, child(3));
        });
        eng.run();
        EXPECT_EQ(cOrder, (std::vector<int>{1, 2, 3}))
            << threads << " threads";
        EXPECT_EQ(eng.dispatched(), 6u);
    }
}

TEST(EpochEngine, CancelOfForeignPartitionEvent)
{
    for (const unsigned threads : {1u, 2u}) {
        sim::EpochEngine eng(2, threads);
        bool victimFired = false;
        bool cancelAccepted = false;
        // Partition 1 owns the victim and publishes its id at tick 10;
        // partition 0 cancels it from the other worker at tick 20 (an
        // O(1) mailbox push applied at the barrier); tick 30 must never
        // happen.  The id handoff is ordered by the epoch barriers.
        sim::EpochEventId victimId = sim::invalidEpochEventId;
        eng.schedule(1, 10, [&] {
            victimId =
                eng.schedule(1, 30, [&] { victimFired = true; });
            ASSERT_NE(victimId, sim::invalidEpochEventId);
        });
        eng.schedule(0, 20,
                     [&] { cancelAccepted = eng.cancel(victimId); });
        eng.run();
        EXPECT_TRUE(cancelAccepted) << threads << " threads";
        EXPECT_FALSE(victimFired) << threads << " threads";
        EXPECT_EQ(eng.dispatched(), 2u);
        EXPECT_EQ(eng.pending(), 0u);
    }
}

TEST(EpochEngine, LocalCancelSemanticsMatchSequential)
{
    sim::EpochEngine eng(1, 1);
    bool fired = false;
    const auto id = eng.schedule(0, 50, [&] { fired = true; });
    EXPECT_TRUE(eng.cancel(id));  // pending -> cancelled
    EXPECT_FALSE(eng.cancel(id)); // second cancel is a no-op
    eng.run();
    EXPECT_FALSE(fired);
    // A fired event's id is dead too.
    bool ran = false;
    const auto id2 = eng.schedule(0, 60, [&] { ran = true; });
    eng.run();
    EXPECT_TRUE(ran);
    EXPECT_FALSE(eng.cancel(id2));
}

TEST(EpochEngine, AllToAllMailboxDrain)
{
    // Every partition schedules into every other partition each epoch,
    // for several epochs: the densest mailbox pattern.  Differential
    // against the sequential kernel via state hashes.
    constexpr unsigned P = 4;
    constexpr unsigned epochs = 6;

    // A pump event per partition reschedules itself each tick and
    // sprays one tagged child into every partition.
    std::vector<std::uint64_t> refState(P, 0);
    {
        EventQueue eq;
        std::vector<std::uint64_t> &st = refState;
        std::function<void(unsigned, unsigned)> pump =
            [&](unsigned p, unsigned round) {
                if (round >= epochs)
                    return;
                for (unsigned t = 0; t < P; ++t) {
                    const std::uint64_t label =
                        mix(p * 7919 + t, round);
                    eq.schedule(eq.now() + 1, [&st, t, label, &eq] {
                        st[t] = mix(st[t], mix(label, eq.now()));
                    });
                }
                eq.schedule(eq.now() + 1,
                            [&pump, p, round] { pump(p, round + 1); });
            };
        for (unsigned p = 0; p < P; ++p)
            eq.schedule(1, [&pump, p] { pump(p, 0); });
        eq.run();
    }

    for (const unsigned threads : {1u, 2u, 4u}) {
        sim::EpochEngine eng(P, threads);
        std::vector<std::uint64_t> st(P, 0);
        std::function<void(unsigned, unsigned)> pump =
            [&](unsigned p, unsigned round) {
                if (round >= epochs)
                    return;
                for (unsigned t = 0; t < P; ++t) {
                    const std::uint64_t label =
                        mix(p * 7919 + t, round);
                    eng.schedule(t, eng.now() + 1,
                                 [&st, t, label, &eng] {
                                     st[t] = mix(st[t],
                                                 mix(label, eng.now()));
                                 });
                }
                eng.schedule(p, eng.now() + 1,
                             [&pump, p, round] { pump(p, round + 1); });
            };
        for (unsigned p = 0; p < P; ++p)
            eng.schedule(p, 1, [&pump, p] { pump(p, 0); });
        eng.run();
        EXPECT_EQ(st, refState) << threads << " threads";
    }
}

TEST(EpochEngine, RunUntilClampsClockLikeSequential)
{
    sim::EpochEngine eng(2, 2);
    int hits = 0;
    eng.schedule(0, 100, [&] { ++hits; });
    eng.schedule(1, 300, [&] { ++hits; });
    EXPECT_EQ(eng.run(200), 1u);
    EXPECT_EQ(eng.now(), Tick{200});
    EXPECT_EQ(eng.pending(), 1u);
    EXPECT_EQ(eng.run(), 1u);
    EXPECT_EQ(eng.now(), Tick{300});
    EXPECT_EQ(hits, 2);
}

// --- runShared: token-affine dispatch over the sequential kernel -----

/**
 * A workload over one EventQueue with interleaved owner tags: four
 * chains (one per owner) that hop ticks, spawn same-tick events, and
 * cancel each other across owners.  Returns per-owner logs + final
 * queue observables.
 */
struct SharedRun
{
    std::vector<std::vector<std::uint64_t>> log;
    std::uint64_t fired = 0;
    Tick finalNow = 0;
    std::uint64_t dispatched = 0;
    std::size_t pending = 0;

    bool
    operator==(const SharedRun &o) const
    {
        return log == o.log && fired == o.fired &&
               finalNow == o.finalNow && dispatched == o.dispatched &&
               pending == o.pending;
    }
};

SharedRun
runSharedWorkload(unsigned partitions, Tick until)
{
    constexpr unsigned owners = 4;
    SharedRun out;
    out.log.resize(owners);
    EventQueue eq;

    // Cancellation targets: owner o stores an id its neighbor cancels.
    std::vector<EventId> victims(owners, invalidEventId);

    std::function<void(unsigned, unsigned, std::uint64_t)> chain =
        [&](unsigned owner, unsigned hop, std::uint64_t label) {
            out.log[owner].push_back(mix(label, eq.now()));
            if (hop >= 25)
                return;
            // Self-chain (inherits the owner tag).
            eq.scheduleIn(7 + (label % 23), [&chain, owner, hop, label] {
                chain(owner, hop + 1, mix(label, hop));
            });
            if (hop % 5 == 1) {
                // Plant a victim two hops out...
                victims[owner] = eq.scheduleIn(40, [&out, owner] {
                    out.log[owner].push_back(0xdeadbeef);
                });
            }
            if (hop % 5 == 3) {
                // ...and cancel the neighbor's victim (cross-owner
                // cancel while holding the dispatch token).
                const unsigned n = (owner + 1) % owners;
                if (victims[n] != invalidEventId) {
                    eq.cancel(victims[n]);
                    victims[n] = invalidEventId;
                }
            }
        };

    for (unsigned o = 0; o < owners; ++o) {
        EventQueue::SpawnOwnerScope own(eq, static_cast<std::uint16_t>(o));
        eq.schedule(1 + o, [&chain, o] { chain(o, 0, 0x5eed + o); });
    }

    out.fired = partitions <= 1 ? eq.run(until)
                                : sim::runShared(eq, until, partitions);
    out.finalNow = eq.now();
    out.dispatched = eq.dispatched();
    out.pending = eq.pending();
    return out;
}

TEST(RunShared, ByteIdenticalToSequentialRun)
{
    const SharedRun ref = runSharedWorkload(1, 2000);
    ASSERT_GT(ref.fired, 50u);
    for (const unsigned partitions : {2u, 3u, 4u}) {
        const SharedRun par = runSharedWorkload(partitions, 2000);
        EXPECT_TRUE(par == ref) << partitions << " partitions";
    }
    // Unbounded run: the no-clamp sentinel path.
    const SharedRun refAll = runSharedWorkload(1, ~Tick{0});
    const SharedRun parAll = runSharedWorkload(4, ~Tick{0});
    EXPECT_TRUE(parAll == refAll);
}

TEST(RunShared, EmptyQueueBehavesLikeRun)
{
    EventQueue eq;
    EXPECT_EQ(sim::runShared(eq, 500, 4), 0u);
    EXPECT_EQ(eq.now(), Tick{500});
}

TEST(RunShared, OwnerTagsInheritedBySpawns)
{
    EventQueue eq;
    std::uint16_t childOwner = 0xFFFF;
    {
        EventQueue::SpawnOwnerScope own(eq, 3);
        eq.schedule(10, [&eq, &childOwner] {
            eq.scheduleIn(5, [] {});
            std::uint16_t o;
            ASSERT_TRUE(eq.peekNextOwner(o));
            childOwner = o;
        });
    }
    eq.run();
    EXPECT_EQ(childOwner, 3u);
}

// --- SdpSystem determinism across sim thread counts ------------------

/** Full-system run digest: stats dump + trace bytes + key counters. */
struct SysRun
{
    std::string stats;
    std::string trace;
    std::uint64_t completions;
    std::uint64_t dispatched;
    double p99;

    bool
    operator==(const SysRun &o) const
    {
        return stats == o.stats && trace == o.trace &&
               completions == o.completions &&
               dispatched == o.dispatched && p99 == o.p99;
    }
};

SysRun
runSystem(unsigned simThreads)
{
    dp::SdpConfig cfg;
    cfg.plane = dp::PlaneKind::HyperPlane;
    cfg.org = dp::QueueOrg::ScaleOut;
    cfg.numCores = 8;
    cfg.numQueues = 64;
    cfg.offeredRatePerSec = 2e6;
    cfg.warmupUs = 50.0;
    cfg.measureUs = 300.0;
    cfg.seed = 1234;
    cfg.workStealing = true; // cross-cluster interaction on purpose
    cfg.trace.enable = true;
    cfg.trace.bufferCapacity = 4096;
    // A little fault pressure so recovery paths cross partitions too.
    cfg.fault.dropSnoopRate = 0.02;
    cfg.recovery.watchdog = true;
    cfg.recovery.watchdogPeriodUs = 40.0;
    cfg.simThreads = simThreads;

    dp::SdpSystem sys(cfg);
    EXPECT_EQ(sys.simPartitions(),
              std::min(simThreads == 0 ? 1u : simThreads, 8u));
    const dp::SdpResults r = sys.run();

    SysRun out;
    std::ostringstream stats;
    sys.dumpStats(stats);
    out.stats = stats.str();
    std::ostringstream trace;
    sys.writeChromeTrace(trace);
    out.trace = trace.str();
    out.completions = r.completions;
    out.dispatched = sys.eventQueue().dispatched();
    out.p99 = r.p99LatencyUs;
    return out;
}

TEST(SimThreadsDeterminism, ResultsCountersAndTraceBytesIdentical)
{
    const SysRun ref = runSystem(1);
    ASSERT_GT(ref.completions, 0u);
    ASSERT_FALSE(ref.stats.empty());
    for (const unsigned threads : {2u, 4u, 8u}) {
        const SysRun par = runSystem(threads);
        EXPECT_EQ(par.stats, ref.stats) << threads << " sim threads";
        EXPECT_EQ(par.trace, ref.trace) << threads << " sim threads";
        EXPECT_EQ(par.completions, ref.completions);
        EXPECT_EQ(par.dispatched, ref.dispatched);
        EXPECT_EQ(par.p99, ref.p99);
    }
}

TEST(SimThreadsDeterminism, ThreadCountCappedByClusters)
{
    dp::SdpConfig cfg;
    cfg.plane = dp::PlaneKind::HyperPlane;
    cfg.org = dp::QueueOrg::ScaleUpAll; // one cluster
    cfg.numCores = 4;
    cfg.numQueues = 16;
    cfg.warmupUs = 10.0;
    cfg.measureUs = 50.0;
    cfg.simThreads = 8;
    dp::SdpSystem sys(cfg);
    EXPECT_EQ(sys.simPartitions(), 1u);
}

TEST(SimThreadsDeterminism, EnvOverrideResolvesZero)
{
    ::setenv("HYPERPLANE_SIM_THREADS", "3", 1);
    dp::SdpConfig cfg;
    cfg.plane = dp::PlaneKind::HyperPlane;
    cfg.org = dp::QueueOrg::ScaleOut;
    cfg.numCores = 4;
    cfg.numQueues = 16;
    cfg.warmupUs = 10.0;
    cfg.measureUs = 50.0;
    cfg.simThreads = 0;
    {
        dp::SdpSystem sys(cfg);
        EXPECT_EQ(sys.simPartitions(), 3u);
    }
    ::unsetenv("HYPERPLANE_SIM_THREADS");
    dp::SdpSystem sys(cfg);
    EXPECT_EQ(sys.simPartitions(), 1u);
}

} // namespace
} // namespace hyperplane
